//! `mtvar` — a reproduction of *Variability in Architectural Simulations of
//! Multi-Threaded Workloads* (Alameldeen & Wood, HPCA 2003) as a Rust
//! workspace.
//!
//! This umbrella crate re-exports the four member crates:
//!
//! * [`sim`] — the deterministic discrete-event multiprocessor simulator
//!   (MOSI snooping caches, crossbar+DRAM timing, simple and out-of-order
//!   processor models, OS scheduler, locks, checkpoints).
//! * [`workloads`] — synthetic equivalents of the paper's seven benchmarks.
//! * [`stats`] — the classical statistics the methodology uses.
//! * [`core`] — the methodology itself: perturbed run spaces, the
//!   wrong-conclusion ratio, variability metrics, comparison verdicts, and
//!   ANOVA-driven time sampling.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use mtvar::core::runspace::{run_space, RunPlan};
//! use mtvar::sim::config::MachineConfig;
//! use mtvar::workloads::Benchmark;
//!
//! let cfg = MachineConfig::hpca2003().with_cpus(4).with_perturbation(4, 0);
//! let plan = RunPlan::new(25).with_runs(3);
//! let space = run_space(&cfg, || Benchmark::Oltp.workload(4, 1), &plan)?;
//! assert_eq!(space.len(), 3);
//! # Ok(())
//! # }
//! ```

pub use mtvar_core as core;
pub use mtvar_serve as serve;
pub use mtvar_sim as sim;
pub use mtvar_stats as stats;
pub use mtvar_workloads as workloads;
