//! Decode-robustness fuzz over checkpoint frames and payloads.
//!
//! A spill file can come back truncated, bit-flipped, or spliced together
//! from two writes; an adversarial one can claim absurd lengths. The frame
//! format layers enough validation (magic, version, header checksum over the
//! section table, payload length, whole-payload fingerprint, per-section
//! fingerprints) that **every** such mutation must surface as a
//! [`CheckpointError`] from `Checkpoint::from_bytes` — never a panic, and
//! never an `Ok` carrying different bytes than were framed.
//!
//! Payload-level damage is a separate layer: `Checkpoint::from_payload`
//! recomputes the fingerprint, so the frame validates and the corruption
//! must instead be caught (or harmlessly absorbed) by `Machine::restore`'s
//! structural decode — which must not panic regardless of input.

use mtvar_sim::checkpoint::Checkpoint;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::workload::SharingWorkload;

/// SplitMix64 — the repo's convention for in-test deterministic streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn warmed_frame() -> (Checkpoint, Vec<u8>) {
    let cfg = MachineConfig::hpca2003()
        .with_cpus(4)
        .with_perturbation(4, 9);
    let wl = SharingWorkload::new(8, 7, 40, 4096, 10);
    let mut m = Machine::new(cfg, wl).unwrap();
    m.run_transactions(40).unwrap();
    let ck = m.snapshot();
    let bytes = ck.to_bytes();
    (ck, bytes)
}

/// Every single-bit flip anywhere in the frame — header, section table,
/// checksum, payload — must be rejected. Exhaustive over byte positions
/// (one pseudo-random bit per byte) so no field escapes coverage.
#[test]
fn every_bit_flip_in_the_frame_is_rejected() {
    let (ck, bytes) = warmed_frame();
    let mut rng = Rng(0xF1A9);
    let mut buf = bytes.clone();
    for i in 0..bytes.len() {
        let bit = 1u8 << rng.below(8);
        buf[i] ^= bit;
        match Checkpoint::from_bytes(&buf) {
            Err(_) => {}
            Ok(got) => panic!(
                "bit flip at byte {i} decoded Ok (fingerprint {:#x} vs original {:#x})",
                got.fingerprint(),
                ck.fingerprint()
            ),
        }
        buf[i] ^= bit; // restore for the next position
    }
    // Sanity: the unmutated frame still parses.
    assert_eq!(Checkpoint::from_bytes(&buf).unwrap(), ck);
}

/// Every proper prefix must be rejected as truncated/corrupt — an
/// interrupted write can cut the frame anywhere, including mid-header and
/// mid-section-table.
#[test]
fn every_truncation_is_rejected() {
    let (_, bytes) = warmed_frame();
    let mut rng = Rng(0x7249);
    // All short prefixes exhaustively (they exercise header parsing), then
    // random cuts across the body.
    for len in 0..256.min(bytes.len()) {
        assert!(
            Checkpoint::from_bytes(&bytes[..len]).is_err(),
            "prefix of {len} bytes decoded Ok"
        );
    }
    for _ in 0..500 {
        let len = rng.below(bytes.len() - 1);
        assert!(
            Checkpoint::from_bytes(&bytes[..len]).is_err(),
            "prefix of {len} bytes decoded Ok"
        );
    }
}

/// Random splices — insertions, deletions, range duplications, and
/// cross-splices of two distinct valid frames — must be rejected.
#[test]
fn random_splices_are_rejected() {
    let (_, a) = warmed_frame();
    // A second, different machine: same format, different content.
    let cfg = MachineConfig::hpca2003()
        .with_cpus(2)
        .with_perturbation(4, 3);
    let mut m2 = Machine::new(cfg, SharingWorkload::new(4, 7, 40, 4096, 10)).unwrap();
    m2.run_transactions(25).unwrap();
    let b = m2.snapshot().to_bytes();

    let mut rng = Rng(0x0057_11CE);
    for round in 0..400 {
        let mut buf = a.clone();
        match rng.below(4) {
            0 => {
                // Insert 1..32 random bytes at a random offset.
                let at = rng.below(buf.len() + 1);
                let n = 1 + rng.below(32);
                let mut chunk = Vec::with_capacity(n);
                for _ in 0..n {
                    chunk.push(rng.next() as u8);
                }
                buf.splice(at..at, chunk);
            }
            1 => {
                // Delete a random nonempty range.
                let at = rng.below(buf.len());
                let n = 1 + rng.below((buf.len() - at).min(64));
                buf.drain(at..at + n);
            }
            2 => {
                // Duplicate a range over another (simulates torn pages).
                let src = rng.below(buf.len());
                let n = 1 + rng.below((buf.len() - src).min(64));
                let chunk: Vec<u8> = buf[src..src + n].to_vec();
                let dst = rng.below(buf.len() - n + 1);
                if dst == src {
                    continue; // identity overwrite: not a mutation
                }
                buf[dst..dst + n].copy_from_slice(&chunk);
                if buf == a {
                    continue; // overwrote with identical bytes
                }
            }
            _ => {
                // Head of one valid frame + tail of the other.
                let cut_a = rng.below(a.len());
                let cut_b = rng.below(b.len());
                buf = a[..cut_a].to_vec();
                buf.extend_from_slice(&b[cut_b..]);
                if buf == a || buf == b {
                    continue;
                }
            }
        }
        assert!(
            Checkpoint::from_bytes(&buf).is_err(),
            "splice round {round} decoded Ok"
        );
    }
}

/// Hostile headers: absurd payload lengths and section counts must be
/// rejected *before* they can size an allocation. (The `u64::MAX` length
/// also covers the 32-bit `as usize` truncation this PR fixes: on any
/// platform the length is rejected, not wrapped.)
#[test]
fn hostile_lengths_are_rejected() {
    let (_, bytes) = warmed_frame();
    for (offset, value) in [
        (12u64, u64::MAX),  // payload_len
        (12, u64::MAX / 2), // payload_len (positive i64 range)
        (12, 1u64 << 33),   // payload_len just past 32-bit usize
    ] {
        let mut buf = bytes.clone();
        buf[offset as usize..offset as usize + 8].copy_from_slice(&value.to_le_bytes());
        assert!(Checkpoint::from_bytes(&buf).is_err());
    }
    // Section count is the u32 at offset 28.
    let mut buf = bytes.clone();
    buf[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(Checkpoint::from_bytes(&buf).is_err());
}

/// Payload-level corruption re-wrapped through `from_payload` (which makes
/// the frame self-consistent again) must never panic `Machine::restore` —
/// it either errors or decodes into some structurally valid machine.
#[test]
fn mutated_payloads_never_panic_restore() {
    let (ck, _) = warmed_frame();
    let mut rng = Rng(0xDEC0DE);
    for _ in 0..300 {
        let mut payload = ck.payload().to_vec();
        match rng.below(3) {
            0 => {
                let i = rng.below(payload.len());
                payload[i] ^= 1 << rng.below(8);
            }
            1 => {
                payload.truncate(rng.below(payload.len()));
            }
            _ => {
                let at = rng.below(payload.len());
                let n = 1 + rng.below(16);
                let mut chunk = Vec::with_capacity(n);
                for _ in 0..n {
                    chunk.push(rng.next() as u8);
                }
                payload.splice(at..at, chunk);
            }
        }
        let rewrapped = Checkpoint::from_payload(payload);
        // Err is the expected outcome; Ok means the mutation happened to
        // produce a coherent encoding, which restore validated. A panic
        // fails the test harness either way.
        let _ = Machine::<SharingWorkload>::restore(&rewrapped);
    }
}
