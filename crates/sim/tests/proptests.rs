//! Property-based tests of the simulator's structural invariants: cache
//! bookkeeping, the MOSI single-writer property under arbitrary access
//! interleavings, scheduler conservation, and checkpoint equivalence.

use proptest::prelude::*;

use mtvar_sim::config::MachineConfig;
use mtvar_sim::ids::{BlockAddr, CpuId};
use mtvar_sim::machine::Machine;
use mtvar_sim::mem::{CacheArray, CacheConfig, MemoryConfig, MemorySystem, CoherenceState, Perturbation};
use mtvar_sim::ops::AccessKind;
use mtvar_sim::rng::Xoshiro256StarStar;
use mtvar_sim::workload::SharingWorkload;

/// A compact encoding of a random access: (cpu, block, is_write).
fn accesses(max: usize) -> impl Strategy<Value = Vec<(u8, u16, bool)>> {
    prop::collection::vec((0u8..4, 0u16..96, any::<bool>()), 1..max)
}

fn small_mem(cpus: usize) -> MemorySystem {
    let mut cfg = MemoryConfig::hpca2003();
    cfg.l1i = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l1d = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l2 = CacheConfig::new(4096, 2, 64).unwrap();
    MemorySystem::new(cfg, cpus, Perturbation::new(4, 9)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mosi_single_writer_invariant_holds(ops in accesses(400)) {
        let mut mem = small_mem(4);
        let mut now = 0u64;
        for (cpu, block, write) in &ops {
            now += 10;
            let kind = if *write { AccessKind::Write } else { AccessKind::Read };
            let out = mem.access(CpuId(u32::from(*cpu)), BlockAddr(u64::from(*block)), kind, now);
            prop_assert!(out.latency >= 1);
        }
        // Every touched block satisfies the protocol invariant afterwards.
        for b in 0..96u64 {
            prop_assert!(mem.check_coherence_invariant(BlockAddr(b)), "block {b} violates MOSI");
        }
    }

    #[test]
    fn store_grants_exclusive_access(ops in accesses(200), victim in 0u16..96) {
        let mut mem = small_mem(4);
        let mut now = 0u64;
        for (cpu, block, write) in &ops {
            now += 10;
            let kind = if *write { AccessKind::Write } else { AccessKind::Read };
            mem.access(CpuId(u32::from(*cpu)), BlockAddr(u64::from(*block)), kind, now);
        }
        // A final write by cpu 0 leaves exactly one valid copy: its own M.
        mem.access(CpuId(0), BlockAddr(u64::from(victim)), AccessKind::Write, now + 10);
        prop_assert_eq!(mem.l2_state(CpuId(0), BlockAddr(u64::from(victim))), CoherenceState::Modified);
        for c in 1..4u32 {
            prop_assert_eq!(mem.l2_state(CpuId(c), BlockAddr(u64::from(victim))), CoherenceState::Invalid);
        }
    }

    #[test]
    fn cache_array_never_exceeds_capacity(inserts in prop::collection::vec(0u64..4096, 1..600)) {
        let cfg = CacheConfig::new(2048, 2, 64).unwrap(); // 32 blocks
        let mut cache = CacheArray::new(cfg).unwrap();
        for a in inserts {
            cache.insert(BlockAddr(a), CoherenceState::Shared);
            prop_assert!(cache.resident_blocks() <= 32);
        }
    }

    #[test]
    fn cache_insert_then_probe_hits(addr in 0u64..100_000, filler in prop::collection::vec(0u64..100_000, 0..8)) {
        let cfg = CacheConfig::new(4096, 4, 64).unwrap();
        let mut cache = CacheArray::new(cfg).unwrap();
        for f in filler {
            cache.insert(BlockAddr(f), CoherenceState::Shared);
        }
        cache.insert(BlockAddr(addr), CoherenceState::Owned);
        prop_assert_eq!(cache.probe(BlockAddr(addr)), CoherenceState::Owned);
    }

    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), bound in 1u64..1_000_000, lo in 0u64..1000, width in 0u64..1000) {
        let mut rng = Xoshiro256StarStar::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
            let v = rng.next_range(lo, lo + width);
            prop_assert!((lo..=lo + width).contains(&v));
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn machine_determinism_for_arbitrary_seeds(wseed in any::<u64>(), pseed in any::<u64>()) {
        let run = || {
            let cfg = MachineConfig::hpca2003().with_cpus(2).with_perturbation(4, pseed);
            let mut m = Machine::new(cfg, SharingWorkload::new(4, wseed, 30, 512, 8)).unwrap();
            m.run_transactions(40).unwrap().elapsed()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn checkpoint_equivalence_under_random_split(wseed in any::<u64>(), split in 10u64..60) {
        // Running A txns, checkpointing, then B txns must equal running
        // straight through when observed from the checkpoint onward.
        let cfg = MachineConfig::hpca2003().with_cpus(2).with_perturbation(4, 3);
        let mut m = Machine::new(cfg, SharingWorkload::new(4, wseed, 25, 256, 6)).unwrap();
        m.run_transactions(split).unwrap();
        let mut fork = m.checkpoint();
        let straight = m.run_transactions(30).unwrap();
        let forked = fork.run_transactions(30).unwrap();
        prop_assert_eq!(straight.elapsed(), forked.elapsed());
        prop_assert_eq!(straight.commit_cycles, forked.commit_cycles);
    }

    #[test]
    fn commit_log_is_sorted_and_complete(wseed in any::<u64>()) {
        let cfg = MachineConfig::hpca2003().with_cpus(3).with_perturbation(4, 1);
        let mut m = Machine::new(cfg, SharingWorkload::new(6, wseed, 20, 512, 5)).unwrap();
        let r = m.run_transactions(50).unwrap();
        prop_assert_eq!(r.transactions, 50);
        prop_assert_eq!(r.commit_cycles.len(), 50);
        prop_assert!(r.commit_cycles.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(r.end_cycle >= r.start_cycle);
    }
}
