//! Randomized tests of the simulator's structural invariants: cache
//! bookkeeping, the MOSI single-writer property under arbitrary access
//! interleavings, RNG bounds, and checkpoint equivalence.
//!
//! Formerly written against the `proptest` crate; rewritten as deterministic
//! seeded sweeps (driven by the crate's own [`Xoshiro256StarStar`]) so the
//! suite builds with no network access.

use mtvar_sim::config::MachineConfig;
use mtvar_sim::ids::{BlockAddr, CpuId};
use mtvar_sim::machine::Machine;
use mtvar_sim::mem::{
    CacheArray, CacheConfig, CoherenceState, MemoryConfig, MemorySystem, Perturbation,
};
use mtvar_sim::ops::AccessKind;
use mtvar_sim::rng::Xoshiro256StarStar;
use mtvar_sim::workload::SharingWorkload;

/// A random access sequence: (cpu in 0..4, block in 0..96, is_write).
fn accesses(rng: &mut Xoshiro256StarStar, max: usize) -> Vec<(u8, u16, bool)> {
    let n = rng.next_range(1, max as u64 - 1) as usize;
    (0..n)
        .map(|_| {
            (
                rng.next_below(4) as u8,
                rng.next_below(96) as u16,
                rng.next_bool(0.5),
            )
        })
        .collect()
}

fn small_mem(cpus: usize) -> MemorySystem {
    let mut cfg = MemoryConfig::hpca2003();
    cfg.l1i = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l1d = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l2 = CacheConfig::new(4096, 2, 64).unwrap();
    MemorySystem::new(cfg, cpus, Perturbation::new(4, 9)).unwrap()
}

#[test]
fn mosi_single_writer_invariant_holds() {
    let mut rng = Xoshiro256StarStar::new(0x51_0001);
    for _ in 0..64 {
        let ops = accesses(&mut rng, 400);
        let mut mem = small_mem(4);
        let mut now = 0u64;
        for (cpu, block, write) in &ops {
            now += 10;
            let kind = if *write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = mem.access(
                CpuId(u32::from(*cpu)),
                BlockAddr(u64::from(*block)),
                kind,
                now,
            );
            assert!(out.latency >= 1);
        }
        // Every touched block satisfies the protocol invariant afterwards.
        for b in 0..96u64 {
            assert!(
                mem.check_coherence_invariant(BlockAddr(b)),
                "block {b} violates MOSI"
            );
        }
    }
}

#[test]
fn store_grants_exclusive_access() {
    let mut rng = Xoshiro256StarStar::new(0x51_0002);
    for _ in 0..64 {
        let ops = accesses(&mut rng, 200);
        let victim = rng.next_below(96);
        let mut mem = small_mem(4);
        let mut now = 0u64;
        for (cpu, block, write) in &ops {
            now += 10;
            let kind = if *write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            mem.access(
                CpuId(u32::from(*cpu)),
                BlockAddr(u64::from(*block)),
                kind,
                now,
            );
        }
        // A final write by cpu 0 leaves exactly one valid copy: its own M.
        mem.access(CpuId(0), BlockAddr(victim), AccessKind::Write, now + 10);
        assert_eq!(
            mem.l2_state(CpuId(0), BlockAddr(victim)),
            CoherenceState::Modified
        );
        for c in 1..4u32 {
            assert_eq!(
                mem.l2_state(CpuId(c), BlockAddr(victim)),
                CoherenceState::Invalid
            );
        }
    }
}

#[test]
fn cache_array_never_exceeds_capacity() {
    let mut rng = Xoshiro256StarStar::new(0x51_0003);
    for _ in 0..64 {
        let cfg = CacheConfig::new(2048, 2, 64).unwrap(); // 32 blocks
        let mut cache = CacheArray::new(cfg).unwrap();
        let n = rng.next_range(1, 599);
        for _ in 0..n {
            cache.insert(BlockAddr(rng.next_below(4096)), CoherenceState::Shared);
            assert!(cache.resident_blocks() <= 32);
        }
    }
}

#[test]
fn cache_insert_then_probe_hits() {
    let mut rng = Xoshiro256StarStar::new(0x51_0004);
    for _ in 0..64 {
        let cfg = CacheConfig::new(4096, 4, 64).unwrap();
        let mut cache = CacheArray::new(cfg).unwrap();
        let fillers = rng.next_below(8);
        for _ in 0..fillers {
            cache.insert(BlockAddr(rng.next_below(100_000)), CoherenceState::Shared);
        }
        let addr = rng.next_below(100_000);
        cache.insert(BlockAddr(addr), CoherenceState::Owned);
        assert_eq!(cache.probe(BlockAddr(addr)), CoherenceState::Owned);
    }
}

#[test]
fn rng_bounds_hold() {
    let mut meta = Xoshiro256StarStar::new(0x51_0005);
    for _ in 0..64 {
        let seed = meta.next_u64();
        let bound = meta.next_range(1, 1_000_000);
        let lo = meta.next_below(1000);
        let width = meta.next_below(1000);
        let mut rng = Xoshiro256StarStar::new(seed);
        for _ in 0..50 {
            assert!(rng.next_below(bound) < bound);
            let v = rng.next_range(lo, lo + width);
            assert!((lo..=lo + width).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

#[test]
fn machine_determinism_for_arbitrary_seeds() {
    let mut meta = Xoshiro256StarStar::new(0x51_0006);
    for _ in 0..8 {
        let wseed = meta.next_u64();
        let pseed = meta.next_u64();
        let run = || {
            let cfg = MachineConfig::hpca2003()
                .with_cpus(2)
                .with_perturbation(4, pseed);
            let mut m = Machine::new(cfg, SharingWorkload::new(4, wseed, 30, 512, 8)).unwrap();
            m.run_transactions(40).unwrap().elapsed()
        };
        assert_eq!(run(), run());
    }
}

#[test]
fn checkpoint_equivalence_under_random_split() {
    let mut meta = Xoshiro256StarStar::new(0x51_0007);
    for _ in 0..8 {
        let wseed = meta.next_u64();
        let split = meta.next_range(10, 59);
        // Running A txns, checkpointing, then B txns must equal running
        // straight through when observed from the checkpoint onward.
        let cfg = MachineConfig::hpca2003()
            .with_cpus(2)
            .with_perturbation(4, 3);
        let mut m = Machine::new(cfg, SharingWorkload::new(4, wseed, 25, 256, 6)).unwrap();
        m.run_transactions(split).unwrap();
        let mut fork = m.checkpoint();
        let straight = m.run_transactions(30).unwrap();
        let forked = fork.run_transactions(30).unwrap();
        assert_eq!(straight.elapsed(), forked.elapsed());
        assert_eq!(straight.commit_cycles, forked.commit_cycles);
    }
}

/// A reference LRU model for one cache: per-set recency lists, least recent
/// first. Mirrors the documented CacheArray contract: `insert`/`touch`
/// refresh recency, `probe` does not, eviction takes the least recent line.
struct LruModel {
    sets: u64,
    ways: usize,
    // recency[set] holds (addr, state), least recently used first.
    recency: Vec<Vec<(u64, CoherenceState)>>,
}

impl LruModel {
    fn new(cfg: &CacheConfig) -> Self {
        LruModel {
            sets: cfg.sets(),
            ways: cfg.associativity as usize,
            recency: vec![Vec::new(); cfg.sets() as usize],
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        (addr % self.sets) as usize
    }

    fn insert(&mut self, addr: u64, state: CoherenceState) -> Option<(u64, CoherenceState)> {
        let set = self.set_of(addr);
        let lines = &mut self.recency[set];
        if let Some(i) = lines.iter().position(|&(a, _)| a == addr) {
            lines.remove(i);
            lines.push((addr, state));
            return None;
        }
        let evicted = if lines.len() == self.ways {
            Some(lines.remove(0))
        } else {
            None
        };
        lines.push((addr, state));
        evicted
    }

    fn touch(&mut self, addr: u64) -> CoherenceState {
        let set = self.set_of(addr);
        let lines = &mut self.recency[set];
        match lines.iter().position(|&(a, _)| a == addr) {
            Some(i) => {
                let entry = lines.remove(i);
                lines.push(entry);
                entry.1
            }
            None => CoherenceState::Invalid,
        }
    }

    fn probe(&self, addr: u64) -> CoherenceState {
        self.recency[self.set_of(addr)]
            .iter()
            .find(|&&(a, _)| a == addr)
            .map_or(CoherenceState::Invalid, |&(_, s)| s)
    }

    fn invalidate(&mut self, addr: u64) -> CoherenceState {
        let set = self.set_of(addr);
        let lines = &mut self.recency[set];
        match lines.iter().position(|&(a, _)| a == addr) {
            Some(i) => lines.remove(i).1,
            None => CoherenceState::Invalid,
        }
    }
}

#[test]
fn cache_array_matches_lru_reference_model() {
    // Random op soup against the reference model: every probe/touch result,
    // every eviction (victim address AND state), and residency must agree.
    let states = [
        CoherenceState::Modified,
        CoherenceState::Owned,
        CoherenceState::Exclusive,
        CoherenceState::Shared,
    ];
    let mut rng = Xoshiro256StarStar::new(0x51_0009);
    for _ in 0..48 {
        let cfg = CacheConfig::new(1024, 4, 64).unwrap(); // 4 sets × 4 ways
        let mut cache = CacheArray::new(cfg).unwrap();
        let mut model = LruModel::new(&cfg);
        for _ in 0..400 {
            let addr = rng.next_below(64); // 16 tags per set: plenty of evictions
            match rng.next_below(4) {
                0 => {
                    let state = states[rng.next_below(4) as usize];
                    let got = cache.insert(BlockAddr(addr), state);
                    let want = model.insert(addr, state);
                    assert_eq!(
                        got.map(|e| (e.addr.0, e.state)),
                        want,
                        "insert({addr}) evicted the wrong line"
                    );
                }
                1 => assert_eq!(cache.touch(BlockAddr(addr)), model.touch(addr)),
                2 => assert_eq!(cache.probe(BlockAddr(addr)), model.probe(addr)),
                _ => assert_eq!(cache.invalidate(BlockAddr(addr)), model.invalidate(addr)),
            }
            let resident: usize = model.recency.iter().map(Vec::len).sum();
            assert_eq!(cache.resident_blocks(), resident);
        }
    }
}

#[test]
fn probe_does_not_refresh_lru_but_touch_does() {
    // 1 set × 2 ways. A then B makes A the LRU victim; a probe of A must
    // leave that unchanged, while a touch of A must flip the victim to B.
    let cfg = CacheConfig::new(128, 2, 64).unwrap();
    let (a, b, c) = (BlockAddr(0), BlockAddr(1), BlockAddr(2));

    let mut cache = CacheArray::new(cfg).unwrap();
    cache.insert(a, CoherenceState::Shared);
    cache.insert(b, CoherenceState::Shared);
    assert_eq!(cache.probe(a), CoherenceState::Shared); // snoop: no refresh
    let evicted = cache
        .insert(c, CoherenceState::Shared)
        .expect("set is full");
    assert_eq!(evicted.addr, a, "probe must not have refreshed A");

    let mut cache = CacheArray::new(cfg).unwrap();
    cache.insert(a, CoherenceState::Shared);
    cache.insert(b, CoherenceState::Shared);
    assert_eq!(cache.touch(a), CoherenceState::Shared); // access: refresh
    let evicted = cache
        .insert(c, CoherenceState::Shared)
        .expect("set is full");
    assert_eq!(evicted.addr, b, "touch must have refreshed A");
}

#[test]
fn cache_config_rejects_bad_geometry() {
    // Zeroes, non-powers-of-two, and size/assoc/block mismatches must all
    // be rejected; the valid cases must build.
    assert!(CacheConfig::new(0, 2, 64).is_err());
    assert!(CacheConfig::new(4096, 0, 64).is_err());
    assert!(CacheConfig::new(4096, 2, 0).is_err());
    assert!(CacheConfig::new(4096, 3, 64).is_err()); // assoc not pow2
    assert!(CacheConfig::new(4096, 2, 48).is_err()); // block not pow2
    assert!(CacheConfig::new(3000, 2, 64).is_err()); // size not pow2
    assert!(CacheConfig::new(64, 2, 64).is_err()); // smaller than one set

    // Sweep valid power-of-two geometries; derived counts must be exact.
    let mut rng = Xoshiro256StarStar::new(0x51_000A);
    for _ in 0..64 {
        let block = 1u32 << rng.next_range(4, 7); // 16..128 B
        let assoc = 1u32 << rng.next_below(4); // 1..8 ways
        let sets = 1u64 << rng.next_below(6); // 1..32 sets
        let size = sets * u64::from(assoc) * u64::from(block);
        let cfg = CacheConfig::new(size, assoc, block).unwrap();
        assert_eq!(cfg.sets(), sets);
        assert_eq!(cfg.blocks(), sets * u64::from(assoc));
    }
}

#[test]
fn perturbation_draws_are_bounded_and_seed_deterministic() {
    let mut meta = Xoshiro256StarStar::new(0x51_000B);
    for _ in 0..32 {
        let max_ns = meta.next_range(1, 16);
        let seed = meta.next_u64();
        let mut a = Perturbation::new(max_ns, seed);
        let mut b = Perturbation::new(max_ns, seed);
        for _ in 0..200 {
            let v = a.draw();
            assert!(v <= max_ns, "draw {v} exceeds max {max_ns}");
            assert_eq!(v, b.draw(), "same seed must give the same stream");
        }
    }
}

#[test]
fn perturbation_is_uniform_over_its_range() {
    // max_ns = 4 gives 5 equally likely outcomes; each bin of 20 000 draws
    // should hold ~1/5 of them.
    let mut p = Perturbation::new(4, 0xBEEF);
    let mut counts = [0usize; 5];
    const N: usize = 20_000;
    for _ in 0..N {
        counts[p.draw() as usize] += 1;
    }
    for (value, &count) in counts.iter().enumerate() {
        let frac = count as f64 / N as f64;
        assert!(
            (0.18..=0.22).contains(&frac),
            "value {value} drawn with frequency {frac}"
        );
    }
}

#[test]
fn disabled_perturbation_draws_exactly_zero() {
    let mut p = Perturbation::disabled();
    assert_eq!(p.max_ns(), 0);
    for _ in 0..100 {
        assert_eq!(p.draw(), 0);
    }
    // max_ns = 0 via new() is the same thing, whatever the seed.
    let mut p = Perturbation::new(0, 0xDEAD_BEEF);
    for _ in 0..100 {
        assert_eq!(p.draw(), 0);
    }
}

#[test]
fn distinct_perturbation_seeds_give_distinct_streams() {
    let mut meta = Xoshiro256StarStar::new(0x51_000C);
    for _ in 0..16 {
        let s1 = meta.next_u64();
        let s2 = meta.next_u64();
        if s1 == s2 {
            continue;
        }
        let mut a = Perturbation::new(8, s1);
        let mut b = Perturbation::new(8, s2);
        let va: Vec<u64> = (0..64).map(|_| a.draw()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.draw()).collect();
        assert_ne!(va, vb, "seeds {s1:#x} and {s2:#x} collided");
    }
}

#[test]
fn commit_log_is_sorted_and_complete() {
    let mut meta = Xoshiro256StarStar::new(0x51_0008);
    for _ in 0..8 {
        let wseed = meta.next_u64();
        let cfg = MachineConfig::hpca2003()
            .with_cpus(3)
            .with_perturbation(4, 1);
        let mut m = Machine::new(cfg, SharingWorkload::new(6, wseed, 20, 512, 5)).unwrap();
        let r = m.run_transactions(50).unwrap();
        assert_eq!(r.transactions, 50);
        assert_eq!(r.commit_cycles.len(), 50);
        assert!(r.commit_cycles.windows(2).all(|w| w[0] <= w[1]));
        assert!(r.end_cycle >= r.start_cycle);
    }
}

/// Naive reference model for the snoop filter: each node's exact resident
/// set, answering candidate queries by scanning for any resident block in
/// the queried address's region.
struct FilterModel {
    resident: Vec<std::collections::HashSet<u64>>,
}

impl FilterModel {
    fn new(cpus: usize) -> Self {
        FilterModel {
            resident: vec![std::collections::HashSet::new(); cpus],
        }
    }

    fn may_hold(&self, cpu: usize, addr: BlockAddr) -> bool {
        let region = mtvar_sim::mem::filter::region_of(addr);
        self.resident[cpu]
            .iter()
            .any(|&a| mtvar_sim::mem::filter::region_of(BlockAddr(a)) == region)
    }
}

/// Random fill/evict/query sequences against the reference model, at node
/// counts on both sides of the old u16 limit and both sides of a bitset
/// word boundary. The filter must be *exact at region granularity*: bit set
/// iff the node holds at least one block in the region — which subsumes the
/// conservative-exact property (a clear bit is never a false negative: the
/// node provably holds no copy of the queried address).
#[test]
fn snoop_filter_matches_reference_model_at_every_scale() {
    use mtvar_sim::mem::SnoopFilter;
    for cpus in [8usize, 17, 64, 128] {
        let mut rng = Xoshiro256StarStar::new(0x51_F1_7E ^ (cpus as u64));
        for _ in 0..8 {
            let mut filter = SnoopFilter::new(cpus);
            assert!(filter.enabled(), "{cpus} cpus: filter must stay enabled");
            let mut model = FilterModel::new(cpus);
            // Structured pool like the workload generators': widely spaced
            // bases with small offsets, so region collisions do occur.
            let pool: Vec<u64> = (0..96u64)
                .map(|i| 0x10_0000_0000 + (i % 6) * 0x4000_0000 + (i / 6) * 64)
                .collect();
            for _ in 0..600 {
                let cpu = rng.next_below(cpus as u64) as usize;
                let addr = pool[rng.next_below(pool.len() as u64) as usize];
                if model.resident[cpu].contains(&addr) {
                    filter.note_evict(cpu, BlockAddr(addr));
                    model.resident[cpu].remove(&addr);
                } else {
                    filter.note_fill(cpu, BlockAddr(addr));
                    model.resident[cpu].insert(addr);
                }
                // Exactness of the full candidate bitset for a random probe
                // address (resident or not) against the naive model.
                let probe = BlockAddr(pool[rng.next_below(pool.len() as u64) as usize]);
                assert_eq!(
                    filter.candidates(probe).len(),
                    cpus.div_ceil(64),
                    "{cpus} cpus: candidate bitset has the wrong width"
                );
                for c in 0..cpus {
                    assert_eq!(
                        filter.may_hold(c, probe),
                        model.may_hold(c, probe),
                        "{cpus} cpus: node {c} presence bit diverged for block {:#x}",
                        probe.0,
                    );
                    if !filter.may_hold(c, probe) {
                        assert!(
                            !model.resident[c].contains(&probe.0),
                            "{cpus} cpus: clear bit was a false negative",
                        );
                    }
                }
            }
        }
    }
}

/// End-to-end filtered coherence on machines wider than the old u16 limit:
/// the memory system's own debug differential (every filtered miss and
/// invalidation checked against the full broadcast) runs on every access in
/// these debug-built tests, and the single-writer invariant must hold.
#[test]
fn wide_machine_filtered_snooping_matches_broadcast() {
    for cpus in [17usize, 64] {
        let mut rng = Xoshiro256StarStar::new(0x51_0B1D ^ (cpus as u64));
        let mut mem = small_mem(cpus);
        let mut now = 0u64;
        for _ in 0..3000 {
            now += 10;
            let cpu = CpuId(rng.next_below(cpus as u64) as u32);
            let addr = BlockAddr(rng.next_below(256));
            let kind = if rng.next_bool(0.4) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            mem.access(cpu, addr, kind, now);
            assert!(
                mem.check_coherence_invariant(addr),
                "{cpus} cpus: single-writer violated"
            );
        }
        let p = mem.probe_stats();
        assert!(
            p.scan_probes < mem.stats().l2_misses * (cpus as u64 - 1),
            "{cpus} cpus: the filter should beat full broadcast on these traces \
             ({} probes over {} misses)",
            p.scan_probes,
            mem.stats().l2_misses,
        );
    }
}
