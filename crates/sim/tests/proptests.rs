//! Randomized tests of the simulator's structural invariants: cache
//! bookkeeping, the MOSI single-writer property under arbitrary access
//! interleavings, RNG bounds, and checkpoint equivalence.
//!
//! Formerly written against the `proptest` crate; rewritten as deterministic
//! seeded sweeps (driven by the crate's own [`Xoshiro256StarStar`]) so the
//! suite builds with no network access.

use mtvar_sim::config::MachineConfig;
use mtvar_sim::ids::{BlockAddr, CpuId};
use mtvar_sim::machine::Machine;
use mtvar_sim::mem::{
    CacheArray, CacheConfig, CoherenceState, MemoryConfig, MemorySystem, Perturbation,
};
use mtvar_sim::ops::AccessKind;
use mtvar_sim::rng::Xoshiro256StarStar;
use mtvar_sim::workload::SharingWorkload;

/// A random access sequence: (cpu in 0..4, block in 0..96, is_write).
fn accesses(rng: &mut Xoshiro256StarStar, max: usize) -> Vec<(u8, u16, bool)> {
    let n = rng.next_range(1, max as u64 - 1) as usize;
    (0..n)
        .map(|_| {
            (
                rng.next_below(4) as u8,
                rng.next_below(96) as u16,
                rng.next_bool(0.5),
            )
        })
        .collect()
}

fn small_mem(cpus: usize) -> MemorySystem {
    let mut cfg = MemoryConfig::hpca2003();
    cfg.l1i = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l1d = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l2 = CacheConfig::new(4096, 2, 64).unwrap();
    MemorySystem::new(cfg, cpus, Perturbation::new(4, 9)).unwrap()
}

#[test]
fn mosi_single_writer_invariant_holds() {
    let mut rng = Xoshiro256StarStar::new(0x51_0001);
    for _ in 0..64 {
        let ops = accesses(&mut rng, 400);
        let mut mem = small_mem(4);
        let mut now = 0u64;
        for (cpu, block, write) in &ops {
            now += 10;
            let kind = if *write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = mem.access(
                CpuId(u32::from(*cpu)),
                BlockAddr(u64::from(*block)),
                kind,
                now,
            );
            assert!(out.latency >= 1);
        }
        // Every touched block satisfies the protocol invariant afterwards.
        for b in 0..96u64 {
            assert!(
                mem.check_coherence_invariant(BlockAddr(b)),
                "block {b} violates MOSI"
            );
        }
    }
}

#[test]
fn store_grants_exclusive_access() {
    let mut rng = Xoshiro256StarStar::new(0x51_0002);
    for _ in 0..64 {
        let ops = accesses(&mut rng, 200);
        let victim = rng.next_below(96);
        let mut mem = small_mem(4);
        let mut now = 0u64;
        for (cpu, block, write) in &ops {
            now += 10;
            let kind = if *write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            mem.access(
                CpuId(u32::from(*cpu)),
                BlockAddr(u64::from(*block)),
                kind,
                now,
            );
        }
        // A final write by cpu 0 leaves exactly one valid copy: its own M.
        mem.access(CpuId(0), BlockAddr(victim), AccessKind::Write, now + 10);
        assert_eq!(
            mem.l2_state(CpuId(0), BlockAddr(victim)),
            CoherenceState::Modified
        );
        for c in 1..4u32 {
            assert_eq!(
                mem.l2_state(CpuId(c), BlockAddr(victim)),
                CoherenceState::Invalid
            );
        }
    }
}

#[test]
fn cache_array_never_exceeds_capacity() {
    let mut rng = Xoshiro256StarStar::new(0x51_0003);
    for _ in 0..64 {
        let cfg = CacheConfig::new(2048, 2, 64).unwrap(); // 32 blocks
        let mut cache = CacheArray::new(cfg).unwrap();
        let n = rng.next_range(1, 599);
        for _ in 0..n {
            cache.insert(BlockAddr(rng.next_below(4096)), CoherenceState::Shared);
            assert!(cache.resident_blocks() <= 32);
        }
    }
}

#[test]
fn cache_insert_then_probe_hits() {
    let mut rng = Xoshiro256StarStar::new(0x51_0004);
    for _ in 0..64 {
        let cfg = CacheConfig::new(4096, 4, 64).unwrap();
        let mut cache = CacheArray::new(cfg).unwrap();
        let fillers = rng.next_below(8);
        for _ in 0..fillers {
            cache.insert(BlockAddr(rng.next_below(100_000)), CoherenceState::Shared);
        }
        let addr = rng.next_below(100_000);
        cache.insert(BlockAddr(addr), CoherenceState::Owned);
        assert_eq!(cache.probe(BlockAddr(addr)), CoherenceState::Owned);
    }
}

#[test]
fn rng_bounds_hold() {
    let mut meta = Xoshiro256StarStar::new(0x51_0005);
    for _ in 0..64 {
        let seed = meta.next_u64();
        let bound = meta.next_range(1, 1_000_000);
        let lo = meta.next_below(1000);
        let width = meta.next_below(1000);
        let mut rng = Xoshiro256StarStar::new(seed);
        for _ in 0..50 {
            assert!(rng.next_below(bound) < bound);
            let v = rng.next_range(lo, lo + width);
            assert!((lo..=lo + width).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

#[test]
fn machine_determinism_for_arbitrary_seeds() {
    let mut meta = Xoshiro256StarStar::new(0x51_0006);
    for _ in 0..8 {
        let wseed = meta.next_u64();
        let pseed = meta.next_u64();
        let run = || {
            let cfg = MachineConfig::hpca2003()
                .with_cpus(2)
                .with_perturbation(4, pseed);
            let mut m = Machine::new(cfg, SharingWorkload::new(4, wseed, 30, 512, 8)).unwrap();
            m.run_transactions(40).unwrap().elapsed()
        };
        assert_eq!(run(), run());
    }
}

#[test]
fn checkpoint_equivalence_under_random_split() {
    let mut meta = Xoshiro256StarStar::new(0x51_0007);
    for _ in 0..8 {
        let wseed = meta.next_u64();
        let split = meta.next_range(10, 59);
        // Running A txns, checkpointing, then B txns must equal running
        // straight through when observed from the checkpoint onward.
        let cfg = MachineConfig::hpca2003()
            .with_cpus(2)
            .with_perturbation(4, 3);
        let mut m = Machine::new(cfg, SharingWorkload::new(4, wseed, 25, 256, 6)).unwrap();
        m.run_transactions(split).unwrap();
        let mut fork = m.checkpoint();
        let straight = m.run_transactions(30).unwrap();
        let forked = fork.run_transactions(30).unwrap();
        assert_eq!(straight.elapsed(), forked.elapsed());
        assert_eq!(straight.commit_cycles, forked.commit_cycles);
    }
}

#[test]
fn commit_log_is_sorted_and_complete() {
    let mut meta = Xoshiro256StarStar::new(0x51_0008);
    for _ in 0..8 {
        let wseed = meta.next_u64();
        let cfg = MachineConfig::hpca2003()
            .with_cpus(3)
            .with_perturbation(4, 1);
        let mut m = Machine::new(cfg, SharingWorkload::new(6, wseed, 20, 512, 5)).unwrap();
        let r = m.run_transactions(50).unwrap();
        assert_eq!(r.transactions, 50);
        assert_eq!(r.commit_cycles.len(), 50);
        assert!(r.commit_cycles.windows(2).all(|w| w[0] <= w[1]));
        assert!(r.end_cycle >= r.start_cycle);
    }
}
