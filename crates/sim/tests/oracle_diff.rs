//! Differential testing: the timed simulator's coherence behaviour against
//! the untimed functional reference model in `mtvar_sim::check::oracle`, on
//! seeded random traces, for all three protocol variants.
//!
//! The oracle models no capacity, so the traces are confined to a working
//! set the timed L2 can hold without a single eviction: the L2 below is
//! 8192 B / 4-way / 64 B = 32 sets × 4 ways, and addresses span 0..128 —
//! exactly 4 distinct tags per set. Under those conditions the timed L2
//! must agree with the specification state-for-state after every access,
//! and every access must be served from the source class the specification
//! dictates. L1 evictions may still occur (the L1s are tiny); they are
//! invisible at this level, which the tests confirm.

use mtvar_sim::check::oracle::{CoherenceOracle, OracleSource};
use mtvar_sim::check::InvariantMonitor;
use mtvar_sim::ids::{BlockAddr, CpuId};
use mtvar_sim::mem::{CacheConfig, CoherenceProtocol, MemoryConfig, MemorySystem, Perturbation};
use mtvar_sim::ops::AccessKind;
use mtvar_sim::rng::Xoshiro256StarStar;

const CPUS: usize = 4;
const BLOCKS: u64 = 128;

/// A memory system whose L2 can hold the whole 0..128 address space.
fn no_eviction_mem(protocol: CoherenceProtocol) -> MemorySystem {
    let mut cfg = MemoryConfig::hpca2003();
    cfg.l1i = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l1d = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l2 = CacheConfig::new(8192, 4, 64).unwrap();
    cfg.protocol = protocol;
    MemorySystem::new(cfg, CPUS, Perturbation::new(4, 0xD1FF)).unwrap()
}

fn random_trace(rng: &mut Xoshiro256StarStar, len: usize) -> Vec<(CpuId, BlockAddr, AccessKind)> {
    (0..len)
        .map(|_| {
            (
                CpuId(rng.next_below(CPUS as u64) as u32),
                BlockAddr(rng.next_below(BLOCKS)),
                if rng.next_bool(0.4) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            )
        })
        .collect()
}

/// Runs one trace through both models, comparing the served-from class and
/// the accessed block's L2 states across all nodes after every access, and
/// the full address space at the end. Also keeps the invariant monitor
/// watching the timed side throughout.
fn diff_one_trace(protocol: CoherenceProtocol, trace: &[(CpuId, BlockAddr, AccessKind)]) {
    let mut mem = no_eviction_mem(protocol);
    let mut oracle = CoherenceOracle::new(protocol, CPUS);
    let mut monitor = InvariantMonitor::new(protocol);
    let mut now = 0u64;
    for (step, &(cpu, addr, kind)) in trace.iter().enumerate() {
        now += 1000;
        let timed = mem.access(cpu, addr, kind, now);
        let expected = oracle.apply(cpu, addr, kind);
        assert_eq!(
            OracleSource::from_timed(timed.source),
            expected,
            "{protocol:?} step {step}: {cpu} {kind:?} block {} served from {:?}, spec says {expected:?}",
            addr.0,
            timed.source,
        );
        for i in 0..CPUS {
            let c = CpuId(i as u32);
            assert_eq!(
                mem.l2_state(c, addr),
                oracle.state(c, addr),
                "{protocol:?} step {step}: {c} L2 state of block {} diverged from spec",
                addr.0,
            );
        }
        monitor.note_data_op();
        monitor.check_block(&mem, addr, now);
    }
    // Full sweep: every block the trace could have touched agrees.
    for b in 0..BLOCKS {
        for i in 0..CPUS {
            let c = CpuId(i as u32);
            assert_eq!(
                mem.l2_state(c, BlockAddr(b)),
                oracle.state(c, BlockAddr(b)),
                "{protocol:?} final sweep: {c} block {b} diverged",
            );
        }
    }
    monitor.check_conservation(mem.stats(), now);
    assert!(
        monitor.is_clean(),
        "{protocol:?}: monitor found violations: {:?}",
        monitor.violations()
    );
}

fn diff_protocol(protocol: CoherenceProtocol, seed: u64) {
    let mut rng = Xoshiro256StarStar::new(seed);
    for _ in 0..48 {
        let len = rng.next_range(50, 400) as usize;
        let trace = random_trace(&mut rng, len);
        diff_one_trace(protocol, &trace);
    }
}

#[test]
fn mosi_matches_reference_model() {
    diff_protocol(CoherenceProtocol::Mosi, 0x0D1F_0001);
}

#[test]
fn mesi_matches_reference_model() {
    diff_protocol(CoherenceProtocol::Mesi, 0x0D1F_0002);
}

#[test]
fn moesi_matches_reference_model() {
    diff_protocol(CoherenceProtocol::Moesi, 0x0D1F_0003);
}

#[test]
fn single_writer_heavy_trace_matches() {
    // All-write traces stress the invalidation path specifically.
    let mut rng = Xoshiro256StarStar::new(0x0D1F_0004);
    for protocol in [
        CoherenceProtocol::Mosi,
        CoherenceProtocol::Mesi,
        CoherenceProtocol::Moesi,
    ] {
        for _ in 0..16 {
            let trace: Vec<_> = (0..200)
                .map(|_| {
                    (
                        CpuId(rng.next_below(CPUS as u64) as u32),
                        BlockAddr(rng.next_below(8)), // heavy conflict on 8 blocks
                        AccessKind::Write,
                    )
                })
                .collect();
            diff_one_trace(protocol, &trace);
        }
    }
}

#[test]
fn monitor_stays_clean_beyond_oracle_coverage() {
    // Outside the no-eviction envelope the oracle no longer applies, but the
    // per-block invariants must still hold. Wide address range on the same
    // small L2 forces constant evictions.
    let mut rng = Xoshiro256StarStar::new(0x0D1F_0005);
    for protocol in [
        CoherenceProtocol::Mosi,
        CoherenceProtocol::Mesi,
        CoherenceProtocol::Moesi,
    ] {
        let mut mem = no_eviction_mem(protocol);
        let mut monitor = InvariantMonitor::new(protocol);
        let mut now = 0u64;
        for _ in 0..4000 {
            now += 100;
            let cpu = CpuId(rng.next_below(CPUS as u64) as u32);
            let addr = BlockAddr(rng.next_below(4096));
            let kind = if rng.next_bool(0.5) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            mem.access(cpu, addr, kind, now);
            monitor.note_data_op();
            monitor.check_block(&mem, addr, now);
        }
        monitor.check_conservation(mem.stats(), now);
        assert!(
            monitor.is_clean(),
            "{protocol:?}: {:?}",
            monitor.violations()
        );
    }
}
