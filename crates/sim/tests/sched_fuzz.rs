//! Differential fuzzing of the scheduler against an independent reference
//! model, in the style of `oracle_diff`: seeded random sequences of valid
//! dispatch/preempt/yield/block/sleep/wake operations drive both models in
//! lockstep, comparing every dispatch decision, every thread state, the
//! ready-queue depth and the counters after each step.
//!
//! The reference reimplements the documented contract — a global FIFO ready
//! queue with round-robin dispatch, a soft-affinity scan over the first
//! `affinity_window` ready threads (an affine thread that last ran on the
//! idle CPU is picked early, unless it is the thread that CPU just ran),
//! blocking/sleeping grants an affinity claim, preemption/yield clears it,
//! and a dispatch onto a different CPU than the thread's previous one counts
//! as a migration — from the docs, not from the implementation, so a drift
//! in either shows up as a divergence.
//!
//! Every few steps the scheduler is also round-tripped through its `Snap`
//! encoding and the restored copy must compare equal — the scheduler half of
//! the machine checkpoint guarantee.

use mtvar_sim::checkpoint::{Decoder, Encoder, Snap};
use mtvar_sim::ids::{CpuId, LockId, ThreadId};
use mtvar_sim::rng::Xoshiro256StarStar;
use mtvar_sim::sched::{SchedConfig, Scheduler, ThreadState};

#[derive(Clone, Copy)]
struct RefThread {
    state: ThreadState,
    last_cpu: Option<CpuId>,
    affine: bool,
}

/// The documented scheduling contract, restated as plainly as possible.
struct RefSched {
    window: usize,
    threads: Vec<RefThread>,
    ready: Vec<ThreadId>,
    last_thread: Vec<Option<ThreadId>>,
    dispatches: u64,
    preemptions: u64,
    migrations: u64,
    yields: u64,
}

impl RefSched {
    fn new(config: &SchedConfig, thread_count: usize, cpu_count: usize) -> Self {
        RefSched {
            window: config.affinity_window.max(1),
            threads: vec![
                RefThread {
                    state: ThreadState::Ready,
                    last_cpu: None,
                    affine: false,
                };
                thread_count
            ],
            ready: (0..thread_count as u32).map(ThreadId).collect(),
            last_thread: vec![None; cpu_count],
            dispatches: 0,
            preemptions: 0,
            migrations: 0,
            yields: 0,
        }
    }

    fn dispatch(&mut self, cpu: CpuId) -> Option<ThreadId> {
        // Round-robin baseline: the queue head. Affinity override: the first
        // thread within the window holding a warm-cache claim on this CPU,
        // unless it is the one this CPU ran last.
        let head = *self.ready.first()?;
        let affine_pick = self.ready.iter().take(self.window).copied().find(|&t| {
            let rec = self.threads[t.index()];
            rec.affine && rec.last_cpu == Some(cpu) && self.last_thread[cpu.index()] != Some(t)
        });
        let chosen = affine_pick.unwrap_or(head);
        self.ready.retain(|&t| t != chosen);
        let rec = &mut self.threads[chosen.index()];
        if rec.last_cpu.is_some_and(|c| c != cpu) {
            self.migrations += 1;
        }
        rec.state = ThreadState::Running(cpu);
        rec.last_cpu = Some(cpu);
        rec.affine = false;
        self.last_thread[cpu.index()] = Some(chosen);
        self.dispatches += 1;
        Some(chosen)
    }

    fn requeue(&mut self, thread: ThreadId) {
        self.threads[thread.index()].state = ThreadState::Ready;
        self.threads[thread.index()].affine = false;
        self.ready.push(thread);
    }

    fn preempt(&mut self, thread: ThreadId) {
        self.requeue(thread);
        self.preemptions += 1;
    }

    fn yield_thread(&mut self, thread: ThreadId) {
        self.requeue(thread);
        self.yields += 1;
    }

    fn block_on_lock(&mut self, thread: ThreadId, lock: LockId) {
        let rec = &mut self.threads[thread.index()];
        rec.state = ThreadState::Blocked(lock);
        rec.affine = true;
    }

    fn sleep(&mut self, thread: ThreadId) {
        let rec = &mut self.threads[thread.index()];
        rec.state = ThreadState::Sleeping;
        rec.affine = true;
    }

    fn wake(&mut self, thread: ThreadId) {
        self.threads[thread.index()].state = ThreadState::Ready;
        self.ready.push(thread);
    }
}

fn snap_round_trip(sched: &Scheduler) -> Scheduler {
    let mut enc = Encoder::new();
    sched.encode_snap(&mut enc);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    let restored = Scheduler::decode_snap(&mut dec).expect("scheduler decodes");
    dec.finish()
        .expect("no trailing bytes after scheduler decode");
    restored
}

fn check_agreement(step: usize, label: &str, sched: &Scheduler, model: &RefSched) {
    assert_eq!(
        sched.ready_len(),
        model.ready.len(),
        "{label} step {step}: ready-queue depth diverged"
    );
    for t in 0..model.threads.len() {
        assert_eq!(
            sched.thread_state(ThreadId(t as u32)),
            model.threads[t].state,
            "{label} step {step}: thread {t} state diverged"
        );
    }
    let stats = sched.stats();
    assert_eq!(
        (
            stats.dispatches,
            stats.preemptions,
            stats.migrations,
            stats.yields
        ),
        (
            model.dispatches,
            model.preemptions,
            model.migrations,
            model.yields
        ),
        "{label} step {step}: counters diverged"
    );
}

/// One fuzz campaign: `steps` random valid operations against both models.
fn fuzz_campaign(label: &str, config: SchedConfig, threads: usize, cpus: usize, seed: u64) {
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut sched = Scheduler::new(config, threads, cpus).unwrap();
    let mut model = RefSched::new(&config, threads, cpus);
    // The driver's own view of who runs where — both models must match it.
    let mut running: Vec<Option<ThreadId>> = vec![None; cpus];
    let mut now = 0u64;
    for step in 0..600 {
        now += 1 + rng.next_below(2_000);
        let idle: Vec<CpuId> = (0..cpus as u32)
            .map(CpuId)
            .filter(|c| running[c.index()].is_none())
            .collect();
        let busy: Vec<CpuId> = (0..cpus as u32)
            .map(CpuId)
            .filter(|c| running[c.index()].is_some())
            .collect();
        let parked: Vec<ThreadId> = (0..threads as u32)
            .map(ThreadId)
            .filter(|&t| {
                matches!(
                    sched.thread_state(t),
                    ThreadState::Blocked(_) | ThreadState::Sleeping
                )
            })
            .collect();
        // Weighted valid-op choice: favour dispatch so CPUs stay busy and the
        // affinity window sees a populated queue.
        let op = rng.next_below(8);
        match op {
            0..=2 if !idle.is_empty() => {
                let cpu = idle[rng.next_below(idle.len() as u64) as usize];
                let got = sched.dispatch(cpu, now);
                let want = model.dispatch(cpu);
                assert_eq!(got, want, "{label} step {step}: dispatch on {cpu} diverged");
                running[cpu.index()] = got;
            }
            3 if !busy.is_empty() => {
                let cpu = busy[rng.next_below(busy.len() as u64) as usize];
                let t = running[cpu.index()].take().unwrap();
                sched.preempt(t, cpu, now);
                model.preempt(t);
            }
            4 if !busy.is_empty() => {
                let cpu = busy[rng.next_below(busy.len() as u64) as usize];
                let t = running[cpu.index()].take().unwrap();
                sched.yield_thread(t, cpu, now);
                model.yield_thread(t);
            }
            5 if !busy.is_empty() => {
                let cpu = busy[rng.next_below(busy.len() as u64) as usize];
                let t = running[cpu.index()].take().unwrap();
                let lock = LockId(rng.next_below(4) as u32);
                sched.block_on_lock(t, lock, cpu, now);
                model.block_on_lock(t, lock);
            }
            6 if !busy.is_empty() => {
                let cpu = busy[rng.next_below(busy.len() as u64) as usize];
                let t = running[cpu.index()].take().unwrap();
                sched.sleep(t, cpu, now);
                model.sleep(t);
            }
            _ if !parked.is_empty() => {
                let t = parked[rng.next_below(parked.len() as u64) as usize];
                sched.wake(t, now);
                model.wake(t);
            }
            _ => continue, // chosen op has no valid target this step
        }
        check_agreement(step, label, &sched, &model);
        if step % 37 == 0 {
            let restored = snap_round_trip(&sched);
            assert_eq!(
                sched, restored,
                "{label} step {step}: Snap round-trip changed the scheduler"
            );
            sched = restored;
        }
    }
}

#[test]
fn default_window_matches_reference() {
    fuzz_campaign("w4", SchedConfig::default(), 12, 4, 0x5CED_0001);
    fuzz_campaign("w4-tight", SchedConfig::default(), 3, 2, 0x5CED_0002);
}

#[test]
fn window_one_is_pure_round_robin() {
    let config = SchedConfig {
        affinity_window: 1,
        ..SchedConfig::default()
    };
    fuzz_campaign("w1", config, 10, 4, 0x5CED_0003);
}

#[test]
fn oversized_window_scans_whole_queue() {
    let config = SchedConfig {
        affinity_window: 64,
        ..SchedConfig::default()
    };
    fuzz_campaign("w64", config, 8, 3, 0x5CED_0004);
    fuzz_campaign("w64-many", config, 24, 6, 0x5CED_0005);
}
