//! Differential fuzz of the calendar [`EventQueue`] against a reference
//! `BinaryHeap<Reverse<T>>` — the exact structure the queue replaced.
//!
//! The machine's determinism contract hangs on the queue delivering events
//! in strict `(time, seq)` order and on snapshots reproducing the same
//! sorted serialization the heap produced. Random interleavings of push,
//! pop, peek, and snapshot/rebuild are driven from seeded streams so a
//! failure replays exactly; the push contract (`time >= floor()`) mirrors
//! how the machine only posts from the event being handled *now*.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mtvar_sim::equeue::{EventQueue, Timed};
use mtvar_sim::rng::Xoshiro256StarStar;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Item {
    time: u64,
    seq: u64,
}

impl Timed for Item {
    fn time(&self) -> u64 {
        self.time
    }
}

/// Reference model: the pre-overhaul binary min-heap.
#[derive(Default)]
struct RefHeap {
    heap: BinaryHeap<Reverse<Item>>,
}

impl RefHeap {
    fn push(&mut self, item: Item) {
        self.heap.push(Reverse(item));
    }
    fn pop(&mut self) -> Option<Item> {
        self.heap.pop().map(|Reverse(i)| i)
    }
    fn peek(&self) -> Option<Item> {
        self.heap.peek().map(|&Reverse(i)| i)
    }
    fn sorted(&self) -> Vec<Item> {
        let mut v: Vec<Item> = self.heap.iter().map(|&Reverse(i)| i).collect();
        v.sort_unstable();
        v
    }
}

/// One fuzz episode: `ops` random operations from `seed`, then a full drain.
/// Time deltas span 0..=6000 so pushes land both inside the 4096-slot wheel
/// window and in the overflow heap, and repeat deltas force equal-timestamp
/// tie-breaks that only the `seq` field can order.
fn episode(seed: u64, ops: usize) {
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut q: EventQueue<Item> = EventQueue::new(0);
    let mut reference = RefHeap::default();
    let mut seq = 0u64;

    for step in 0..ops {
        match rng.next_u64() % 10 {
            // Push: biased toward bursts at the exact same timestamp.
            0..=4 => {
                let base = q.floor();
                let delta = match rng.next_u64() % 4 {
                    0 => 0,                            // now: ties with earlier pushes
                    1 => rng.next_u64() % 16,          // near future, dense buckets
                    2 => rng.next_u64() % 4096,        // anywhere in the wheel window
                    _ => 4096 + rng.next_u64() % 2000, // overflow territory
                };
                let item = Item {
                    time: base + delta,
                    seq,
                };
                seq += 1;
                q.push(item);
                reference.push(item);
            }
            5..=7 => {
                assert_eq!(
                    q.pop(),
                    reference.pop(),
                    "pop diverged (seed {seed}, step {step})"
                );
            }
            8 => {
                assert_eq!(
                    q.peek(),
                    reference.peek(),
                    "peek diverged (seed {seed}, step {step})"
                );
            }
            _ => {
                // Snapshot: the queue serializes as a sorted event list; the
                // rebuilt queue must behave identically to the original.
                let mut items = q.to_vec();
                items.sort_unstable();
                assert_eq!(
                    items,
                    reference.sorted(),
                    "snapshot contents diverged (seed {seed}, step {step})"
                );
                q = EventQueue::from_items(q.floor(), items);
            }
        }
        assert_eq!(
            q.len(),
            reference.heap.len(),
            "length diverged (seed {seed}, step {step})"
        );
    }

    // Full drain: every remaining event must come out in (time, seq) order.
    while let Some(expect) = reference.pop() {
        assert_eq!(q.pop(), Some(expect), "drain diverged (seed {seed})");
    }
    assert!(q.is_empty());
    assert_eq!(q.pop(), None);
}

#[test]
fn differential_fuzz_against_binary_heap() {
    for seed in 0..8u64 {
        episode(0x5EED_0000 + seed, 4000);
    }
}

#[test]
fn equal_timestamp_bursts_break_ties_by_seq() {
    // A pure tie-break stress: many events at few distinct timestamps, so
    // almost every ordering decision falls to the sequence number.
    let mut rng = Xoshiro256StarStar::new(0x71E5);
    let mut q: EventQueue<Item> = EventQueue::new(100);
    let mut reference = RefHeap::default();
    for seq in 0..2000u64 {
        let time = 100 + (rng.next_u64() % 3) * 4096; // 3 timestamps: wheel + overflow
        let item = Item { time, seq };
        q.push(item);
        reference.push(item);
    }
    while let Some(expect) = reference.pop() {
        assert_eq!(q.pop(), Some(expect), "tie-break order diverged");
    }
    assert!(q.is_empty());
}
