//! Differential testing of the two coherence transports: seeded random
//! traces driven through a snooping memory system and a directory memory
//! system in lockstep, for all three protocol state machines, on ≤16-CPU
//! configurations where both transports are defined.
//!
//! The directory organization changes *where* transactions serialize and
//! how many probes they cost — never what the protocol decides. So given
//! the same access sequence the two backends must agree on every access's
//! source class, every cache state at every level, and every statistic
//! except bus waiting time (the only quantity the transport's arbitration
//! structure is allowed to move). A second suite pins the directory side
//! against the untimed [`CoherenceOracle`] inside the no-eviction envelope,
//! with the invariant monitor watching throughout — the same discipline
//! `oracle_diff.rs` applies to snooping.
//!
//! [`CoherenceOracle`]: mtvar_sim::check::oracle::CoherenceOracle

use mtvar_sim::check::oracle::{CoherenceOracle, OracleSource};
use mtvar_sim::check::InvariantMonitor;
use mtvar_sim::ids::{BlockAddr, CpuId};
use mtvar_sim::mem::{CacheConfig, CoherenceProtocol, MemoryConfig, MemorySystem, Perturbation};
use mtvar_sim::ops::AccessKind;
use mtvar_sim::rng::Xoshiro256StarStar;

const BLOCKS: u64 = 512;
const PERT_SEED: u64 = 0xD1FF_D1FF;

const BASE_PROTOCOLS: [CoherenceProtocol; 3] = [
    CoherenceProtocol::Mosi,
    CoherenceProtocol::Mesi,
    CoherenceProtocol::Moesi,
];

/// A small-cache memory system (evictions are frequent) under `protocol`.
fn small_mem(protocol: CoherenceProtocol, cpus: usize) -> MemorySystem {
    let mut cfg = MemoryConfig::hpca2003();
    cfg.l1i = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l1d = CacheConfig::new(512, 2, 64).unwrap();
    cfg.l2 = CacheConfig::new(8192, 4, 64).unwrap();
    cfg.protocol = protocol;
    MemorySystem::new(cfg, cpus, Perturbation::new(4, PERT_SEED)).unwrap()
}

fn random_trace(
    rng: &mut Xoshiro256StarStar,
    cpus: usize,
    len: usize,
) -> Vec<(CpuId, BlockAddr, AccessKind)> {
    (0..len)
        .map(|_| {
            (
                CpuId(rng.next_below(cpus as u64) as u32),
                BlockAddr(rng.next_below(BLOCKS)),
                if rng.next_bool(0.4) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            )
        })
        .collect()
}

/// Drives `trace` through a snooping and a directory machine in lockstep
/// and asserts they agree on everything but arbitration waiting time.
fn diff_transports(base: CoherenceProtocol, cpus: usize, trace: &[(CpuId, BlockAddr, AccessKind)]) {
    let mut snoop = small_mem(base, cpus);
    let mut dir = small_mem(base.directory(), cpus);
    let mut now = 0u64;
    for (step, &(cpu, addr, kind)) in trace.iter().enumerate() {
        now += 1000;
        let s = snoop.access(cpu, addr, kind, now);
        let d = dir.access(cpu, addr, kind, now);
        assert_eq!(
            s.source, d.source,
            "{base:?} cpus={cpus} step {step}: transports served {cpu} {kind:?} \
             block {} from different classes",
            addr.0,
        );
        for i in 0..cpus {
            let c = CpuId(i as u32);
            assert_eq!(
                snoop.l2_state(c, addr),
                dir.l2_state(c, addr),
                "{base:?} cpus={cpus} step {step}: {c} L2 state of block {} diverged",
                addr.0,
            );
        }
    }
    // Final sweep: every block, every cache level, every node.
    for b in 0..BLOCKS {
        let a = BlockAddr(b);
        for i in 0..cpus {
            let c = CpuId(i as u32);
            assert_eq!(
                snoop.l2_state(c, a),
                dir.l2_state(c, a),
                "{base:?} L2 {c} block {b}"
            );
            assert_eq!(
                snoop.l1d_state(c, a),
                dir.l1d_state(c, a),
                "{base:?} L1D {c} block {b}"
            );
            assert_eq!(
                snoop.l1i_state(c, a),
                dir.l1i_state(c, a),
                "{base:?} L1I {c} block {b}"
            );
        }
    }
    // Statistics: identical except the transport-defined waiting time.
    let mut s = *snoop.stats();
    let mut d = *dir.stats();
    s.bus_wait_ns = 0;
    d.bus_wait_ns = 0;
    assert_eq!(
        s, d,
        "{base:?} cpus={cpus}: counters diverged across transports"
    );
}

#[test]
fn transports_agree_on_random_traces() {
    for base in BASE_PROTOCOLS {
        for cpus in [2usize, 5, 16] {
            let mut rng = Xoshiro256StarStar::new(0xC0DE ^ (cpus as u64) << 8);
            for _ in 0..12 {
                let len = rng.next_range(100, 600) as usize;
                let trace = random_trace(&mut rng, cpus, len);
                diff_transports(base, cpus, &trace);
            }
        }
    }
}

#[test]
fn transports_agree_under_write_contention() {
    // All-write traces over a handful of blocks stress the invalidation and
    // upgrade paths, where the directory consults exact sharer sets.
    for base in BASE_PROTOCOLS {
        let mut rng = Xoshiro256StarStar::new(0xBEA7 ^ 0x11);
        for _ in 0..8 {
            let trace: Vec<_> = (0..300)
                .map(|_| {
                    (
                        CpuId(rng.next_below(16) as u32),
                        BlockAddr(rng.next_below(8)),
                        AccessKind::Write,
                    )
                })
                .collect();
            diff_transports(base, 16, &trace);
        }
    }
}

/// The oracle-diff discipline of `oracle_diff.rs`, applied to the directory
/// transport: inside the no-eviction envelope (L2 holds the whole 0..128
/// space) the directory-timed system must match the untimed specification
/// state-for-state and source-for-source, with the invariant monitor clean.
fn oracle_diff_directory(protocol: CoherenceProtocol, seed: u64) {
    const CPUS: usize = 4;
    const ORACLE_BLOCKS: u64 = 128;
    assert!(protocol.is_directory());
    let mut rng = Xoshiro256StarStar::new(seed);
    for _ in 0..24 {
        let len = rng.next_range(50, 400) as usize;
        let mut mem = small_mem(protocol, CPUS);
        let mut oracle = CoherenceOracle::new(protocol, CPUS);
        let mut monitor = InvariantMonitor::new(protocol);
        let mut now = 0u64;
        for step in 0..len {
            now += 1000;
            let cpu = CpuId(rng.next_below(CPUS as u64) as u32);
            let addr = BlockAddr(rng.next_below(ORACLE_BLOCKS));
            let kind = if rng.next_bool(0.4) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let timed = mem.access(cpu, addr, kind, now);
            let expected = oracle.apply(cpu, addr, kind);
            assert_eq!(
                OracleSource::from_timed(timed.source),
                expected,
                "{protocol:?} step {step}: {cpu} {kind:?} block {} served from {:?}, \
                 spec says {expected:?}",
                addr.0,
                timed.source,
            );
            for i in 0..CPUS {
                let c = CpuId(i as u32);
                assert_eq!(
                    mem.l2_state(c, addr),
                    oracle.state(c, addr),
                    "{protocol:?} step {step}: {c} L2 state of block {} diverged from spec",
                    addr.0,
                );
            }
            monitor.note_data_op();
            monitor.check_block(&mem, addr, now);
        }
        monitor.check_conservation(mem.stats(), now);
        assert!(
            monitor.is_clean(),
            "{protocol:?}: monitor found violations: {:?}",
            monitor.violations()
        );
    }
}

#[test]
fn dir_mosi_matches_reference_model() {
    oracle_diff_directory(CoherenceProtocol::DirMosi, 0x0D1F_1001);
}

#[test]
fn dir_mesi_matches_reference_model() {
    oracle_diff_directory(CoherenceProtocol::DirMesi, 0x0D1F_1002);
}

#[test]
fn dir_moesi_matches_reference_model() {
    oracle_diff_directory(CoherenceProtocol::DirMoesi, 0x0D1F_1003);
}
