//! Simulator throughput check: how many transactions and simulated cycles
//! per wall-second the engine sustains on this host (the number that decides
//! how many perturbed runs a methodology user can afford).
//!
//! ```text
//! cargo run --release -p mtvar-sim --example speed
//! ```

use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::workload::SharingWorkload;
use std::time::Instant;

fn main() {
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 1);
    let wl = SharingWorkload::new(128, 42, 300, 2_000_000, 25);
    let mut m = Machine::new(cfg, wl).unwrap();
    let t0 = Instant::now();
    let r = m.run_transactions(2000).unwrap();
    let dt = t0.elapsed();
    println!(
        "2000 txns in {:?}; {:.0} cycles/txn; sim cycles {}; {:.1} Mcycles/s; {:.0} txns/s",
        dt,
        r.cycles_per_transaction(),
        r.elapsed(),
        r.elapsed() as f64 / 1e6 / dt.as_secs_f64(),
        2000.0 / dt.as_secs_f64()
    );
    println!("mem: {:?}", r.mem);
    println!("sched: {:?}", r.sched);
    println!("locks: {:?}", r.locks);
}
