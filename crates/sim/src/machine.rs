//! The full-system machine: a conservative discrete-event engine tying
//! together processors, the coherent memory system, the OS scheduler, locks
//! and the workload.
//!
//! Events are processed in `(time, sequence)` order, so execution is a total
//! order over CPU steps — deterministic for a given `(config, workload)`
//! pair, exactly like the paper's simulator (§3.3: "our simulator is
//! deterministic: it produces the same execution path for each
//! workload/system configuration every time"). Variability enters only
//! through the configured perturbation or noise seeds.

use crate::check::{InvariantMonitor, Violation};
use crate::checkpoint::{
    Checkpoint, CheckpointError, Decoder, Encoder, SectionEncoder, SectionKind, SectionReader, Snap,
};
use crate::config::{FaultKind, MachineConfig};
use crate::equeue::EventQueue;
use crate::ids::{BlockAddr, CpuId, Cycle, Nanos, ThreadId};
use crate::mem::{MemorySystem, Perturbation};
use crate::noise::NoiseState;
use crate::ops::{AccessKind, Op};
use crate::proc::{ProcCore, ProcStats, SYNC_OP_COST_NS};
use crate::sched::Scheduler;
use crate::stats::RunResult;
use crate::sync::{AcquireOutcome, LockTable};
use crate::workload::Workload;
use crate::SimError;

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Event {
    time: Cycle,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum EventKind {
    /// The CPU finished its previous step and can take another.
    CpuReady(CpuId),
    /// A sleeping/blocked thread becomes runnable.
    ThreadWake(ThreadId),
}

impl crate::equeue::Timed for Event {
    fn time(&self) -> u64 {
        self.time
    }
}

/// Per-CPU execution state.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Cpu {
    core: ProcCore,
    thread: Option<ThreadId>,
    /// True when the CPU went to sleep with nothing to run; a thread wake
    /// must kick it.
    idle: bool,
    busy_ns: u64,
}

/// The simulated machine, generic over the workload it runs.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_sim::SimError> {
/// use mtvar_sim::config::MachineConfig;
/// use mtvar_sim::machine::Machine;
/// use mtvar_sim::workload::UniformWorkload;
///
/// let cfg = MachineConfig::hpca2003().with_cpus(4);
/// let mut machine = Machine::new(cfg, UniformWorkload::new(8, 50, 20))?;
/// let result = machine.run_transactions(100)?;
/// assert_eq!(result.transactions, 100);
/// assert!(result.cycles_per_transaction() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Machine<W> {
    config: MachineConfig,
    now: Cycle,
    seq: u64,
    events: EventQueue<Event>,
    cpus: Vec<Cpu>,
    mem: MemorySystem,
    sched: Scheduler,
    locks: LockTable,
    noise: Option<NoiseState>,
    /// Read-only invariant checker; present when
    /// `config.check_invariants` is set or the `invariant-monitor` cargo
    /// feature is enabled.
    monitor: Option<InvariantMonitor>,
    workload: W,
    committed: u64,
    commit_log: Vec<Cycle>,
    measure_start: Cycle,
    measure_committed_base: u64,
    /// CPUs currently parked idle; lets `kick_idle_cpu` skip its slot scan
    /// in the common all-busy case. Derived (never serialized).
    idle_cpus: usize,
    /// Reusable buffer for `check_schedule`'s CPU-slot snapshot — working
    /// memory only, never serialized, so monitored machines stay
    /// allocation-free between violations.
    slot_scratch: Vec<Option<ThreadId>>,
}

impl<W: Workload> Machine<W> {
    /// Builds a machine and places every workload thread in the ready queue.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// inconsistent or the workload declares zero threads.
    pub fn new(config: MachineConfig, workload: W) -> Result<Self, SimError> {
        config.validate()?;
        let threads = workload.thread_count();
        if threads == 0 {
            return Err(SimError::InvalidConfig {
                what: "workload must declare at least one thread".into(),
            });
        }
        let mem = MemorySystem::new(
            config.memory,
            config.cpus,
            Perturbation::new(config.perturbation_max_ns, config.perturbation_seed),
        )?;
        let mut sched = Scheduler::new(config.sched, threads, config.cpus)?;
        sched.set_log_enabled(config.record_sched_events);
        let noise = match &config.noise {
            Some(n) => Some(NoiseState::new(*n, config.cpus)?),
            None => None,
        };
        let cpus = (0..config.cpus)
            .map(|_| Cpu {
                core: ProcCore::new(&config.processor),
                thread: None,
                idle: false,
                busy_ns: 0,
            })
            .collect();
        // The feature ORs in at construction rather than changing the config
        // default, so the config's Debug fingerprint (and the run seeds
        // derived from it) stays identical across feature-on/off builds.
        let monitor = if config.check_invariants || cfg!(feature = "invariant-monitor") {
            Some(InvariantMonitor::new(config.memory.protocol))
        } else {
            None
        };
        let mut machine = Machine {
            config,
            now: 0,
            seq: 0,
            events: EventQueue::new(0),
            cpus,
            mem,
            sched,
            locks: LockTable::new(threads),
            noise,
            monitor,
            workload,
            committed: 0,
            commit_log: Vec::new(),
            measure_start: 0,
            measure_committed_base: 0,
            idle_cpus: 0,
            slot_scratch: Vec::new(),
        };
        for i in 0..machine.config.cpus {
            machine.post(0, EventKind::CpuReady(CpuId(i as u32)));
        }
        Ok(machine)
    }

    /// The configuration in force.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Transactions committed since construction.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Total events posted since construction (the kernel's sequence
    /// counter). The delta across an interval divided by wall time is the
    /// simulator's events/second — the scaling currency for how many
    /// perturbed runs a methodology user can afford.
    pub fn events_posted(&self) -> u64 {
        self.seq
    }

    /// Immutable access to the workload (e.g. to inspect generator state).
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Immutable access to the memory system (stats, invariant checks).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Immutable access to the scheduler (log, stats).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// The invariant monitor, when one is enabled (via
    /// [`MachineConfig::check_invariants`] or the `invariant-monitor`
    /// feature).
    pub fn invariant_monitor(&self) -> Option<&InvariantMonitor> {
        self.monitor.as_ref()
    }

    /// Invariant violations recorded so far; empty when monitoring is
    /// disabled or nothing is wrong.
    pub fn invariant_violations(&self) -> &[Violation] {
        self.monitor.as_ref().map_or(&[], |m| m.violations())
    }

    /// Drains and returns the stored invariant-violation reports (empty when
    /// monitoring is disabled or nothing fired). The monitor's uncapped
    /// total-violations counter is untouched, so
    /// [`InvariantMonitor::is_clean`] keeps reporting whether anything was
    /// ever detected. This is how the parallel run-space executor pulls each
    /// run's findings out of its machine and into the violations channel.
    pub fn take_invariant_violations(&mut self) -> Vec<Violation> {
        self.monitor
            .as_mut()
            .map_or_else(Vec::new, InvariantMonitor::take_violations)
    }

    /// Turns on invariant checking for the rest of this machine's life,
    /// creating a monitor if none exists yet. Used by strict executors on
    /// restored checkpoints, whose configuration (and hence fingerprint) must
    /// stay untouched until after seed derivation.
    ///
    /// Call between measurement intervals: a monitor created mid-interval
    /// would see only part of the interval's memory traffic and could report
    /// a false Conservation violation. The executor satisfies this because
    /// every measurement starts with [`Machine::run_transactions`], which
    /// resets both memory stats and the monitor's interval counters.
    pub fn enable_invariant_checks(&mut self) {
        self.config.check_invariants = true;
        if self.monitor.is_none() {
            self.monitor = Some(InvariantMonitor::new(self.config.memory.protocol));
        }
    }

    /// Reconfigures the §3.3 perturbation in place — magnitude and seed —
    /// leaving everything else untouched. The in-place form of
    /// [`Machine::with_perturbation`], used by the shared-warmup executor on
    /// machines restored from a snapshot: warmup ran unperturbed, and each
    /// run's perturbation stream starts here, at measurement start.
    pub fn set_perturbation(&mut self, max_ns: Nanos, seed: u64) {
        self.config.perturbation_max_ns = max_ns;
        self.config.perturbation_seed = seed;
        self.mem.set_perturbation(Perturbation::new(max_ns, seed));
    }

    fn post(&mut self, time: Cycle, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event { time, seq, kind });
    }

    /// Resets all counters and the commit log; the next
    /// [`Machine::run_transactions`] measures from here. Typically called
    /// implicitly — `run_transactions` begins a fresh measurement interval.
    fn begin_measurement(&mut self) {
        self.measure_start = self.now;
        self.measure_committed_base = self.committed;
        self.commit_log.clear();
        self.mem.reset_stats();
        self.sched.reset_stats();
        self.locks.reset_stats();
        for cpu in &mut self.cpus {
            cpu.core.reset_stats();
            cpu.busy_ns = 0;
        }
        if let Some(mon) = &mut self.monitor {
            mon.begin_interval();
        }
    }

    /// Resets measurement counters and the commit log without simulating —
    /// exactly the implicit reset at the start of
    /// [`Machine::run_transactions`]. Warm-up producers call this before
    /// [`Machine::snapshot`] so snapshot bytes (hence content fingerprints)
    /// are a pure function of architectural state, not of how many
    /// `run_transactions` calls produced it: a straight 30-transaction
    /// warmup and a 10 + 20 split leave byte-identical machines only after
    /// this normalization, because each call's reset stamps the counters
    /// with its own interval.
    pub fn normalize_measurement(&mut self) {
        self.begin_measurement();
    }

    /// Runs until `n` more transactions commit and returns the measurement.
    ///
    /// Counters are reset at the start, so the result covers exactly this
    /// interval; cache/predictor warmth carries over from earlier intervals
    /// (use a warmup call first, as the paper does with its 10,000-transaction
    /// database warmup).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the event queue drains before `n`
    /// transactions commit (all threads blocked).
    pub fn run_transactions(&mut self, n: u64) -> Result<RunResult, SimError> {
        self.begin_measurement();
        let target = self.committed + n;
        while self.committed < target {
            let Some(ev) = self.events.pop() else {
                return Err(SimError::Deadlock {
                    at_cycle: self.now,
                    committed: self.committed - self.measure_committed_base,
                });
            };
            debug_assert!(ev.time >= self.now, "time must be monotonic");
            self.now = ev.time;
            if let Some(mon) = &mut self.monitor {
                mon.observe_event(ev.time);
            }
            match ev.kind {
                EventKind::CpuReady(cpu) => self.step_cpu(cpu),
                EventKind::ThreadWake(thread) => {
                    self.sched.wake(thread, self.now);
                    self.kick_idle_cpu();
                }
            }
        }
        Ok(self.finish_measurement())
    }

    /// Runs for a fixed span of simulated time and returns the measurement —
    /// the view of the §2.2 real-machine experiments, where observation
    /// windows are wall-clock intervals rather than transaction counts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the machine wedges inside the span.
    pub fn run_span(&mut self, cycles: Cycle) -> Result<RunResult, SimError> {
        self.begin_measurement();
        self.run_cycles(cycles)?;
        Ok(self.finish_measurement())
    }

    /// Runs for `cycles` of simulated time (used to position checkpoints).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the machine wedges first.
    pub fn run_cycles(&mut self, cycles: Cycle) -> Result<(), SimError> {
        let deadline = self.now + cycles;
        while let Some(ev) = self.events.peek() {
            if ev.time > deadline {
                self.now = deadline;
                return Ok(());
            }
            let ev = self.events.pop().expect("peeked");
            self.now = ev.time;
            if let Some(mon) = &mut self.monitor {
                mon.observe_event(ev.time);
            }
            match ev.kind {
                EventKind::CpuReady(cpu) => self.step_cpu(cpu),
                EventKind::ThreadWake(thread) => {
                    self.sched.wake(thread, self.now);
                    self.kick_idle_cpu();
                }
            }
        }
        Err(SimError::Deadlock {
            at_cycle: self.now,
            committed: self.committed,
        })
    }

    fn finish_measurement(&mut self) -> RunResult {
        if let Some(mon) = &mut self.monitor {
            mon.check_conservation(self.mem.stats(), self.now);
        }
        let mut proc = ProcStats::default();
        for cpu in &self.cpus {
            let s = cpu.core.stats();
            proc.instructions += s.instructions;
            proc.branches += s.branches;
            proc.branch_mispredicts += s.branch_mispredicts;
            proc.indirect_mispredicts += s.indirect_mispredicts;
            proc.ras_mispredicts += s.ras_mispredicts;
            proc.window_stall_ns += s.window_stall_ns;
            proc.drain_ns += s.drain_ns;
        }
        let end_cycle = self.commit_log.last().copied().unwrap_or(self.now);
        let cpu_busy_ns = self.cpus.iter().map(|c| c.busy_ns).sum();
        RunResult {
            start_cycle: self.measure_start,
            end_cycle,
            transactions: self.committed - self.measure_committed_base,
            commit_cycles: std::mem::take(&mut self.commit_log),
            mem: *self.mem.stats(),
            proc,
            locks: *self.locks.stats(),
            sched: *self.sched.stats(),
            sched_events: self.sched.take_log(),
            cpu_busy_ns,
            cpus: self.cpus.len(),
        }
    }

    /// Points the monitor at the scheduler: every CPU slot must agree with
    /// the scheduler's Running records, and no thread may occupy two slots.
    /// A no-op when monitoring is disabled.
    fn check_schedule(&mut self, now: Cycle) {
        if let Some(mon) = &mut self.monitor {
            self.slot_scratch.clear();
            self.slot_scratch.extend(self.cpus.iter().map(|c| c.thread));
            mon.check_schedule(&self.sched, &self.slot_scratch, now);
        }
    }

    /// Test hook: delivers a planted fault (see
    /// [`FaultSpec`](crate::config::FaultSpec)), then re-checks the corrupted
    /// structure so the violation is recorded immediately.
    fn deliver_fault(&mut self, kind: FaultKind, committing: ThreadId, now: Cycle) {
        match kind {
            FaultKind::CoherenceState { cpu, block, state } => {
                self.mem.force_l2_state(CpuId(cpu), BlockAddr(block), state);
                if let Some(mon) = &mut self.monitor {
                    mon.check_block(&self.mem, BlockAddr(block), now);
                }
            }
            FaultKind::SchedulerDoubleRun { cpu } => {
                // Re-record the committing thread as Running on another CPU
                // (the configured one, or its neighbour when the thread
                // already runs there), so one thread claims two CPUs at once.
                // Needs a machine with at least two CPUs to actually violate
                // anything.
                let mut target = CpuId(cpu);
                if self.cpus[target.index()].thread == Some(committing) {
                    target = CpuId((cpu + 1) % self.cpus.len() as u32);
                }
                self.sched.force_running(committing, target);
                self.check_schedule(now);
            }
        }
    }

    /// Wakes one idle CPU, if any, so a freshly readied thread gets running.
    fn kick_idle_cpu(&mut self) {
        if self.idle_cpus == 0 {
            return;
        }
        if let Some(idx) = self.cpus.iter().position(|c| c.idle) {
            self.cpus[idx].idle = false;
            self.idle_cpus -= 1;
            self.post(self.now, EventKind::CpuReady(CpuId(idx as u32)));
        }
    }

    /// One CPU step: dispatch if idle, preempt at quantum expiry, otherwise
    /// execute the current thread's next op.
    fn step_cpu(&mut self, cpu: CpuId) {
        let idx = cpu.index();
        let now = self.now;

        // Dispatch if nothing is running here.
        let Some(thread) = self.cpus[idx].thread else {
            match self.sched.dispatch(cpu, now) {
                Some(t) => {
                    self.cpus[idx].thread = Some(t);
                    self.check_schedule(now);
                    let ctx = self.sched.config().context_switch_ns;
                    self.post(now + ctx, EventKind::CpuReady(cpu));
                }
                None => {
                    self.cpus[idx].idle = true;
                    self.idle_cpus += 1;
                }
            }
            return;
        };

        // Quantum expiry: preempt if someone else wants the CPU.
        if self.sched.quantum_expired(thread, now) {
            if self.sched.has_ready() {
                let drain = self.cpus[idx].core.drain(now);
                self.sched.preempt(thread, cpu, now + drain);
                self.cpus[idx].thread = None;
                self.post(now + drain, EventKind::CpuReady(cpu));
                return;
            }
            self.sched.renew_quantum(thread, now);
        }

        // Execute one op.
        let op = self.workload.next_op(thread);
        if !op.is_serializing() {
            let busy = self.cpus[idx].core.execute(cpu, &op, now, &mut self.mem);
            if let Some(mon) = &mut self.monitor {
                match &op {
                    Op::Compute { code_block, .. } => {
                        mon.note_fetch_op();
                        mon.check_block(&self.mem, *code_block, now);
                    }
                    Op::Memory { addr, .. } => {
                        mon.note_data_op();
                        mon.check_block(&self.mem, *addr, now);
                    }
                    _ => {}
                }
            }
            let extra = match &mut self.noise {
                Some(n) => n.overhead(idx, now, busy),
                None => 0,
            };
            self.cpus[idx].busy_ns += busy + extra;
            self.post(now + busy + extra, EventKind::CpuReady(cpu));
            return;
        }

        // Serializing ops drain the pipeline first.
        let drain = self.cpus[idx].core.drain(now);
        let t = now + drain;
        match op {
            Op::Lock(lock) => match self.locks.acquire(lock, thread, t) {
                AcquireOutcome::Acquired => {
                    // The lock word is written (RMW) — real coherence
                    // traffic. The access is timed at `now` (the CAS issues
                    // while the pipeline drains), keeping memory-system
                    // timestamps globally monotone.
                    let lat = self
                        .mem
                        .access(cpu, LockTable::block_of(lock), AccessKind::Write, now)
                        .latency;
                    if let Some(mon) = &mut self.monitor {
                        mon.note_data_op();
                        mon.check_block(&self.mem, LockTable::block_of(lock), now);
                    }
                    let busy = drain + SYNC_OP_COST_NS + lat;
                    self.cpus[idx].busy_ns += busy;
                    self.post(now + busy, EventKind::CpuReady(cpu));
                }
                AcquireOutcome::Queued => {
                    // Spin briefly, then block and switch.
                    let spin = self.sched.config().lock_spin_ns;
                    self.sched.block_on_lock(thread, lock, cpu, t + spin);
                    self.cpus[idx].thread = None;
                    self.cpus[idx].busy_ns += drain + spin;
                    self.post(t + spin, EventKind::CpuReady(cpu));
                }
            },
            Op::Unlock(lock) => {
                let lat = self
                    .mem
                    .access(cpu, LockTable::block_of(lock), AccessKind::Write, now)
                    .latency;
                if let Some(mon) = &mut self.monitor {
                    mon.note_data_op();
                    mon.check_block(&self.mem, LockTable::block_of(lock), now);
                }
                if let Some(next) = self.locks.release(lock, thread, t) {
                    let wake_at = t + lat + self.sched.config().wakeup_ns;
                    self.post(wake_at, EventKind::ThreadWake(next));
                }
                let busy = drain + SYNC_OP_COST_NS + lat;
                self.cpus[idx].busy_ns += busy;
                self.post(now + busy, EventKind::CpuReady(cpu));
            }
            Op::TxnEnd => {
                self.committed += 1;
                self.commit_log.push(t);
                // Test hook: plant the configured fault once the cumulative
                // commit count is reached, then re-check the corrupted
                // structure so the violation is recorded even if the
                // workload never touches it again.
                if let Some(f) = self.config.fault {
                    if self.committed == f.after_commits {
                        self.deliver_fault(f.kind, thread, now);
                    }
                }
                let busy = drain + SYNC_OP_COST_NS;
                self.cpus[idx].busy_ns += busy;
                self.post(now + busy, EventKind::CpuReady(cpu));
            }
            Op::Io(delay) => {
                self.sched.sleep(thread, cpu, t);
                self.cpus[idx].thread = None;
                self.post(t + delay, EventKind::ThreadWake(thread));
                self.cpus[idx].busy_ns += drain;
                self.post(t, EventKind::CpuReady(cpu));
            }
            Op::Yield => {
                self.sched.yield_thread(thread, cpu, t);
                self.cpus[idx].thread = None;
                self.cpus[idx].busy_ns += drain;
                self.post(t, EventKind::CpuReady(cpu));
            }
            _ => unreachable!("non-serializing ops handled above"),
        }
    }
}

impl crate::checkpoint::Snap for EventKind {
    fn encode_snap(&self, enc: &mut Encoder) {
        match self {
            EventKind::CpuReady(cpu) => {
                enc.put_u8(0);
                cpu.encode_snap(enc);
            }
            EventKind::ThreadWake(thread) => {
                enc.put_u8(1);
                thread.encode_snap(enc);
            }
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(match dec.get_u8()? {
            0 => EventKind::CpuReady(Snap::decode_snap(dec)?),
            1 => EventKind::ThreadWake(Snap::decode_snap(dec)?),
            _ => {
                return Err(CheckpointError::Corrupt {
                    what: "EventKind tag".into(),
                })
            }
        })
    }
    fn snap_size_hint(&self) -> usize {
        5
    }
}

crate::impl_snap!(Event { time, seq, kind });
crate::impl_snap!(Cpu {
    core,
    thread,
    idle,
    busy_ns,
});

/// Decoded-but-unvalidated machine state: what both the linear and the
/// sectioned checkpoint decoders produce, and what
/// [`Machine::restore`]'s shared assembly validates and wires up.
struct MachineParts<W> {
    config: MachineConfig,
    now: Nanos,
    seq: u64,
    events: Vec<Event>,
    cpus: Vec<Cpu>,
    mem: MemorySystem,
    sched: Scheduler,
    locks: LockTable,
    noise: Option<NoiseState>,
    monitor: Option<InvariantMonitor>,
    workload: W,
    committed: u64,
    commit_log: Vec<Nanos>,
    measure_start: Nanos,
    measure_committed_base: u64,
}

impl<W: Workload + Snap> Machine<W> {
    /// Serializes the complete machine state — caches and coherence state,
    /// memory-system counters, processor cores and predictors, scheduler,
    /// locks, noise, invariant monitor, workload generators, RNG streams,
    /// the event queue, and all accounting — into a stable binary
    /// [`Checkpoint`] with a content fingerprint.
    ///
    /// The event queue is serialized in sorted `(time, seq)` order, so two
    /// machines in identical states always produce byte-identical payloads
    /// (and hence equal fingerprints) regardless of queue-internal layout.
    pub fn snapshot(&self) -> Checkpoint {
        // Reserving the full estimate up front saves the ~10 doubling copies
        // of growing a multi-megabyte payload from empty. Sections are
        // ranges over this one buffer, so the single reservation covers the
        // largest section by construction (there is no per-section buffer to
        // under-size).
        let mut se =
            SectionEncoder::with_capacity(self.snapshot_size_hint(), self.mem.node_count() + 6);
        se.begin(SectionKind::Meta);
        self.config.encode_snap(se.enc());
        self.now.encode_snap(se.enc());
        self.seq.encode_snap(se.enc());
        let mut events: Vec<Event> = self.events.to_vec();
        events.sort_unstable();
        events.encode_snap(se.enc());
        se.begin(SectionKind::Cpus);
        self.cpus.encode_snap(se.enc());
        self.mem.encode_snap_sectioned(&mut se);
        se.begin(SectionKind::Sched);
        self.sched.encode_snap(se.enc());
        self.locks.encode_snap(se.enc());
        self.noise.encode_snap(se.enc());
        self.monitor.encode_snap(se.enc());
        se.begin(SectionKind::Workload);
        self.workload.encode_snap(se.enc());
        self.committed.encode_snap(se.enc());
        self.commit_log.encode_snap(se.enc());
        self.measure_start.encode_snap(se.enc());
        self.measure_committed_base.encode_snap(se.enc());
        se.finish()
    }

    /// Upper bound on the encoded size of [`Machine::snapshot`]'s payload,
    /// summed from every component's [`Snap::snap_size_hint`]. `snapshot`
    /// seeds its encoder with exactly this value, and the alloc-budget suite
    /// asserts the payload never exceeds it — so encode never regrows its
    /// buffer mid-snapshot.
    pub fn snapshot_size_hint(&self) -> usize {
        self.config.snap_size_hint()
            + 16 // now + seq
            + 8 + self.events.len() * 21 // sorted events: time + seq + tagged kind
            + self.cpus.snap_size_hint()
            + self.mem.snap_size_hint()
            + self.sched.snap_size_hint()
            + self.locks.snap_size_hint()
            + self.noise.snap_size_hint()
            + self.monitor.snap_size_hint()
            + self.workload.snap_size_hint()
            + 8 // committed
            + self.commit_log.snap_size_hint()
            + 16 // measure_start + measure_committed_base
    }

    /// Reconstructs a machine from a [`Checkpoint`], bit-identical to the
    /// machine that produced it: continuing a restored machine yields
    /// exactly the execution the original would have produced.
    ///
    /// Like [`Machine::new`], the `invariant-monitor` cargo feature ORs a
    /// fresh monitor in when the snapshot carried none, so a checkpoint
    /// taken by a feature-off build stays checkable in a feature-on build.
    /// The monitor is read-only, so simulation results are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadCheckpoint`] when the payload is truncated,
    /// corrupt, or internally inconsistent (e.g. CPU count mismatch), and
    /// [`SimError::InvalidConfig`] when the embedded configuration fails
    /// validation.
    pub fn restore(ck: &Checkpoint) -> Result<Self, SimError> {
        Self::restore_with_threads(ck, 1)
    }

    /// [`Machine::restore`] with the per-node cache decode spread over up to
    /// `decode_threads` scoped worker threads (the dominant cost of a
    /// restore is rebuilding the line arrays from their run-length
    /// sections). The decoded machine is bit-identical for every thread
    /// count — each `MemNode` section is an independently fingerprinted
    /// byte range decoded into its own slot, reassembled in index order —
    /// so callers pick a thread count for latency, never for correctness.
    /// `decode_threads <= 1` decodes inline with no thread spawned; the
    /// executor passes its worker-pool width here when launching templates.
    ///
    /// # Errors
    ///
    /// As for [`Machine::restore`].
    pub fn restore_with_threads(ck: &Checkpoint, decode_threads: usize) -> Result<Self, SimError> {
        // Sectioned checkpoints (everything `snapshot` produces) decode each
        // component at its own boundary; unsectioned ones (raw payloads via
        // `Checkpoint::from_payload`, e.g. older spill files re-wrapped) fall
        // back to one linear pass over the same bytes. Both paths feed the
        // same assembly, so the machines they build are identical.
        let parts = if ck.sections().is_empty() {
            Self::decode_linear(ck.payload())?
        } else {
            Self::decode_sectioned(ck, decode_threads)?
        };
        Self::assemble(parts)
    }

    fn decode_linear(payload: &[u8]) -> Result<MachineParts<W>, SimError> {
        let mut dec = Decoder::new(payload);
        let config = MachineConfig::decode_snap(&mut dec)?;
        let now = Snap::decode_snap(&mut dec)?;
        let seq = Snap::decode_snap(&mut dec)?;
        let events: Vec<Event> = Snap::decode_snap(&mut dec)?;
        let cpus: Vec<Cpu> = Snap::decode_snap(&mut dec)?;
        let mem = MemorySystem::decode_snap(&mut dec)?;
        let sched = Scheduler::decode_snap(&mut dec)?;
        let locks = LockTable::decode_snap(&mut dec)?;
        let noise = Snap::decode_snap(&mut dec)?;
        let monitor: Option<InvariantMonitor> = Snap::decode_snap(&mut dec)?;
        let workload = W::decode_snap(&mut dec)?;
        let committed = Snap::decode_snap(&mut dec)?;
        let commit_log = Snap::decode_snap(&mut dec)?;
        let measure_start = Snap::decode_snap(&mut dec)?;
        let measure_committed_base = Snap::decode_snap(&mut dec)?;
        dec.finish()?;
        Ok(MachineParts {
            config,
            now,
            seq,
            events,
            cpus,
            mem,
            sched,
            locks,
            noise,
            monitor,
            workload,
            committed,
            commit_log,
            measure_start,
            measure_committed_base,
        })
    }

    fn decode_sectioned(
        ck: &Checkpoint,
        decode_threads: usize,
    ) -> Result<MachineParts<W>, SimError> {
        let mut sr = SectionReader::new(ck);
        let mut dec = sr.expect(SectionKind::Meta)?;
        let config = MachineConfig::decode_snap(&mut dec)?;
        let now = Snap::decode_snap(&mut dec)?;
        let seq = Snap::decode_snap(&mut dec)?;
        let events: Vec<Event> = Snap::decode_snap(&mut dec)?;
        dec.finish()?;
        let mut dec = sr.expect(SectionKind::Cpus)?;
        let cpus: Vec<Cpu> = Snap::decode_snap(&mut dec)?;
        dec.finish()?;
        let mem = MemorySystem::decode_snap_sectioned(&mut sr, decode_threads)?;
        let mut dec = sr.expect(SectionKind::Sched)?;
        let sched = Scheduler::decode_snap(&mut dec)?;
        let locks = LockTable::decode_snap(&mut dec)?;
        let noise = Snap::decode_snap(&mut dec)?;
        let monitor: Option<InvariantMonitor> = Snap::decode_snap(&mut dec)?;
        dec.finish()?;
        let mut dec = sr.expect(SectionKind::Workload)?;
        let workload = W::decode_snap(&mut dec)?;
        let committed = Snap::decode_snap(&mut dec)?;
        let commit_log = Snap::decode_snap(&mut dec)?;
        let measure_start = Snap::decode_snap(&mut dec)?;
        let measure_committed_base = Snap::decode_snap(&mut dec)?;
        dec.finish()?;
        sr.finish()?;
        Ok(MachineParts {
            config,
            now,
            seq,
            events,
            cpus,
            mem,
            sched,
            locks,
            noise,
            monitor,
            workload,
            committed,
            commit_log,
            measure_start,
            measure_committed_base,
        })
    }

    fn assemble(parts: MachineParts<W>) -> Result<Self, SimError> {
        let MachineParts {
            config,
            now,
            seq,
            events,
            cpus,
            mem,
            sched,
            locks,
            noise,
            monitor,
            workload,
            committed,
            commit_log,
            measure_start,
            measure_committed_base,
        } = parts;
        config.validate()?;
        if cpus.len() != config.cpus {
            return Err(CheckpointError::Corrupt {
                what: format!(
                    "checkpoint has {} CPUs but its config declares {}",
                    cpus.len(),
                    config.cpus
                ),
            }
            .into());
        }
        if sched.thread_count() != workload.thread_count() {
            return Err(CheckpointError::Corrupt {
                what: format!(
                    "checkpoint scheduler manages {} threads but its workload declares {}",
                    sched.thread_count(),
                    workload.thread_count()
                ),
            }
            .into());
        }
        let monitor = match monitor {
            Some(m) => Some(m),
            None if config.check_invariants || cfg!(feature = "invariant-monitor") => {
                Some(InvariantMonitor::new(config.memory.protocol))
            }
            None => None,
        };
        let idle_cpus = cpus.iter().filter(|c| c.idle).count();
        Ok(Machine {
            config,
            now,
            seq,
            events: EventQueue::from_items(now, events),
            cpus,
            mem,
            sched,
            locks,
            noise,
            monitor,
            workload,
            committed,
            commit_log,
            measure_start,
            measure_committed_base,
            idle_cpus,
            slot_scratch: Vec::new(),
        })
    }
}

impl<W: Workload + Clone> Machine<W> {
    /// Captures a checkpoint: a full copy of machine + workload state, like
    /// Simics' checkpoint facility (§3.2.2). Restarting runs from the same
    /// checkpoint with different perturbation seeds is the paper's mechanism
    /// for exploring the space of executions.
    pub fn checkpoint(&self) -> Machine<W> {
        self.clone()
    }

    /// Forks a cheap copy for a perturbed run. This is a `clone`, but the
    /// dominant state — every cache's line array — is copy-on-write
    /// ([`Arc`](std::sync::Arc)-shared until a fork's first write to the
    /// set), so forking a decoded template is a pointer copy per cache
    /// instead of a multi-megabyte decode. The shared-warmup executor
    /// restores each snapshot **once** and calls `fork` per run.
    pub fn fork(&self) -> Machine<W> {
        self.clone()
    }

    /// Returns a copy with the §3.3 perturbation reconfigured — both the
    /// magnitude and the seed — everything else identical. This is how the
    /// shared-warmup executor forks perturbed runs from one warmed snapshot:
    /// warmup runs unperturbed, and each run's perturbation stream starts
    /// here, at measurement start.
    pub fn with_perturbation(&self, max_ns: Nanos, seed: u64) -> Machine<W> {
        let mut m = self.clone();
        m.config.perturbation_max_ns = max_ns;
        m.config.perturbation_seed = seed;
        m.mem.set_perturbation(Perturbation::new(max_ns, seed));
        m
    }

    /// Returns a copy of this machine with a fresh perturbation stream
    /// (`seed`), everything else identical — "runs starting from the same
    /// initial conditions" (§2.1).
    pub fn with_perturbation_seed(&self, seed: u64) -> Machine<W> {
        let mut m = self.clone();
        m.config.perturbation_seed = seed;
        m.mem
            .set_perturbation(Perturbation::new(m.config.perturbation_max_ns, seed));
        m
    }

    /// Returns a copy with a fresh environmental-noise seed (for simulated
    /// "real machine" reruns, §2.2).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the machine was built without
    /// noise.
    pub fn with_noise_seed(&self, seed: u64) -> Result<Machine<W>, SimError> {
        let mut m = self.clone();
        let Some(base) = &self.config.noise else {
            return Err(SimError::InvalidConfig {
                what: "machine has no noise model to reseed".into(),
            });
        };
        let mut cfg = *base;
        cfg.seed = seed;
        m.config.noise = Some(cfg);
        m.noise = Some(NoiseState::new(cfg, m.config.cpus)?);
        Ok(m)
    }
}

// The parallel run-space executor in `mtvar-core` moves machines across OS
// threads; every field of `Machine` is owned data, so `Machine<W>` is
// `Send`/`Sync` whenever the workload is. This assertion keeps that
// property from silently regressing (e.g. by someone adding an `Rc` or a
// raw pointer to the event queue).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Machine<crate::workload::UniformWorkload>>();
    assert_send_sync::<Machine<crate::workload::SharingWorkload>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::UniformWorkload;

    fn machine(cpus: usize, threads: usize) -> Machine<UniformWorkload> {
        let cfg = MachineConfig::hpca2003().with_cpus(cpus);
        Machine::new(cfg, UniformWorkload::new(threads, 20, 30)).unwrap()
    }

    #[test]
    fn runs_requested_transactions() {
        let mut m = machine(4, 8);
        let r = m.run_transactions(50).unwrap();
        assert_eq!(r.transactions, 50);
        assert_eq!(r.commit_cycles.len(), 50);
        assert!(r.cycles_per_transaction() > 0.0);
        assert!(r.end_cycle >= r.start_cycle);
        // Commit log is sorted.
        assert!(r.commit_cycles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_without_perturbation() {
        let run = || {
            let mut m = machine(4, 8);
            m.run_transactions(100).unwrap().elapsed()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn perturbation_changes_runtime() {
        let run = |seed: u64| {
            let cfg = MachineConfig::hpca2003()
                .with_cpus(4)
                .with_perturbation(4, seed);
            let mut m = Machine::new(cfg, UniformWorkload::new(8, 20, 30)).unwrap();
            m.run_transactions(100).unwrap().elapsed()
        };
        // Same seed reproduces; different seeds (almost surely) differ.
        assert_eq!(run(7), run(7));
        let a = run(1);
        let distinct = (2..10u64).any(|s| run(s) != a);
        assert!(distinct, "10 perturbed runs all identical is implausible");
    }

    #[test]
    fn more_threads_than_cpus_gets_scheduled() {
        // Short quantum so preemption is active within the test's horizon.
        let sched = crate::sched::SchedConfig {
            quantum_ns: 3_000,
            ..Default::default()
        };
        let cfg = MachineConfig::hpca2003().with_cpus(2).with_sched(sched);
        let mut m = Machine::new(cfg, UniformWorkload::new(16, 20, 30)).unwrap();
        let r = m.run_transactions(400).unwrap();
        assert_eq!(r.transactions, 400);
        assert!(r.sched.dispatches >= 16, "all threads must run");
        assert!(r.sched.preemptions > 0, "quantum expiry must preempt");
    }

    #[test]
    fn measurement_intervals_are_independent() {
        let mut m = machine(4, 8);
        let r1 = m.run_transactions(40).unwrap();
        let r2 = m.run_transactions(40).unwrap();
        assert_eq!(r2.transactions, 40);
        assert!(r2.start_cycle >= r1.end_cycle);
        // Counters were reset between intervals.
        assert!(r2.mem.data_accesses() <= r1.mem.data_accesses() * 3);
    }

    #[test]
    fn checkpoint_resumes_identically() {
        let mut m = machine(4, 8);
        m.run_transactions(30).unwrap();
        let mut a = m.checkpoint();
        let mut b = m.checkpoint();
        let ra = a.run_transactions(50).unwrap();
        let rb = b.run_transactions(50).unwrap();
        assert_eq!(ra.elapsed(), rb.elapsed());
        assert_eq!(ra.commit_cycles, rb.commit_cycles);
    }

    #[test]
    fn with_perturbation_seed_diverges_from_checkpoint() {
        // A sharing workload sustains L2 (coherence) misses, so perturbation
        // has injection points even after warmup.
        let cfg = MachineConfig::hpca2003()
            .with_cpus(4)
            .with_perturbation(4, 0);
        let wl = crate::workload::SharingWorkload::new(8, 7, 40, 4096, 10);
        let mut m = Machine::new(cfg, wl).unwrap();
        m.run_transactions(20).unwrap();
        let base = m.checkpoint();
        let runtimes: Vec<u64> = (0..6)
            .map(|s| {
                let mut run = base.with_perturbation_seed(s);
                run.run_transactions(60).unwrap().elapsed()
            })
            .collect();
        let first = runtimes[0];
        assert!(
            runtimes.iter().any(|&r| r != first),
            "perturbed runs from one checkpoint should diverge: {runtimes:?}"
        );
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(4)
            .with_perturbation(4, 77);
        let wl = crate::workload::SharingWorkload::new(8, 7, 40, 4096, 10);
        let mut m = Machine::new(cfg, wl).unwrap();
        m.run_transactions(30).unwrap();
        let ck = m.snapshot();
        let mut restored: Machine<crate::workload::SharingWorkload> =
            Machine::restore(&ck).unwrap();
        // A restored machine re-snapshots to the identical fingerprint...
        assert_eq!(restored.snapshot().fingerprint(), ck.fingerprint());
        // ...and continues bit-identically to the original.
        let ra = m.run_transactions(50).unwrap();
        let rb = restored.run_transactions(50).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(
            m.snapshot().fingerprint(),
            restored.snapshot().fingerprint()
        );
    }

    #[test]
    fn snapshot_roundtrips_through_frame_bytes() {
        let mut m = machine(2, 4);
        m.run_transactions(15).unwrap();
        let ck = m.snapshot();
        let bytes = ck.to_bytes();
        let back = crate::checkpoint::Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.fingerprint(), ck.fingerprint());
        let mut restored: Machine<UniformWorkload> = Machine::restore(&back).unwrap();
        assert_eq!(
            m.run_transactions(10).unwrap(),
            restored.run_transactions(10).unwrap()
        );
    }

    #[test]
    fn sectioned_and_linear_decode_build_identical_machines() {
        let mut m = machine(4, 8);
        m.run_transactions(30).unwrap();
        let ck = m.snapshot();
        // A machine snapshot carries sections: Meta, Cpus, MemHeader, one
        // per node, MemShared, Sched, Workload — tiling the payload exactly.
        assert_eq!(ck.sections().len(), 4 + 6);
        let covered: usize = ck.sections().iter().map(|s| s.len).sum();
        assert_eq!(covered, ck.len());
        for (i, s) in ck.sections().iter().enumerate() {
            let prev_end = if i == 0 {
                0
            } else {
                ck.sections()[i - 1].start + ck.sections()[i - 1].len
            };
            assert_eq!(s.start, prev_end, "section {i} not contiguous");
        }
        // Stripping the table (as a raw-payload re-wrap would) leaves the
        // same bytes, same fingerprint, and the linear fallback decode must
        // build a machine that re-snapshots identically.
        let legacy = Checkpoint::from_payload(ck.payload().to_vec());
        assert!(legacy.sections().is_empty());
        assert_eq!(legacy.fingerprint(), ck.fingerprint());
        let a: Machine<UniformWorkload> = Machine::restore(&ck).unwrap();
        let b: Machine<UniformWorkload> = Machine::restore(&legacy).unwrap();
        assert_eq!(a.snapshot().fingerprint(), ck.fingerprint());
        assert_eq!(b.snapshot().fingerprint(), ck.fingerprint());
        // Sections survive the framed byte round-trip.
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.sections(), ck.sections());
    }

    #[test]
    fn fork_shares_state_and_diverges_independently() {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(4)
            .with_perturbation(4, 1);
        let wl = crate::workload::SharingWorkload::new(8, 7, 40, 4096, 10);
        let mut m = Machine::new(cfg, wl).unwrap();
        m.run_transactions(30).unwrap();
        let template: Machine<crate::workload::SharingWorkload> =
            Machine::restore(&m.snapshot()).unwrap();
        // Forks of one template must behave exactly like independent
        // restores of the same checkpoint.
        let mut f1 = template.fork().with_perturbation_seed(11);
        let mut f2 = template.fork().with_perturbation_seed(12);
        let mut r1: Machine<crate::workload::SharingWorkload> = Machine::restore(&m.snapshot())
            .unwrap()
            .with_perturbation_seed(11);
        assert_eq!(
            f1.run_transactions(40).unwrap(),
            r1.run_transactions(40).unwrap()
        );
        // Different seeds diverge; the template itself is untouched.
        let _ = f2.run_transactions(40).unwrap();
        assert_eq!(
            template.snapshot().fingerprint(),
            m.snapshot().fingerprint()
        );
    }

    #[test]
    fn corrupt_snapshot_payload_is_rejected() {
        let mut m = machine(2, 4);
        m.run_transactions(5).unwrap();
        let ck = m.snapshot();
        // Truncated payload: decoding must error, not panic.
        let short = crate::checkpoint::Checkpoint::from_payload(
            ck.payload()[..ck.payload().len() / 2].to_vec(),
        );
        assert!(Machine::<UniformWorkload>::restore(&short).is_err());
        // Wrong workload type: SharingWorkload bytes don't decode as Uniform.
        let wl = crate::workload::SharingWorkload::new(4, 1, 10, 64, 0);
        let mut other = Machine::new(MachineConfig::hpca2003().with_cpus(2), wl).unwrap();
        other.run_transactions(5).unwrap();
        assert!(Machine::<UniformWorkload>::restore(&other.snapshot()).is_err());
    }

    #[test]
    fn with_perturbation_forks_at_measurement_start() {
        let cfg = MachineConfig::hpca2003().with_cpus(4);
        let wl = crate::workload::SharingWorkload::new(8, 7, 40, 4096, 10);
        let mut m = Machine::new(cfg, wl).unwrap();
        m.run_transactions(20).unwrap();
        let elapsed: Vec<u64> = (0..6)
            .map(|s| {
                let mut run = m.with_perturbation(4, s);
                run.run_transactions(60).unwrap().elapsed()
            })
            .collect();
        // Same seed reproduces...
        assert_eq!(elapsed[0], {
            let mut run = m.with_perturbation(4, 0);
            run.run_transactions(60).unwrap().elapsed()
        });
        // ...different seeds diverge.
        assert!(
            elapsed.iter().any(|&e| e != elapsed[0]),
            "perturbed forks should diverge: {elapsed:?}"
        );
    }

    #[test]
    fn scheduler_fault_is_caught_by_monitor() {
        use crate::config::FaultSpec;
        let cfg = MachineConfig::hpca2003()
            .with_cpus(4)
            .with_invariant_checks()
            .with_fault(FaultSpec::scheduler_double_run(10, 2));
        let mut m = Machine::new(cfg, UniformWorkload::new(8, 20, 30)).unwrap();
        m.run_transactions(30).unwrap();
        assert!(
            m.invariant_violations()
                .iter()
                .any(|v| v.kind == crate::check::InvariantKind::Scheduling),
            "planted scheduler fault must be detected: {:?}",
            m.invariant_violations()
        );
    }

    #[test]
    fn invariant_monitor_is_clean_and_changes_nothing() {
        let wl = crate::workload::SharingWorkload::new(8, 11, 30, 512, 8);
        let run = |checked: bool| {
            let mut cfg = MachineConfig::hpca2003()
                .with_cpus(4)
                .with_perturbation(4, 5);
            if checked {
                cfg = cfg.with_invariant_checks();
            }
            let mut m = Machine::new(cfg, wl.clone()).unwrap();
            let r = m.run_transactions(60).unwrap();
            assert_eq!(
                m.invariant_monitor().is_some(),
                checked || cfg!(feature = "invariant-monitor")
            );
            assert!(
                m.invariant_violations().is_empty(),
                "violations: {:?}",
                m.invariant_violations()
            );
            (r.elapsed(), r.commit_cycles, r.mem)
        };
        // The monitor is read-only: checked and unchecked runs are identical.
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn fault_hook_fires_and_violations_are_extractable() {
        use crate::config::FaultSpec;
        use crate::mem::CoherenceState;
        // Exclusive is illegal under the default MOSI protocol, so the
        // monitor flags the planted state no matter what the workload does.
        let cfg = MachineConfig::hpca2003()
            .with_cpus(4)
            .with_invariant_checks()
            .with_fault(FaultSpec::coherence(
                10,
                1,
                0xFA11,
                CoherenceState::Exclusive,
            ));
        let mut m = Machine::new(cfg, UniformWorkload::new(8, 20, 30)).unwrap();
        m.run_transactions(30).unwrap();
        assert!(
            !m.invariant_violations().is_empty(),
            "planted fault must be detected"
        );
        let taken = m.take_invariant_violations();
        assert!(!taken.is_empty());
        // Reports are drained, but the finding itself is not forgotten.
        assert!(m.invariant_violations().is_empty());
        assert!(!m.invariant_monitor().unwrap().is_clean());
    }

    #[test]
    fn fault_before_trigger_commit_is_silent() {
        use crate::config::FaultSpec;
        use crate::mem::CoherenceState;
        let cfg = MachineConfig::hpca2003()
            .with_cpus(4)
            .with_invariant_checks()
            .with_fault(FaultSpec::coherence(
                100,
                1,
                0xFA11,
                CoherenceState::Exclusive,
            ));
        let mut m = Machine::new(cfg, UniformWorkload::new(8, 20, 30)).unwrap();
        m.run_transactions(30).unwrap();
        assert!(m.invariant_violations().is_empty());
        assert!(m.invariant_monitor().unwrap().is_clean());
    }

    #[test]
    fn enable_invariant_checks_creates_monitor_between_intervals() {
        let mut m = machine(2, 4);
        m.run_transactions(10).unwrap();
        m.enable_invariant_checks();
        assert!(m.invariant_monitor().is_some());
        assert!(m.config().check_invariants);
        let r = m.run_transactions(10).unwrap();
        assert_eq!(r.transactions, 10);
        assert!(
            m.invariant_violations().is_empty(),
            "clean run stays clean: {:?}",
            m.invariant_violations()
        );
    }

    #[test]
    fn monitor_conservation_holds_across_intervals() {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(2)
            .with_invariant_checks();
        let mut m = Machine::new(cfg, UniformWorkload::new(6, 20, 30)).unwrap();
        m.run_transactions(30).unwrap(); // warmup interval
        m.run_transactions(30).unwrap(); // measured interval
        assert!(
            m.invariant_violations().is_empty(),
            "violations: {:?}",
            m.invariant_violations()
        );
        assert!(m.invariant_monitor().unwrap().is_clean());
    }

    #[test]
    fn run_cycles_advances_time() {
        let mut m = machine(2, 4);
        m.run_cycles(100_000).unwrap();
        assert!(m.now() >= 100_000);
    }

    #[test]
    fn cpu_utilization_tracked() {
        let mut m = machine(2, 8);
        let r = m.run_transactions(40).unwrap();
        assert!(r.proc.instructions > 0);
    }

    #[test]
    fn run_span_measures_a_time_window() {
        let mut m = machine(4, 8);
        m.run_transactions(20).unwrap();
        let start = m.now();
        let r = m.run_span(50_000).unwrap();
        assert!(m.now() >= start + 50_000);
        assert!(r.transactions > 0, "a 50k-cycle span should commit work");
        assert!(r.start_cycle >= start);
    }

    /// A workload whose threads all deadlock: everyone acquires the same
    /// lock and never releases it.
    #[derive(Debug, Clone)]
    #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
    struct DeadlockWorkload {
        threads: usize,
        acquired: Vec<bool>,
    }

    impl crate::workload::Workload for DeadlockWorkload {
        fn thread_count(&self) -> usize {
            self.threads
        }

        fn next_op(&mut self, thread: crate::ids::ThreadId) -> Op {
            if self.acquired[thread.index()] {
                // Holder busy-waits forever via I/O sleeps; others block on
                // the lock. Nothing ever commits.
                Op::Io(1_000_000)
            } else {
                self.acquired[thread.index()] = true;
                Op::Lock(crate::ids::LockId(0))
            }
        }

        fn name(&self) -> &str {
            "deadlock"
        }
    }

    #[test]
    fn blocked_machine_reports_deadlock_not_hang() {
        // Two threads on one CPU: thread 0 takes the lock and sleeps
        // forever; thread 1 blocks on the lock. No transaction can commit,
        // and the holder's I/O events keep time advancing — run_transactions
        // must not spin forever, so we bound the run with run_cycles and
        // verify no progress happened.
        let cfg = MachineConfig::hpca2003().with_cpus(1);
        let mut m = Machine::new(
            cfg,
            DeadlockWorkload {
                threads: 2,
                acquired: vec![false; 2],
            },
        )
        .unwrap();
        m.run_cycles(5_000_000).unwrap();
        assert_eq!(m.committed(), 0);
        // Thread 1 is permanently blocked on lock 0.
        assert!(matches!(
            m.scheduler().thread_state(ThreadId(1)),
            crate::sched::ThreadState::Blocked(_)
        ));
    }

    /// A workload that genuinely wedges: a thread blocks on a lock held by a
    /// thread that has exited its op stream (yields forever are impossible —
    /// so we emulate with both threads blocking on each other's locks).
    #[derive(Debug, Clone)]
    #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
    struct CrossLockWorkload {
        step: Vec<u8>,
    }

    impl crate::workload::Workload for CrossLockWorkload {
        fn thread_count(&self) -> usize {
            self.step.len()
        }

        fn next_op(&mut self, thread: crate::ids::ThreadId) -> Op {
            let i = thread.index();
            let s = self.step[i];
            self.step[i] += 1;
            let me = crate::ids::LockId(i as u32);
            let other = crate::ids::LockId(((i + 1) % 2) as u32);
            match s {
                0 => Op::Lock(me),
                1 => Op::Compute {
                    instructions: 2_000,
                    code_block: crate::ids::BlockAddr(0xC0 + i as u64),
                },
                // Classic ABBA: each thread now waits on the other's lock.
                _ => Op::Lock(other),
            }
        }

        fn name(&self) -> &str {
            "crosslock"
        }
    }

    #[test]
    fn abba_deadlock_is_detected() {
        let cfg = MachineConfig::hpca2003().with_cpus(2);
        let mut m = Machine::new(cfg, CrossLockWorkload { step: vec![0; 2] }).unwrap();
        let err = m.run_transactions(1).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "got {err}");
    }
}
