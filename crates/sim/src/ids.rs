//! Identifier newtypes shared across the simulator.
//!
//! Cycles, processors, threads, locks and cache blocks all live in `u64`/`u32`
//! space; these newtypes keep them from being confused for one another
//! (C-NEWTYPE) at zero runtime cost.

use std::fmt;

/// A point in simulated time, measured in cycles of the 1 GHz system clock.
///
/// The paper's target machine runs at 1 GHz, so **one cycle is one
/// nanosecond**; all the latencies quoted in §3.2.1 (80 ns DRAM, 50 ns per
/// network traversal, ...) convert one-to-one.
pub type Cycle = u64;

/// A duration in nanoseconds. At the paper's 1 GHz clock this equals a
/// duration in [`Cycle`]s, but configuration values are specified in
/// nanoseconds to match the paper's text.
pub type Nanos = u64;

/// A processor (node) index in the simulated multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuId(pub u32);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl CpuId {
    /// The index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A software thread index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl ThreadId {
    /// The index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A lock (mutex) identifier within the workload's lock namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LockId(pub u32);

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock{}", self.0)
    }
}

/// A cache-block-granular physical address.
///
/// The simulator never needs sub-block offsets, so addresses are stored
/// directly at block granularity (one unit = one 64-byte block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockAddr(pub u64);

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(ThreadId(12).to_string(), "t12");
        assert_eq!(LockId(0).to_string(), "lock0");
        assert_eq!(BlockAddr(0x10).to_string(), "blk0x10");
    }

    #[test]
    fn ids_order_and_index() {
        assert!(CpuId(1) < CpuId(2));
        assert_eq!(ThreadId(5).index(), 5);
        assert_eq!(CpuId(7).index(), 7);
    }
}
