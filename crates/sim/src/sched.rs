//! The operating-system thread scheduler model.
//!
//! Scheduling decisions are pure functions of *simulated time* — quantum
//! expiry, wakeup order, ready-queue contents — so the tiny timing
//! perturbations of §3.3 cascade into different thread interleavings, exactly
//! the §2.1 causes the paper identifies ("a scheduling quantum may end before
//! an event in one run, but not another"). The dispatch log reproduces
//! Figure 1.

use std::collections::VecDeque;

use crate::ids::{CpuId, Cycle, LockId, Nanos, ThreadId};
use crate::SimError;

/// Scheduler tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SchedConfig {
    /// Time-slice length (ns). Solaris' time-share class uses 20–200 ms;
    /// scaled down so scheduling stays active in short simulations.
    pub quantum_ns: Nanos,
    /// Direct cost of a context switch (ns); cache pollution costs emerge
    /// from the cache model on their own.
    pub context_switch_ns: Nanos,
    /// How long a thread spins on a contended lock before blocking (ns).
    pub lock_spin_ns: Nanos,
    /// Latency from unlock/IO-completion to the woken thread being
    /// dispatchable (ns).
    pub wakeup_ns: Nanos,
    /// How deep into the ready queue the dispatcher searches for a thread
    /// with affinity to the idle CPU.
    pub affinity_window: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            quantum_ns: 50_000,
            context_switch_ns: 1_500,
            lock_spin_ns: 600,
            wakeup_ns: 800,
            affinity_window: 4,
        }
    }
}

impl SchedConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the quantum is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.quantum_ns == 0 {
            return Err(SimError::InvalidConfig {
                what: "scheduler quantum must be > 0".into(),
            });
        }
        Ok(())
    }
}

/// Lifecycle state of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ThreadState {
    /// Runnable, waiting in the ready queue.
    Ready,
    /// Executing on the given CPU.
    Running(CpuId),
    /// Blocked on a lock's wait queue.
    Blocked(LockId),
    /// Sleeping until an I/O completion wakes it.
    Sleeping,
}

/// What a scheduling-log entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedEventKind {
    /// Thread dispatched onto a CPU.
    Dispatch,
    /// Thread preempted at quantum expiry.
    Preempt,
    /// Thread blocked on a contended lock.
    BlockLock(LockId),
    /// Thread went to sleep on I/O.
    Sleep,
    /// Thread woke and re-entered the ready queue.
    Wake,
    /// Thread voluntarily yielded.
    Yield,
}

/// One scheduling event (a point in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SchedEvent {
    /// When it happened.
    pub cycle: Cycle,
    /// CPU involved.
    pub cpu: CpuId,
    /// Thread involved.
    pub thread: ThreadId,
    /// What happened.
    pub kind: SchedEventKind,
}

/// Scheduler counters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SchedStats {
    /// Threads dispatched onto CPUs.
    pub dispatches: u64,
    /// Quantum-expiry preemptions.
    pub preemptions: u64,
    /// Dispatches onto a CPU different from the thread's previous one.
    pub migrations: u64,
    /// Voluntary yields.
    pub yields: u64,
}

/// Per-thread scheduler bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct ThreadRecord {
    state: ThreadState,
    last_cpu: Option<CpuId>,
    quantum_end: Cycle,
    /// Whether the thread still has a warm-cache affinity claim on
    /// `last_cpu`. Set when it blocks or sleeps (it will resume soon with a
    /// warm cache); cleared on preemption/yield so round-robin stays fair
    /// and preempted threads cannot ping-pong with the dispatcher.
    affine: bool,
}

/// The scheduler: a global ready queue with round-robin dispatch, soft CPU
/// affinity and quantum-based preemption.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scheduler {
    config: SchedConfig,
    threads: Vec<ThreadRecord>,
    ready: VecDeque<ThreadId>,
    /// The thread each CPU most recently dispatched — never re-picked via
    /// affinity, so a quantum expiry really hands the CPU to someone else.
    last_thread: Vec<Option<ThreadId>>,
    log: Vec<SchedEvent>,
    log_enabled: bool,
    stats: SchedStats,
}

impl Scheduler {
    /// Creates a scheduler managing `thread_count` threads on `cpu_count`
    /// CPUs, all threads initially ready in index order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the config is invalid or
    /// either count is zero.
    pub fn new(
        config: SchedConfig,
        thread_count: usize,
        cpu_count: usize,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if thread_count == 0 || cpu_count == 0 {
            return Err(SimError::InvalidConfig {
                what: "scheduler needs at least one thread and one CPU".into(),
            });
        }
        Ok(Scheduler {
            config,
            threads: vec![
                ThreadRecord {
                    state: ThreadState::Ready,
                    last_cpu: None,
                    quantum_end: 0,
                    affine: false,
                };
                thread_count
            ],
            ready: (0..thread_count as u32).map(ThreadId).collect(),
            last_thread: vec![None; cpu_count],
            log: Vec::new(),
            log_enabled: false,
            stats: SchedStats::default(),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Enables or disables the Figure-1 scheduling log.
    pub fn set_log_enabled(&mut self, enabled: bool) {
        self.log_enabled = enabled;
    }

    /// The recorded scheduling events.
    pub fn log(&self) -> &[SchedEvent] {
        &self.log
    }

    /// Drains the recorded events, returning them.
    pub fn take_log(&mut self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.log)
    }

    /// Scheduler counters.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Resets counters and log (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = SchedStats::default();
        self.log.clear();
    }

    /// Current state of `thread`.
    pub fn thread_state(&self, thread: ThreadId) -> ThreadState {
        self.threads[thread.index()].state
    }

    /// Number of threads the scheduler manages.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Test hook: forcibly records `thread` as Running on `cpu`, bypassing
    /// every scheduling rule and leaving the ready queue untouched. Exists
    /// solely so the fault-injection test suites can plant a
    /// scheduling-invariant violation mid-run; never call it from real
    /// scheduling paths.
    #[doc(hidden)]
    pub fn force_running(&mut self, thread: ThreadId, cpu: CpuId) {
        self.threads[thread.index()].state = ThreadState::Running(cpu);
    }

    /// Whether any thread is waiting to run.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Number of ready threads.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    fn record(&mut self, cycle: Cycle, cpu: CpuId, thread: ThreadId, kind: SchedEventKind) {
        if self.log_enabled {
            self.log.push(SchedEvent {
                cycle,
                cpu,
                thread,
                kind,
            });
        }
    }

    /// Picks the next thread for an idle `cpu` at `now`, preferring an
    /// affine thread within the configured window; marks it Running and
    /// starts its quantum. Returns `None` if no thread is ready.
    pub fn dispatch(&mut self, cpu: CpuId, now: Cycle) -> Option<ThreadId> {
        if self.ready.is_empty() {
            return None;
        }
        // Soft affinity: scan the first few ready threads for one that last
        // ran here with a live warm-cache claim — but never the thread this
        // CPU just ran, or quantum expiry would be a no-op.
        let mut chosen_idx = 0usize;
        for (i, &t) in self
            .ready
            .iter()
            .take(self.config.affinity_window.max(1))
            .enumerate()
        {
            let rec = &self.threads[t.index()];
            if rec.affine && rec.last_cpu == Some(cpu) && self.last_thread[cpu.index()] != Some(t) {
                chosen_idx = i;
                break;
            }
        }
        let thread = self
            .ready
            .remove(chosen_idx)
            .expect("index within ready queue");
        let rec = &mut self.threads[thread.index()];
        if rec.last_cpu.is_some_and(|c| c != cpu) {
            self.stats.migrations += 1;
        }
        rec.state = ThreadState::Running(cpu);
        rec.last_cpu = Some(cpu);
        rec.affine = false;
        rec.quantum_end = now + self.config.quantum_ns;
        self.last_thread[cpu.index()] = Some(thread);
        self.stats.dispatches += 1;
        self.record(now, cpu, thread, SchedEventKind::Dispatch);
        Some(thread)
    }

    /// Whether `thread`'s quantum has expired at `now`.
    pub fn quantum_expired(&self, thread: ThreadId, now: Cycle) -> bool {
        now >= self.threads[thread.index()].quantum_end
    }

    /// Restarts `thread`'s quantum at `now` (used when it would be preempted
    /// but no other thread wants the CPU).
    pub fn renew_quantum(&mut self, thread: ThreadId, now: Cycle) {
        self.threads[thread.index()].quantum_end = now + self.config.quantum_ns;
    }

    /// Preempts `thread` off `cpu` at quantum expiry; it rejoins the ready
    /// queue at the back.
    pub fn preempt(&mut self, thread: ThreadId, cpu: CpuId, now: Cycle) {
        self.threads[thread.index()].state = ThreadState::Ready;
        self.ready.push_back(thread);
        self.stats.preemptions += 1;
        self.record(now, cpu, thread, SchedEventKind::Preempt);
    }

    /// Voluntary yield: back of the ready queue.
    pub fn yield_thread(&mut self, thread: ThreadId, cpu: CpuId, now: Cycle) {
        self.threads[thread.index()].state = ThreadState::Ready;
        self.ready.push_back(thread);
        self.stats.yields += 1;
        self.record(now, cpu, thread, SchedEventKind::Yield);
    }

    /// Blocks `thread` on `lock`'s wait queue; it keeps an affinity claim on
    /// its CPU for when it wakes.
    pub fn block_on_lock(&mut self, thread: ThreadId, lock: LockId, cpu: CpuId, now: Cycle) {
        let rec = &mut self.threads[thread.index()];
        rec.state = ThreadState::Blocked(lock);
        rec.affine = true;
        self.record(now, cpu, thread, SchedEventKind::BlockLock(lock));
    }

    /// Puts `thread` to sleep (I/O wait); it keeps an affinity claim on its
    /// CPU for when it wakes.
    pub fn sleep(&mut self, thread: ThreadId, cpu: CpuId, now: Cycle) {
        let rec = &mut self.threads[thread.index()];
        rec.state = ThreadState::Sleeping;
        rec.affine = true;
        self.record(now, cpu, thread, SchedEventKind::Sleep);
    }

    /// Wakes `thread` into the ready queue (lock handoff or I/O completion).
    ///
    /// # Panics
    ///
    /// Panics if the thread is currently Running — that would be a machine
    /// bug.
    pub fn wake(&mut self, thread: ThreadId, now: Cycle) {
        let rec = &mut self.threads[thread.index()];
        assert!(
            !matches!(rec.state, ThreadState::Running(_)),
            "waking a running thread"
        );
        rec.state = ThreadState::Ready;
        self.ready.push_back(thread);
        let cpu = rec.last_cpu.unwrap_or(CpuId(0));
        self.record(now, cpu, thread, SchedEventKind::Wake);
    }
}

impl crate::checkpoint::Snap for ThreadState {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        match self {
            ThreadState::Ready => enc.put_u8(0),
            ThreadState::Running(cpu) => {
                enc.put_u8(1);
                cpu.encode_snap(enc);
            }
            ThreadState::Blocked(lock) => {
                enc.put_u8(2);
                lock.encode_snap(enc);
            }
            ThreadState::Sleeping => enc.put_u8(3),
        }
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::Snap;
        Ok(match dec.get_u8()? {
            0 => ThreadState::Ready,
            1 => ThreadState::Running(Snap::decode_snap(dec)?),
            2 => ThreadState::Blocked(Snap::decode_snap(dec)?),
            3 => ThreadState::Sleeping,
            _ => {
                return Err(crate::checkpoint::CheckpointError::Corrupt {
                    what: "ThreadState tag".into(),
                })
            }
        })
    }
    fn snap_size_hint(&self) -> usize {
        5
    }
}

impl crate::checkpoint::Snap for SchedEventKind {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        match self {
            SchedEventKind::Dispatch => enc.put_u8(0),
            SchedEventKind::Preempt => enc.put_u8(1),
            SchedEventKind::BlockLock(lock) => {
                enc.put_u8(2);
                lock.encode_snap(enc);
            }
            SchedEventKind::Sleep => enc.put_u8(3),
            SchedEventKind::Wake => enc.put_u8(4),
            SchedEventKind::Yield => enc.put_u8(5),
        }
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::Snap;
        Ok(match dec.get_u8()? {
            0 => SchedEventKind::Dispatch,
            1 => SchedEventKind::Preempt,
            2 => SchedEventKind::BlockLock(Snap::decode_snap(dec)?),
            3 => SchedEventKind::Sleep,
            4 => SchedEventKind::Wake,
            5 => SchedEventKind::Yield,
            _ => {
                return Err(crate::checkpoint::CheckpointError::Corrupt {
                    what: "SchedEventKind tag".into(),
                })
            }
        })
    }
    fn snap_size_hint(&self) -> usize {
        5
    }
}

crate::impl_snap!(SchedConfig {
    quantum_ns,
    context_switch_ns,
    lock_spin_ns,
    wakeup_ns,
    affinity_window,
});
crate::impl_snap!(SchedEvent {
    cycle,
    cpu,
    thread,
    kind,
});
crate::impl_snap!(SchedStats {
    dispatches,
    preemptions,
    migrations,
    yields,
});
crate::impl_snap!(ThreadRecord {
    state,
    last_cpu,
    quantum_end,
    affine,
});
crate::impl_snap!(Scheduler {
    config,
    threads,
    ready,
    last_thread,
    log,
    log_enabled,
    stats,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(threads: usize) -> Scheduler {
        Scheduler::new(SchedConfig::default(), threads, 4).unwrap()
    }

    #[test]
    fn initial_threads_ready_in_order() {
        let mut s = sched(3);
        assert_eq!(s.ready_len(), 3);
        assert_eq!(s.dispatch(CpuId(0), 0), Some(ThreadId(0)));
        assert_eq!(s.dispatch(CpuId(1), 0), Some(ThreadId(1)));
        assert_eq!(s.thread_state(ThreadId(0)), ThreadState::Running(CpuId(0)));
        assert_eq!(s.thread_state(ThreadId(2)), ThreadState::Ready);
    }

    #[test]
    fn dispatch_empty_returns_none() {
        let mut s = sched(1);
        assert!(s.dispatch(CpuId(0), 0).is_some());
        assert_eq!(s.dispatch(CpuId(1), 0), None);
    }

    #[test]
    fn quantum_expiry_and_renewal() {
        let mut s = sched(2);
        let t = s.dispatch(CpuId(0), 100).unwrap();
        let q = s.config().quantum_ns;
        assert!(!s.quantum_expired(t, 100 + q - 1));
        assert!(s.quantum_expired(t, 100 + q));
        s.renew_quantum(t, 100 + q);
        assert!(!s.quantum_expired(t, 100 + q + 1));
    }

    #[test]
    fn preempt_requeues_at_back() {
        let mut s = sched(3);
        let t0 = s.dispatch(CpuId(0), 0).unwrap();
        s.preempt(t0, CpuId(0), 1000);
        // Queue now: t1, t2, t0.
        assert_eq!(s.dispatch(CpuId(0), 1000), Some(ThreadId(1)));
        assert_eq!(s.dispatch(CpuId(0), 1000), Some(ThreadId(2)));
        assert_eq!(s.dispatch(CpuId(0), 1000), Some(ThreadId(0)));
        assert_eq!(s.stats().preemptions, 1);
    }

    #[test]
    fn affinity_prefers_woken_thread_on_its_cpu() {
        let mut s = sched(3);
        // t0 runs on cpu1, blocks on a lock (keeps affinity), t1 runs next
        // on cpu1 and also blocks. Then t0 wakes.
        let t0 = s.dispatch(CpuId(1), 0).unwrap();
        s.block_on_lock(t0, LockId(0), CpuId(1), 10);
        let t1 = s.dispatch(CpuId(1), 10).unwrap();
        assert_eq!(t1, ThreadId(1));
        s.block_on_lock(t1, LockId(0), CpuId(1), 20);
        s.wake(t0, 30);
        // Ready queue: t2, t0 — but t0 has a warm-cache claim on cpu1 and is
        // not the thread cpu1 just ran, so cpu1 skips ahead to it.
        assert_eq!(s.dispatch(CpuId(1), 40), Some(ThreadId(0)));
        // A fresh CPU takes the queue head.
        assert_eq!(s.dispatch(CpuId(0), 40), Some(ThreadId(2)));
    }

    #[test]
    fn preempted_thread_loses_affinity_claim() {
        let mut s = sched(3);
        let t0 = s.dispatch(CpuId(0), 0).unwrap();
        s.preempt(t0, CpuId(0), 10);
        // Round-robin order holds: the preempted thread waits its turn.
        assert_eq!(s.dispatch(CpuId(0), 20), Some(ThreadId(1)));
    }

    #[test]
    fn migrations_counted() {
        let mut s = sched(1);
        let t = s.dispatch(CpuId(0), 0).unwrap();
        s.preempt(t, CpuId(0), 10);
        // Force a different CPU to pick it up (affinity window can't save it
        // — it's the only thread but CPU differs).
        s.dispatch(CpuId(3), 20).unwrap();
        assert_eq!(s.stats().migrations, 1);
    }

    #[test]
    fn block_and_wake_cycle() {
        let mut s = sched(2);
        let t = s.dispatch(CpuId(0), 0).unwrap();
        s.block_on_lock(t, LockId(5), CpuId(0), 50);
        assert_eq!(s.thread_state(t), ThreadState::Blocked(LockId(5)));
        s.wake(t, 500);
        assert_eq!(s.thread_state(t), ThreadState::Ready);
        // It is at the back of the queue, behind t1.
        assert_eq!(s.dispatch(CpuId(0), 500), Some(ThreadId(1)));
        assert_eq!(s.dispatch(CpuId(1), 500), Some(t));
    }

    #[test]
    fn log_records_when_enabled() {
        let mut s = sched(2);
        s.set_log_enabled(true);
        let t = s.dispatch(CpuId(0), 0).unwrap();
        s.preempt(t, CpuId(0), 100);
        assert_eq!(s.log().len(), 2);
        assert_eq!(s.log()[0].kind, SchedEventKind::Dispatch);
        assert_eq!(s.log()[1].kind, SchedEventKind::Preempt);
        let taken = s.take_log();
        assert_eq!(taken.len(), 2);
        assert!(s.log().is_empty());
    }

    #[test]
    fn log_silent_when_disabled() {
        let mut s = sched(2);
        let t = s.dispatch(CpuId(0), 0).unwrap();
        s.preempt(t, CpuId(0), 100);
        assert!(s.log().is_empty());
    }

    #[test]
    fn validation() {
        let bad = SchedConfig {
            quantum_ns: 0,
            ..SchedConfig::default()
        };
        assert!(Scheduler::new(bad, 2, 2).is_err());
        assert!(Scheduler::new(SchedConfig::default(), 0, 2).is_err());
        assert!(Scheduler::new(SchedConfig::default(), 2, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "waking a running thread")]
    fn waking_running_thread_panics() {
        let mut s = sched(1);
        let t = s.dispatch(CpuId(0), 0).unwrap();
        s.wake(t, 10);
    }
}
