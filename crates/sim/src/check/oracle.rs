//! An untimed functional reference model of the snooping coherence
//! protocols, for differential testing against the timed simulator.
//!
//! The oracle tracks only what the protocol *specification* dictates: the
//! per-node state of each block and where each access must be served from.
//! It knows nothing about latencies, the bus, LRU, or capacity — which is
//! exactly the point: on traces whose working set fits the timed L2 (so no
//! eviction ever fires), the timed simulator's L2 states and data sources
//! must match the oracle after every single access. The differential suite
//! (`tests/oracle_diff.rs`) drives both on seeded random traces.
//!
//! What the oracle deliberately does **not** model: cache capacity and
//! eviction, the L1s, instruction fetches, timing of any kind, and stat
//! counters. Those are covered by the [`InvariantMonitor`](super::InvariantMonitor)
//! and the unit/property suites instead.

use std::collections::HashMap;

use crate::ids::{BlockAddr, CpuId};
use crate::mem::{AccessSource, CoherenceProtocol, CoherenceState};
use crate::ops::AccessKind;

/// Where the protocol specification says an access must be served from.
///
/// Coarser than [`AccessSource`]: the oracle has no L1, so both L1 and L2
/// hits collapse into [`OracleSource::LocalHit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OracleSource {
    /// Served locally with sufficient permission (timed: L1 or L2 hit,
    /// including a silent Exclusive → Modified upgrade).
    LocalHit,
    /// Served locally after an ownership-upgrade broadcast.
    Upgrade,
    /// Miss served by a remote cache owner.
    RemoteCache,
    /// Miss served by a memory controller.
    Memory,
}

impl OracleSource {
    /// Maps the timed simulator's [`AccessSource`] onto the oracle's coarser
    /// classification.
    pub fn from_timed(source: AccessSource) -> Self {
        match source {
            AccessSource::L1 | AccessSource::L2 => OracleSource::LocalHit,
            AccessSource::Upgrade => OracleSource::Upgrade,
            AccessSource::RemoteCache => OracleSource::RemoteCache,
            AccessSource::Memory => OracleSource::Memory,
        }
    }
}

/// The untimed reference model: per-node coherence state for every block
/// ever touched, evolved by the protocol's transition rules alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceOracle {
    protocol: CoherenceProtocol,
    cpus: usize,
    states: HashMap<BlockAddr, Vec<CoherenceState>>,
}

impl CoherenceOracle {
    /// Creates an oracle for `cpus` nodes running `protocol`. All blocks
    /// start Invalid everywhere.
    pub fn new(protocol: CoherenceProtocol, cpus: usize) -> Self {
        assert!(cpus > 0, "oracle needs at least one node");
        CoherenceOracle {
            protocol,
            cpus,
            states: HashMap::new(),
        }
    }

    /// The protocol being modelled.
    pub fn protocol(&self) -> CoherenceProtocol {
        self.protocol
    }

    /// Number of nodes.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// The reference state of `addr` at `cpu`.
    pub fn state(&self, cpu: CpuId, addr: BlockAddr) -> CoherenceState {
        self.states
            .get(&addr)
            .map_or(CoherenceState::Invalid, |v| v[cpu.index()])
    }

    /// Applies one access and returns where the specification says it must
    /// be served from.
    ///
    /// The transition rules are written from the protocol definition, not
    /// from the simulator's code, so the two disagree whenever either has a
    /// bug:
    ///
    /// * **Read, local copy valid** — local hit, no transition.
    /// * **Read miss** — a remote Modified owner goes Owned (MOSI/MOESI) or
    ///   writes back and goes Shared (MESI); a remote Exclusive holder goes
    ///   Shared. The requester gets Exclusive iff no other copy exists and
    ///   the protocol has E, else Shared. Served by the remote owner if one
    ///   exists, else by memory.
    /// * **Write, local Modified** — local hit.
    /// * **Write, local Exclusive** — silent upgrade to Modified, local hit.
    /// * **Write, local Shared/Owned** — upgrade broadcast: every remote
    ///   copy is invalidated, the writer goes Modified.
    /// * **Write miss** — every remote copy is invalidated, the writer goes
    ///   Modified; served by the remote owner if one existed, else memory.
    pub fn apply(&mut self, cpu: CpuId, addr: BlockAddr, kind: AccessKind) -> OracleSource {
        let me = cpu.index();
        assert!(me < self.cpus, "cpu {me} out of range");
        let protocol = self.protocol;
        let n = self.cpus;
        let states = self
            .states
            .entry(addr)
            .or_insert_with(|| vec![CoherenceState::Invalid; n]);
        match kind {
            AccessKind::Read => {
                if states[me].is_readable() {
                    return OracleSource::LocalHit;
                }
                let owner = (0..n).find(|&i| i != me && states[i].is_owner());
                let any_copy = (0..n).any(|i| i != me && states[i] != CoherenceState::Invalid);
                if let Some(o) = owner {
                    match states[o] {
                        CoherenceState::Modified => {
                            states[o] = if protocol.has_owned() {
                                CoherenceState::Owned
                            } else {
                                CoherenceState::Shared
                            };
                        }
                        CoherenceState::Exclusive => states[o] = CoherenceState::Shared,
                        _ => {}
                    }
                }
                states[me] = if !any_copy && protocol.has_exclusive() {
                    CoherenceState::Exclusive
                } else {
                    CoherenceState::Shared
                };
                if owner.is_some() {
                    OracleSource::RemoteCache
                } else {
                    OracleSource::Memory
                }
            }
            AccessKind::Write => match states[me] {
                CoherenceState::Modified => OracleSource::LocalHit,
                CoherenceState::Exclusive => {
                    states[me] = CoherenceState::Modified;
                    OracleSource::LocalHit
                }
                CoherenceState::Shared | CoherenceState::Owned => {
                    for (i, s) in states.iter_mut().enumerate() {
                        if i != me {
                            *s = CoherenceState::Invalid;
                        }
                    }
                    states[me] = CoherenceState::Modified;
                    OracleSource::Upgrade
                }
                CoherenceState::Invalid => {
                    let had_owner = (0..n).any(|i| i != me && states[i].is_owner());
                    for (i, s) in states.iter_mut().enumerate() {
                        if i != me {
                            *s = CoherenceState::Invalid;
                        }
                    }
                    states[me] = CoherenceState::Modified;
                    if had_owner {
                        OracleSource::RemoteCache
                    } else {
                        OracleSource::Memory
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosi_read_write_sharing_script() {
        let mut o = CoherenceOracle::new(CoherenceProtocol::Mosi, 3);
        let a = BlockAddr(1);
        // Cold read: memory, Shared (no E in MOSI).
        assert_eq!(o.apply(CpuId(0), a, AccessKind::Read), OracleSource::Memory);
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Shared);
        // Store from Shared pays an upgrade even with no other copy.
        assert_eq!(
            o.apply(CpuId(0), a, AccessKind::Write),
            OracleSource::Upgrade
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Modified);
        // Remote read: cache-to-cache, owner keeps the dirty block as Owned.
        assert_eq!(
            o.apply(CpuId(1), a, AccessKind::Read),
            OracleSource::RemoteCache
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Owned);
        assert_eq!(o.state(CpuId(1), a), CoherenceState::Shared);
        // Third node still reads cache-to-cache from the Owned copy.
        assert_eq!(
            o.apply(CpuId(2), a, AccessKind::Read),
            OracleSource::RemoteCache
        );
        // Writer invalidates everyone.
        assert_eq!(
            o.apply(CpuId(2), a, AccessKind::Write),
            OracleSource::Upgrade
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Invalid);
        assert_eq!(o.state(CpuId(1), a), CoherenceState::Invalid);
        assert_eq!(o.state(CpuId(2), a), CoherenceState::Modified);
    }

    #[test]
    fn mesi_exclusive_and_silent_upgrade() {
        let mut o = CoherenceOracle::new(CoherenceProtocol::Mesi, 2);
        let a = BlockAddr(2);
        assert_eq!(o.apply(CpuId(0), a, AccessKind::Read), OracleSource::Memory);
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Exclusive);
        // Silent upgrade: no bus traffic.
        assert_eq!(
            o.apply(CpuId(0), a, AccessKind::Write),
            OracleSource::LocalHit
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Modified);
        // MESI remote read of dirty data: both end Shared (writeback).
        assert_eq!(
            o.apply(CpuId(1), a, AccessKind::Read),
            OracleSource::RemoteCache
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Shared);
        assert_eq!(o.state(CpuId(1), a), CoherenceState::Shared);
    }

    #[test]
    fn mesi_second_reader_demotes_exclusive() {
        let mut o = CoherenceOracle::new(CoherenceProtocol::Mesi, 2);
        let a = BlockAddr(3);
        o.apply(CpuId(0), a, AccessKind::Read);
        assert_eq!(
            o.apply(CpuId(1), a, AccessKind::Read),
            OracleSource::RemoteCache
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Shared);
        assert_eq!(o.state(CpuId(1), a), CoherenceState::Shared);
    }

    #[test]
    fn moesi_keeps_owned_and_exclusive() {
        let mut o = CoherenceOracle::new(CoherenceProtocol::Moesi, 2);
        let a = BlockAddr(4);
        o.apply(CpuId(0), a, AccessKind::Read);
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Exclusive);
        o.apply(CpuId(0), a, AccessKind::Write);
        assert_eq!(
            o.apply(CpuId(1), a, AccessKind::Read),
            OracleSource::RemoteCache
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Owned);
    }

    #[test]
    fn write_miss_over_remote_owner_is_cache_to_cache() {
        let mut o = CoherenceOracle::new(CoherenceProtocol::Mosi, 2);
        let a = BlockAddr(5);
        o.apply(CpuId(0), a, AccessKind::Write);
        assert_eq!(
            o.apply(CpuId(1), a, AccessKind::Write),
            OracleSource::RemoteCache
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Invalid);
        assert_eq!(o.state(CpuId(1), a), CoherenceState::Modified);
    }

    #[test]
    fn write_miss_over_shared_copies_is_memory_served() {
        // Shared copies are clean and no cache owns the block, so memory
        // supplies the data even though remote copies get invalidated.
        let mut o = CoherenceOracle::new(CoherenceProtocol::Mosi, 3);
        let a = BlockAddr(6);
        o.apply(CpuId(0), a, AccessKind::Read);
        o.apply(CpuId(1), a, AccessKind::Read);
        assert_eq!(
            o.apply(CpuId(2), a, AccessKind::Write),
            OracleSource::Memory
        );
        assert_eq!(o.state(CpuId(0), a), CoherenceState::Invalid);
        assert_eq!(o.state(CpuId(1), a), CoherenceState::Invalid);
    }

    #[test]
    fn source_mapping_from_timed() {
        assert_eq!(
            OracleSource::from_timed(AccessSource::L1),
            OracleSource::LocalHit
        );
        assert_eq!(
            OracleSource::from_timed(AccessSource::L2),
            OracleSource::LocalHit
        );
        assert_eq!(
            OracleSource::from_timed(AccessSource::Upgrade),
            OracleSource::Upgrade
        );
        assert_eq!(
            OracleSource::from_timed(AccessSource::RemoteCache),
            OracleSource::RemoteCache
        );
        assert_eq!(
            OracleSource::from_timed(AccessSource::Memory),
            OracleSource::Memory
        );
    }
}
