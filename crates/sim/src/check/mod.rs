//! Runtime invariant checking for the simulated memory system.
//!
//! The paper's methodology (§3.3) treats the simulator as a trustworthy pure
//! function of `(configuration, workload seed, perturbation seed)`; a silent
//! coherence or accounting bug would corrupt every CV, WCR and t-test result
//! built on top of it. This module provides the machinery that keeps that
//! trust earned:
//!
//! * [`InvariantMonitor`] — a strictly read-only observer wired into the
//!   machine's event loop (behind [`MachineConfig::check_invariants`] or the
//!   `invariant-monitor` cargo feature) that re-verifies, after every memory
//!   operation, the protocol invariants of the block just touched, L1/L2
//!   inclusion, event-time monotonicity, and — at the end of each measurement
//!   interval — the stat conservation laws (hits + misses == accesses).
//!   Violations are recorded as structured [`Violation`] reports naming the
//!   block, the CPUs involved, and the cycle.
//! * [`oracle::CoherenceOracle`] — a small untimed functional reference model
//!   of the MOSI/MESI/MOESI state machines, cross-checked against the timed
//!   simulator on seeded random traces by the differential test suite.
//!
//! The monitor never mutates simulator state, so enabling it cannot change a
//! simulation's outcome — only report on it.
//!
//! [`MachineConfig::check_invariants`]: crate::config::MachineConfig::check_invariants

pub mod oracle;

use std::fmt;

use crate::ids::{BlockAddr, CpuId, Cycle, ThreadId};
use crate::mem::{CoherenceProtocol, CoherenceState, MemStats, MemorySystem};
use crate::sched::{Scheduler, ThreadState};

/// The class of invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InvariantKind {
    /// Per-block protocol invariant: at most one Modified/Exclusive/Owned
    /// holder, exclusive states imply no other valid copy, and no state
    /// outside the configured protocol's subset.
    Coherence,
    /// L1/L2 inclusion: an L1 copy without a backing L2 copy, or a writable
    /// L1 copy over a non-writable L2 copy.
    Inclusion,
    /// The event queue delivered an event timestamped before its predecessor.
    TimeRegression,
    /// A stat conservation law failed (e.g. hits + misses != accesses).
    Conservation,
    /// The scheduler invariant broke: a thread ran on more than one CPU at
    /// once, or the scheduler's Running records disagreed with the machine's
    /// CPU slots.
    Scheduling,
}

/// One invariant violation, with enough context to debug it: the kind, the
/// cycle it was detected at, the block and CPUs involved, and a prose detail.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Violation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Simulated cycle at which the violation was detected.
    pub cycle: Cycle,
    /// The block involved, when the invariant is block-scoped.
    pub addr: Option<BlockAddr>,
    /// The CPUs implicated (holders of conflicting copies, the node with the
    /// broken inclusion, ...). Empty for machine-global invariants.
    pub cpus: Vec<CpuId>,
    /// Human-readable description of the violated constraint.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {:?} violation", self.cycle, self.kind)?;
        if let Some(addr) = self.addr {
            write!(f, " at block {}", addr.0)?;
        }
        if !self.cpus.is_empty() {
            write!(f, " involving [")?;
            for (i, c) in self.cpus.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "]")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Stored violations are capped so a badly broken run cannot exhaust memory;
/// the total count keeps accumulating past the cap.
const MAX_STORED_VIOLATIONS: usize = 64;

/// A read-only observer of the memory system's structural invariants.
///
/// The machine drives it: [`InvariantMonitor::observe_event`] on every event
/// pop, [`InvariantMonitor::note_data_op`] / [`note_fetch_op`] +
/// [`check_block`] after every memory operation, and
/// [`check_conservation`] when a measurement interval closes. All checks
/// take `&MemorySystem` — the monitor cannot perturb the simulation.
///
/// [`note_fetch_op`]: InvariantMonitor::note_fetch_op
/// [`check_block`]: InvariantMonitor::check_block
/// [`check_conservation`]: InvariantMonitor::check_conservation
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InvariantMonitor {
    protocol: CoherenceProtocol,
    violations: Vec<Violation>,
    total_violations: u64,
    last_event_time: Cycle,
    /// Data accesses issued since the interval began (Op::Memory plus lock-
    /// word reads-modify-writes), mirroring what `MemorySystem::access` sees.
    data_ops: u64,
    /// Instruction fetches issued since the interval began (one per
    /// Op::Compute burst), mirroring `MemorySystem::fetch`.
    fetch_ops: u64,
    /// Reusable working set for [`InvariantMonitor::check_block`], which
    /// runs after every memory operation on monitored machines and must not
    /// allocate in the steady state.
    scratch: Scratch,
}

/// Holder lists rebuilt on every `check_block` call. Pure working memory:
/// always-equal under `==` and absent from snapshots, so retained capacity
/// never leaks into machine comparisons or checkpoint fingerprints.
#[derive(Debug, Clone, Default)]
struct Scratch {
    modified: Vec<CpuId>,
    exclusive: Vec<CpuId>,
    owned: Vec<CpuId>,
    valid: Vec<CpuId>,
}

impl PartialEq for Scratch {
    fn eq(&self, _: &Scratch) -> bool {
        true
    }
}
impl Eq for Scratch {}

impl InvariantMonitor {
    /// Creates a monitor for a machine running `protocol`.
    pub fn new(protocol: CoherenceProtocol) -> Self {
        InvariantMonitor {
            protocol,
            violations: Vec::new(),
            total_violations: 0,
            last_event_time: 0,
            data_ops: 0,
            fetch_ops: 0,
            scratch: Scratch::default(),
        }
    }

    /// The protocol whose invariants are enforced.
    pub fn protocol(&self) -> CoherenceProtocol {
        self.protocol
    }

    /// Violations recorded so far (capped at an internal bound; see
    /// [`InvariantMonitor::total_violations`] for the uncapped count).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Drains and returns the stored violation reports, leaving the monitor
    /// in place for further checking.
    ///
    /// The uncapped [`InvariantMonitor::total_violations`] counter is *not*
    /// reset — findings stay findings — so [`InvariantMonitor::is_clean`]
    /// still reports whether anything was ever detected. This is the
    /// extraction API the parallel run-space executor uses to pull each
    /// run's violations out of its machine and feed them into the violations
    /// channel.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Total violations detected, including any dropped past the storage cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Whether no violation has been detected since construction.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Starts a new measurement interval: the per-interval operation
    /// counters reset alongside the memory system's own counters, so the
    /// conservation laws compare like with like. Recorded violations are
    /// kept — they are findings, not statistics.
    pub fn begin_interval(&mut self) {
        self.data_ops = 0;
        self.fetch_ops = 0;
    }

    /// Records one data access (a load, store, or lock-word RMW) issued to
    /// the memory system.
    pub fn note_data_op(&mut self) {
        self.data_ops += 1;
    }

    /// Records one instruction fetch issued to the memory system.
    pub fn note_fetch_op(&mut self) {
        self.fetch_ops += 1;
    }

    fn report(
        &mut self,
        kind: InvariantKind,
        cycle: Cycle,
        addr: Option<BlockAddr>,
        cpus: Vec<CpuId>,
        detail: String,
    ) {
        self.total_violations += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(Violation {
                kind,
                cycle,
                addr,
                cpus,
                detail,
            });
        }
    }

    /// Checks that event delivery time never runs backwards.
    pub fn observe_event(&mut self, now: Cycle) {
        if now < self.last_event_time {
            let last = self.last_event_time;
            self.report(
                InvariantKind::TimeRegression,
                now,
                None,
                Vec::new(),
                format!("event at cycle {now} delivered after cycle {last}"),
            );
        } else {
            self.last_event_time = now;
        }
    }

    /// Re-verifies every per-block invariant for `addr` at cycle `now`:
    /// single-writer, exclusive-implies-peers-invalid, at most one Owned
    /// copy, protocol-subset legality, and L1/L2 inclusion on every node.
    pub fn check_block(&mut self, mem: &MemorySystem, addr: BlockAddr, now: Cycle) {
        let cpus = mem.node_count();
        // Borrow the scratch out so `report` can take `&mut self`; the swap
        // moves pointers only, and the vectors keep their capacity across
        // calls — violation-free checks allocate nothing.
        let mut s = std::mem::take(&mut self.scratch);
        let Scratch {
            modified,
            exclusive,
            owned,
            valid,
        } = &mut s;
        modified.clear();
        exclusive.clear();
        owned.clear();
        valid.clear();
        for i in 0..cpus {
            let cpu = CpuId(i as u32);
            let st = mem.l2_state(cpu, addr);
            match st {
                CoherenceState::Modified => modified.push(cpu),
                CoherenceState::Exclusive => exclusive.push(cpu),
                CoherenceState::Owned => owned.push(cpu),
                CoherenceState::Shared | CoherenceState::Invalid => {}
            }
            if st != CoherenceState::Invalid {
                valid.push(cpu);
            }
        }

        if modified.len() > 1 {
            self.report(
                InvariantKind::Coherence,
                now,
                Some(addr),
                modified.clone(),
                format!("{} Modified copies (single-writer broken)", modified.len()),
            );
        }
        if exclusive.len() > 1 {
            self.report(
                InvariantKind::Coherence,
                now,
                Some(addr),
                exclusive.clone(),
                format!("{} Exclusive copies", exclusive.len()),
            );
        }
        if owned.len() > 1 {
            self.report(
                InvariantKind::Coherence,
                now,
                Some(addr),
                owned.clone(),
                format!("{} Owned copies", owned.len()),
            );
        }
        if (!modified.is_empty() || !exclusive.is_empty()) && valid.len() > 1 {
            self.report(
                InvariantKind::Coherence,
                now,
                Some(addr),
                valid.clone(),
                format!(
                    "exclusive-state holder coexists with {} other valid copies",
                    valid.len() - 1
                ),
            );
        }
        if !exclusive.is_empty() && !self.protocol.has_exclusive() {
            self.report(
                InvariantKind::Coherence,
                now,
                Some(addr),
                exclusive.clone(),
                format!("Exclusive state is illegal under {:?}", self.protocol),
            );
        }
        if !owned.is_empty() && !self.protocol.has_owned() {
            self.report(
                InvariantKind::Coherence,
                now,
                Some(addr),
                owned.clone(),
                format!("Owned state is illegal under {:?}", self.protocol),
            );
        }

        // L1/L2 inclusion per node: a valid L1 copy needs a valid L2 copy,
        // and a writable L1 copy needs a writable L2 copy.
        for i in 0..cpus {
            let cpu = CpuId(i as u32);
            let l2 = mem.l2_state(cpu, addr);
            for (which, l1) in [
                ("L1D", mem.l1d_state(cpu, addr)),
                ("L1I", mem.l1i_state(cpu, addr)),
            ] {
                if l1 == CoherenceState::Invalid {
                    continue;
                }
                if l2 == CoherenceState::Invalid {
                    self.report(
                        InvariantKind::Inclusion,
                        now,
                        Some(addr),
                        vec![cpu],
                        format!("{which} holds {l1:?} but L2 holds no copy"),
                    );
                } else if l1.is_writable() && !l2.is_writable() {
                    self.report(
                        InvariantKind::Inclusion,
                        now,
                        Some(addr),
                        vec![cpu],
                        format!("{which} is writable ({l1:?}) over a {l2:?} L2 copy"),
                    );
                }
            }
        }
        self.scratch = s;
    }

    /// Checks the scheduling invariant at cycle `now`: every thread runs on
    /// at most one CPU, and the scheduler's Running records agree with the
    /// machine's per-CPU thread slots in both directions. `cpu_threads[i]`
    /// is the thread currently executing on CPU `i` (`None` when idle).
    pub fn check_schedule(
        &mut self,
        sched: &Scheduler,
        cpu_threads: &[Option<ThreadId>],
        now: Cycle,
    ) {
        for (i, slot) in cpu_threads.iter().enumerate() {
            let Some(t) = *slot else { continue };
            let cpu = CpuId(i as u32);
            for (j, other) in cpu_threads.iter().enumerate().skip(i + 1) {
                if *other == Some(t) {
                    self.report(
                        InvariantKind::Scheduling,
                        now,
                        None,
                        vec![cpu, CpuId(j as u32)],
                        format!("thread {t} occupies two CPUs at once"),
                    );
                }
            }
            let state = sched.thread_state(t);
            if state != ThreadState::Running(cpu) {
                self.report(
                    InvariantKind::Scheduling,
                    now,
                    None,
                    vec![cpu],
                    format!("{cpu} runs thread {t} but the scheduler records it as {state:?}"),
                );
            }
        }
        // A Running record pointing at a CPU whose slot holds a different
        // thread means one CPU appears to run two threads at once.
        for idx in 0..sched.thread_count() {
            let t = ThreadId(idx as u32);
            if let ThreadState::Running(cpu) = sched.thread_state(t) {
                if cpu_threads.get(cpu.index()).copied().flatten() != Some(t) {
                    self.report(
                        InvariantKind::Scheduling,
                        now,
                        None,
                        vec![cpu],
                        format!(
                            "scheduler records thread {t} Running on {cpu}, \
                             which is running a different thread"
                        ),
                    );
                }
            }
        }
    }

    /// Checks the stat conservation laws over one measurement interval:
    ///
    /// * `l1d_hits + l1d_misses == data ops issued`
    /// * `l1i_hits + l1i_misses == fetch ops issued`
    /// * every L1 miss reaches L2 exactly once:
    ///   `l1d_misses + l1i_misses == l2_hits + l2_misses + upgrades + silent_upgrades`
    /// * every L2 miss is served exactly once:
    ///   `l2_misses == cache_to_cache + memory_fetches`
    pub fn check_conservation(&mut self, stats: &MemStats, now: Cycle) {
        let l1d = stats.l1d_hits + stats.l1d_misses;
        if l1d != self.data_ops {
            let issued = self.data_ops;
            self.report(
                InvariantKind::Conservation,
                now,
                None,
                Vec::new(),
                format!("l1d_hits + l1d_misses = {l1d} but {issued} data ops were issued"),
            );
        }
        let l1i = stats.l1i_hits + stats.l1i_misses;
        if l1i != self.fetch_ops {
            let issued = self.fetch_ops;
            self.report(
                InvariantKind::Conservation,
                now,
                None,
                Vec::new(),
                format!("l1i_hits + l1i_misses = {l1i} but {issued} fetches were issued"),
            );
        }
        let l1_misses = stats.l1d_misses + stats.l1i_misses;
        let l2_lookups = stats.l2_hits + stats.l2_misses + stats.upgrades + stats.silent_upgrades;
        if l1_misses != l2_lookups {
            self.report(
                InvariantKind::Conservation,
                now,
                None,
                Vec::new(),
                format!("{l1_misses} L1 misses but {l2_lookups} L2 lookups recorded"),
            );
        }
        let served = stats.cache_to_cache + stats.memory_fetches;
        if stats.l2_misses != served {
            let misses = stats.l2_misses;
            self.report(
                InvariantKind::Conservation,
                now,
                None,
                Vec::new(),
                format!("{misses} L2 misses but {served} were served (c2c + memory)"),
            );
        }
    }
}

impl crate::checkpoint::Snap for InvariantKind {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        enc.put_u8(match self {
            InvariantKind::Coherence => 0,
            InvariantKind::Inclusion => 1,
            InvariantKind::TimeRegression => 2,
            InvariantKind::Conservation => 3,
            InvariantKind::Scheduling => 4,
        });
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        Ok(match dec.get_u8()? {
            0 => InvariantKind::Coherence,
            1 => InvariantKind::Inclusion,
            2 => InvariantKind::TimeRegression,
            3 => InvariantKind::Conservation,
            4 => InvariantKind::Scheduling,
            _ => {
                return Err(crate::checkpoint::CheckpointError::Corrupt {
                    what: "InvariantKind tag".into(),
                })
            }
        })
    }
    fn snap_size_hint(&self) -> usize {
        1
    }
}

crate::impl_snap!(Violation {
    kind,
    cycle,
    addr,
    cpus,
    detail,
});
/// Hand-written [`Snap`](crate::checkpoint::Snap): encodes exactly the six
/// semantic fields the derived implementation always encoded, in the same
/// order. The `Scratch` working set is per-call memory with no meaning
/// across calls, so it stays out of the byte stream — checkpoint encodings
/// are unchanged — and a restored monitor simply starts with empty scratch.
impl crate::checkpoint::Snap for InvariantMonitor {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        self.protocol.encode_snap(enc);
        self.violations.encode_snap(enc);
        self.total_violations.encode_snap(enc);
        self.last_event_time.encode_snap(enc);
        self.data_ops.encode_snap(enc);
        self.fetch_ops.encode_snap(enc);
    }

    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::Snap;
        Ok(InvariantMonitor {
            protocol: Snap::decode_snap(dec)?,
            violations: Snap::decode_snap(dec)?,
            total_violations: Snap::decode_snap(dec)?,
            last_event_time: Snap::decode_snap(dec)?,
            data_ops: Snap::decode_snap(dec)?,
            fetch_ops: Snap::decode_snap(dec)?,
            scratch: Scratch::default(),
        })
    }
    fn snap_size_hint(&self) -> usize {
        self.protocol.snap_size_hint()
            + self.violations.snap_size_hint()
            + self.total_violations.snap_size_hint()
            + self.last_event_time.snap_size_hint()
            + self.data_ops.snap_size_hint()
            + self.fetch_ops.snap_size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CpuId;
    use crate::mem::{CacheConfig, MemoryConfig, Perturbation};
    use crate::ops::AccessKind;

    fn mem(protocol: CoherenceProtocol, cpus: usize) -> MemorySystem {
        let mut cfg = MemoryConfig::hpca2003();
        cfg.l2 = CacheConfig::new(8192, 4, 64).unwrap();
        cfg.protocol = protocol;
        MemorySystem::new(cfg, cpus, Perturbation::disabled()).unwrap()
    }

    #[test]
    fn healthy_traffic_is_clean() {
        let mut m = mem(CoherenceProtocol::Mosi, 4);
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        let a = BlockAddr(5);
        for (i, (cpu, kind)) in [
            (0u32, AccessKind::Write),
            (1, AccessKind::Read),
            (2, AccessKind::Read),
            (1, AccessKind::Write),
            (0, AccessKind::Read),
        ]
        .into_iter()
        .enumerate()
        {
            let now = (i as u64 + 1) * 100;
            mon.observe_event(now);
            m.access(CpuId(cpu), a, kind, now);
            mon.note_data_op();
            mon.check_block(&m, a, now);
        }
        mon.check_conservation(m.stats(), 500);
        assert!(mon.is_clean(), "violations: {:?}", mon.violations());
    }

    #[test]
    fn forced_double_modified_is_caught_with_diagnostic() {
        let mut m = mem(CoherenceProtocol::Mosi, 4);
        let a = BlockAddr(17);
        m.access(CpuId(0), a, AccessKind::Write, 100);
        // Deliberately corrupt the protocol state: a second Modified holder.
        m.force_l2_state(CpuId(3), a, CoherenceState::Modified);
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        mon.check_block(&m, a, 250);
        assert!(!mon.is_clean());
        let v = &mon.violations()[0];
        assert_eq!(v.kind, InvariantKind::Coherence);
        assert_eq!(v.addr, Some(a));
        assert_eq!(v.cycle, 250);
        assert!(v.cpus.contains(&CpuId(0)) && v.cpus.contains(&CpuId(3)));
        // The rendered report names block, CPUs and cycle.
        let text = v.to_string();
        assert!(text.contains("block 17"), "{text}");
        assert!(text.contains("cpu0") && text.contains("cpu3"), "{text}");
        assert!(text.contains("cycle 250"), "{text}");
    }

    #[test]
    fn illegal_state_for_protocol_is_caught() {
        let mut m = mem(CoherenceProtocol::Mosi, 2);
        let a = BlockAddr(3);
        m.force_l2_state(CpuId(1), a, CoherenceState::Exclusive);
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        mon.check_block(&m, a, 10);
        assert!(mon
            .violations()
            .iter()
            .any(|v| v.detail.contains("illegal under Mosi")));
    }

    #[test]
    fn inclusion_violation_is_caught() {
        let mut m = mem(CoherenceProtocol::Mosi, 2);
        let a = BlockAddr(9);
        // Fill L1D + L2 on cpu0, then corrupt: drop the L2 copy only.
        m.access(CpuId(0), a, AccessKind::Write, 0);
        m.force_l2_state(CpuId(0), a, CoherenceState::Invalid);
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        mon.check_block(&m, a, 77);
        assert!(mon
            .violations()
            .iter()
            .any(|v| v.kind == InvariantKind::Inclusion && v.cpus == vec![CpuId(0)]));
    }

    #[test]
    fn time_regression_is_caught() {
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        mon.observe_event(100);
        mon.observe_event(100);
        assert!(mon.is_clean());
        mon.observe_event(99);
        assert_eq!(mon.violations().len(), 1);
        assert_eq!(mon.violations()[0].kind, InvariantKind::TimeRegression);
    }

    #[test]
    fn conservation_violation_is_caught() {
        let mut m = mem(CoherenceProtocol::Mosi, 1);
        m.access(CpuId(0), BlockAddr(1), AccessKind::Read, 0);
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        // The access above was never noted, so hits + misses != issued ops.
        mon.check_conservation(m.stats(), 50);
        assert!(mon
            .violations()
            .iter()
            .any(|v| v.kind == InvariantKind::Conservation));
    }

    #[test]
    fn begin_interval_resets_op_counters_but_keeps_findings() {
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        mon.note_data_op();
        mon.observe_event(10);
        mon.observe_event(5); // one finding
        mon.begin_interval();
        let m = mem(CoherenceProtocol::Mosi, 1);
        mon.check_conservation(m.stats(), 20); // 0 ops vs 0 stats: clean
        assert_eq!(mon.total_violations(), 1);
    }

    #[test]
    fn schedule_double_run_is_caught() {
        use crate::sched::SchedConfig;
        let mut sched = Scheduler::new(SchedConfig::default(), 4, 2).unwrap();
        let t0 = sched.dispatch(CpuId(0), 0).unwrap();
        let t1 = sched.dispatch(CpuId(1), 0).unwrap();
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        mon.check_schedule(&sched, &[Some(t0), Some(t1)], 100);
        assert!(mon.is_clean(), "violations: {:?}", mon.violations());

        // Corrupt: re-record t0 as Running on cpu1 — now cpu0's slot
        // disagrees with the record, and t0 claims a CPU running t1.
        sched.force_running(t0, CpuId(1));
        mon.check_schedule(&sched, &[Some(t0), Some(t1)], 200);
        assert!(!mon.is_clean());
        assert!(mon
            .violations()
            .iter()
            .all(|v| v.kind == InvariantKind::Scheduling));
        assert!(mon.violations().len() >= 2);
    }

    #[test]
    fn same_thread_on_two_slots_is_caught() {
        use crate::sched::SchedConfig;
        let mut sched = Scheduler::new(SchedConfig::default(), 2, 2).unwrap();
        let t0 = sched.dispatch(CpuId(0), 0).unwrap();
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        mon.check_schedule(&sched, &[Some(t0), Some(t0)], 50);
        assert!(mon
            .violations()
            .iter()
            .any(|v| v.detail.contains("two CPUs at once")));
    }

    #[test]
    fn violation_storage_is_capped_but_counted() {
        let mut mon = InvariantMonitor::new(CoherenceProtocol::Mosi);
        for t in 0..200u64 {
            mon.observe_event(1000 - t); // every event after the first regresses
        }
        assert_eq!(mon.total_violations(), 199);
        assert_eq!(mon.violations().len(), MAX_STORED_VIOLATIONS);
    }
}
