//! The interface between the machine and workload generators.
//!
//! A [`Workload`] owns the deterministic per-thread instruction streams. The
//! contract that makes the paper's methodology sound (§3.3) is:
//!
//! * the op sequence of each thread is a pure function of the workload's own
//!   seed and state — **never** of the run's perturbation seed, and
//! * all workload state is `Clone + Serialize`, so a machine checkpoint
//!   captures it exactly.
//!
//! Execution-path divergence between runs then comes only from *timing*:
//! scheduling decisions, lock-acquisition order, and which transactions
//! commit inside the measurement window — precisely the paper's sources (1)
//! to (3) in §2.1.

use crate::ids::ThreadId;
use crate::ops::Op;

/// A deterministic multi-threaded workload.
///
/// Implementors generate an (conceptually infinite) op stream per thread via
/// [`Workload::next_op`]. Throughput-oriented workloads emit [`Op::TxnEnd`]
/// markers; fixed-size scientific workloads (Barnes, Ocean) emit one `TxnEnd`
/// at completion and then park in an idle loop.
pub trait Workload {
    /// Number of software threads the workload wants.
    fn thread_count(&self) -> usize;

    /// Produces the next operation for `thread`.
    ///
    /// Called exactly once per executed op, in each thread's program order.
    /// Must be deterministic given the workload's state.
    fn next_op(&mut self, thread: ThreadId) -> Op;

    /// A short human-readable name ("oltp", "specjbb", ...).
    fn name(&self) -> &str;
}

/// A trivial single-op workload, useful in unit tests: every thread spins on
/// compute bursts and commits a transaction every `ops_per_txn` ops.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UniformWorkload {
    threads: usize,
    ops_per_txn: u32,
    burst: u32,
    counters: Vec<u32>,
}

impl UniformWorkload {
    /// Creates the workload with `threads` threads committing a transaction
    /// every `ops_per_txn` compute bursts of `burst` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `ops_per_txn == 0`.
    pub fn new(threads: usize, ops_per_txn: u32, burst: u32) -> Self {
        assert!(threads > 0, "threads must be > 0");
        assert!(ops_per_txn > 0, "ops_per_txn must be > 0");
        UniformWorkload {
            threads,
            ops_per_txn,
            burst: burst.max(1),
            counters: vec![0; threads],
        }
    }
}

impl Workload for UniformWorkload {
    fn thread_count(&self) -> usize {
        self.threads
    }

    fn next_op(&mut self, thread: ThreadId) -> Op {
        let c = &mut self.counters[thread.index()];
        if *c == self.ops_per_txn {
            *c = 0;
            return Op::TxnEnd;
        }
        *c += 1;
        Op::Compute {
            instructions: self.burst,
            code_block: crate::ids::BlockAddr(0xC0DE + u64::from(thread.0)),
        }
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// A synthetic workload with shared-memory traffic and critical sections —
/// the smallest workload that exhibits the paper's variability mechanisms
/// (coherence misses, lock contention, scheduling interactions). Real
/// benchmark profiles live in the `mtvar-workloads` crate; this one exists
/// for simulator tests and quick experiments.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SharingWorkload {
    threads: usize,
    ops_per_txn: u32,
    footprint_blocks: u64,
    write_ratio: f64,
    lock_every: u32,
    lock_count: u32,
    cs_len: u8,
    state: Vec<SharingThreadState>,
}

use crate::ids::{BlockAddr, LockId};
use crate::ops::AccessKind;
use crate::rng::Xoshiro256StarStar;

#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct SharingThreadState {
    rng: Xoshiro256StarStar,
    ops: u64,
    in_cs: Option<(u8, LockId)>,
}

impl SharingWorkload {
    /// Creates the workload.
    ///
    /// * `threads` — thread count;
    /// * `seed` — workload seed (same seed ⇒ identical op streams);
    /// * `ops_per_txn` — ops between [`Op::TxnEnd`] markers;
    /// * `footprint_blocks` — size of the shared data region;
    /// * `lock_every` — ops between critical sections (0 = lock-free).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `ops_per_txn == 0` or
    /// `footprint_blocks == 0`.
    pub fn new(
        threads: usize,
        seed: u64,
        ops_per_txn: u32,
        footprint_blocks: u64,
        lock_every: u32,
    ) -> Self {
        assert!(threads > 0, "threads must be > 0");
        assert!(ops_per_txn > 0, "ops_per_txn must be > 0");
        assert!(footprint_blocks > 0, "footprint_blocks must be > 0");
        let mut root = Xoshiro256StarStar::new(seed);
        let state = (0..threads)
            .map(|i| SharingThreadState {
                rng: root.fork(i as u64),
                ops: 0,
                in_cs: None,
            })
            .collect();
        SharingWorkload {
            threads,
            ops_per_txn,
            footprint_blocks,
            write_ratio: 0.3,
            lock_every,
            lock_count: 16,
            cs_len: 3,
            state,
        }
    }
}

impl Workload for SharingWorkload {
    fn thread_count(&self) -> usize {
        self.threads
    }

    fn next_op(&mut self, thread: ThreadId) -> Op {
        let ops_per_txn = u64::from(self.ops_per_txn);
        let lock_every = u64::from(self.lock_every);
        let footprint = self.footprint_blocks;
        let write_ratio = self.write_ratio;
        let lock_count = self.lock_count;
        let cs_len = self.cs_len;
        let st = &mut self.state[thread.index()];

        // Inside a critical section: a few shared accesses, then unlock.
        if let Some((remaining, lock)) = st.in_cs {
            if remaining == 0 {
                st.in_cs = None;
                return Op::Unlock(lock);
            }
            st.in_cs = Some((remaining - 1, lock));
            let addr = BlockAddr(st.rng.next_below(footprint));
            let kind = if st.rng.next_bool(write_ratio) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            return Op::Memory {
                addr,
                kind,
                dependent: false,
            };
        }

        st.ops += 1;
        if st.ops.is_multiple_of(ops_per_txn) {
            return Op::TxnEnd;
        }
        if lock_every > 0 && st.ops.is_multiple_of(lock_every) {
            let lock = LockId(st.rng.next_below(u64::from(lock_count)) as u32);
            st.in_cs = Some((cs_len, lock));
            return Op::Lock(lock);
        }
        if st.ops.is_multiple_of(3) {
            let addr = BlockAddr(st.rng.next_below(footprint));
            let kind = if st.rng.next_bool(write_ratio) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            return Op::Memory {
                addr,
                kind,
                dependent: false,
            };
        }
        Op::Compute {
            instructions: st.rng.next_burst(20.0, 120) as u32,
            code_block: BlockAddr(0xC0DE00 + (st.ops % 8) + u64::from(thread.0 % 4) * 8),
        }
    }

    fn name(&self) -> &str {
        "sharing"
    }
}

crate::impl_snap!(UniformWorkload {
    threads,
    ops_per_txn,
    burst,
    counters,
});
crate::impl_snap!(SharingThreadState { rng, ops, in_cs });
crate::impl_snap!(SharingWorkload {
    threads,
    ops_per_txn,
    footprint_blocks,
    write_ratio,
    lock_every,
    lock_count,
    cs_len,
    state,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_workload_commits_on_schedule() {
        let mut w = UniformWorkload::new(2, 3, 10);
        let t = ThreadId(0);
        for _ in 0..3 {
            assert!(matches!(w.next_op(t), Op::Compute { .. }));
        }
        assert!(matches!(w.next_op(t), Op::TxnEnd));
        // Other thread's counter is independent.
        assert!(matches!(w.next_op(ThreadId(1)), Op::Compute { .. }));
    }

    #[test]
    #[should_panic(expected = "threads must be > 0")]
    fn uniform_workload_rejects_zero_threads() {
        let _ = UniformWorkload::new(0, 1, 1);
    }

    #[test]
    fn sharing_workload_is_deterministic_per_seed() {
        let mut a = SharingWorkload::new(4, 9, 40, 512, 8);
        let mut b = SharingWorkload::new(4, 9, 40, 512, 8);
        let mut c = SharingWorkload::new(4, 10, 40, 512, 8);
        let sa: Vec<Op> = (0..500).map(|i| a.next_op(ThreadId(i % 4))).collect();
        let sb: Vec<Op> = (0..500).map(|i| b.next_op(ThreadId(i % 4))).collect();
        let sc: Vec<Op> = (0..500).map(|i| c.next_op(ThreadId(i % 4))).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn sharing_workload_locks_are_balanced() {
        let mut w = SharingWorkload::new(1, 3, 50, 256, 6);
        let mut held: Option<LockId> = None;
        let mut locks = 0;
        let mut unlocks = 0;
        for _ in 0..2000 {
            match w.next_op(ThreadId(0)) {
                Op::Lock(l) => {
                    assert!(held.is_none(), "nested lock");
                    held = Some(l);
                    locks += 1;
                }
                Op::Unlock(l) => {
                    assert_eq!(held, Some(l), "unlocking a lock not held");
                    held = None;
                    unlocks += 1;
                }
                _ => {}
            }
        }
        assert!(locks > 0, "workload never locked");
        assert!(unlocks >= locks - 1);
    }

    #[test]
    fn sharing_workload_emits_transactions_and_memory() {
        let mut w = SharingWorkload::new(2, 1, 30, 128, 0);
        let mut txns = 0;
        let mut mems = 0;
        for i in 0..600 {
            match w.next_op(ThreadId(i % 2)) {
                Op::TxnEnd => txns += 1,
                Op::Memory { addr, .. } => {
                    assert!(addr.0 < 128);
                    mems += 1;
                }
                Op::Lock(_) | Op::Unlock(_) => panic!("lock_every = 0 must be lock-free"),
                _ => {}
            }
        }
        assert!(txns >= 10);
        assert!(mems > 100);
    }
}
