//! Indexed two-level calendar queue for the discrete-event kernel.
//!
//! The machine's event population is small (one `CpuReady` per processor
//! plus a `ThreadWake` per sleeping thread) but the pop/push pair sits on
//! the hottest path in the simulator: every executed operation retires one
//! event and schedules the next. A binary heap pays `O(log n)` compares and
//! swaps on both sides; this queue exploits the structure of simulated time
//! instead.
//!
//! Level one is a ring of [`WHEEL_BUCKETS`] one-nanosecond buckets covering
//! the near future `[floor, floor + WHEEL_BUCKETS)`. Almost every event the
//! machine posts lands here: cache hits, coherence transactions, context
//! switches and lock wakeups are all a few thousand nanoseconds out at
//! most. Pushes append to the target bucket in O(1); pops drain the bucket
//! at the scan cursor and advance it through empty buckets with a 64-bit
//! occupancy bitmap, so the scan costs amortized O(1) per nanosecond of
//! simulated time. Level two is an overflow heap for far events (I/O delays
//! run to a millisecond); entries migrate into the wheel as the cursor
//! approaches, and when the wheel is empty the cursor jumps straight to the
//! overflow minimum.
//!
//! # Ordering
//!
//! Items are popped in ascending [`Ord`] order. The intended key is
//! `(time, sequence)` with a globally monotone sequence number — under that
//! discipline every push into a given one-nanosecond bucket arrives in key
//! order (same-time items are pushed in sequence order, and overflow
//! migration drains the heap in key order before any direct push can reach
//! the bucket), so bucket FIFO order *is* sorted order and the queue is a
//! drop-in replacement for `BinaryHeap<Reverse<T>>` with deterministic
//! tie-breaking. The differential fuzz test in `tests/equeue_fuzz.rs` pins
//! this equivalence against a reference heap.
//!
//! # Contract
//!
//! Pushes must not travel into the past: `push` requires
//! `item.time() >= self.floor()`, where the floor is the time of the most
//! recently popped item (or the scan position, if `peek` has advanced it
//! further). The machine satisfies this by construction — events are only
//! posted while handling an event at the current simulated time — and the
//! queue enforces it with a debug assertion.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Items stored in an [`EventQueue`]: totally ordered, with the ordering's
/// major key exposed as a nanosecond timestamp.
///
/// `Ord` must sort primarily by [`Timed::time`]; ties are broken by the rest
/// of the key (the machine uses a monotone sequence number, making the order
/// total and deterministic).
pub trait Timed: Ord + Copy {
    /// The item's scheduled time in nanoseconds (the major sort key).
    fn time(&self) -> u64;
}

/// Number of one-nanosecond buckets in the near wheel. Covers every latency
/// the machine composes out of cache, coherence, scheduler and pipeline
/// delays (≤ a few microseconds); longer waits (I/O sleeps) overflow to the
/// far heap.
pub const WHEEL_BUCKETS: usize = 4096;

/// Words in the bucket-occupancy bitmap.
const BITMAP_WORDS: usize = WHEEL_BUCKETS / 64;

/// A bounded-horizon calendar queue with an overflow heap; see the module
/// docs for the design and ordering contract.
#[derive(Debug, Clone)]
pub struct EventQueue<T: Timed> {
    /// Ring of near-future buckets; bucket `t % WHEEL_BUCKETS` holds items
    /// scheduled at time `t` for the unique in-window `t`.
    wheel: Vec<Bucket<T>>,
    /// One bit per bucket: set while the bucket holds unpopped items. Lets
    /// the pop scan skip runs of empty buckets 64 at a time.
    occupied: [u64; BITMAP_WORDS],
    /// Scan position: no unpopped item is scheduled before this time.
    cursor: u64,
    /// Items currently in the wheel.
    wheel_len: usize,
    /// Far-future items, all scheduled at `>= cursor + WHEEL_BUCKETS`.
    overflow: BinaryHeap<Reverse<T>>,
}

/// One wheel bucket: a vector drained front-to-back. `head` marks the next
/// unpopped item; the storage is reused (capacity retained) across wheel
/// rotations, so the steady state allocates nothing.
#[derive(Debug, Clone)]
struct Bucket<T> {
    items: Vec<T>,
    head: usize,
}

impl<T> Bucket<T> {
    fn live(&self) -> usize {
        self.items.len() - self.head
    }
}

impl<T: Timed> EventQueue<T> {
    /// Creates an empty queue with its floor at time `floor`.
    pub fn new(floor: u64) -> Self {
        EventQueue {
            wheel: (0..WHEEL_BUCKETS)
                .map(|_| Bucket {
                    items: Vec::new(),
                    head: 0,
                })
                .collect(),
            occupied: [0; BITMAP_WORDS],
            cursor: floor,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Total items queued.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's time floor: every queued item is scheduled at or after
    /// this time, and every future push must be too.
    pub fn floor(&self) -> u64 {
        self.cursor
    }

    #[inline]
    fn mark(&mut self, bucket: usize) {
        self.occupied[bucket / 64] |= 1u64 << (bucket % 64);
    }

    #[inline]
    fn unmark(&mut self, bucket: usize) {
        self.occupied[bucket / 64] &= !(1u64 << (bucket % 64));
    }

    /// Schedules `item`.
    ///
    /// Pushes must respect the floor (see the module docs); violations are
    /// caught by a debug assertion and would corrupt pop order in release
    /// builds.
    #[inline]
    pub fn push(&mut self, item: T) {
        let t = item.time();
        debug_assert!(
            t >= self.cursor,
            "push at {t} is before the queue floor {}",
            self.cursor
        );
        if t - self.cursor < WHEEL_BUCKETS as u64 {
            let b = (t % WHEEL_BUCKETS as u64) as usize;
            let bucket = &mut self.wheel[b];
            if bucket.head == bucket.items.len() {
                // Reuse the drained storage instead of shifting.
                bucket.items.clear();
                bucket.head = 0;
            }
            bucket.items.push(item);
            self.wheel_len += 1;
            self.mark(b);
        } else {
            self.overflow.push(Reverse(item));
        }
    }

    /// Moves overflow items that now fall inside the wheel window into their
    /// buckets. Heap pops come out in key order, so same-time items land in
    /// a bucket in that order — ahead of any later direct push, preserving
    /// bucket FIFO == sorted order.
    fn migrate(&mut self) {
        while let Some(Reverse(item)) = self.overflow.peek() {
            let t = item.time();
            if t - self.cursor >= WHEEL_BUCKETS as u64 {
                break;
            }
            let Some(Reverse(item)) = self.overflow.pop() else {
                unreachable!("peeked")
            };
            let b = (t % WHEEL_BUCKETS as u64) as usize;
            let bucket = &mut self.wheel[b];
            if bucket.head == bucket.items.len() {
                bucket.items.clear();
                bucket.head = 0;
            }
            bucket.items.push(item);
            self.wheel_len += 1;
            self.mark(b);
        }
    }

    /// Advances the cursor to the next non-empty bucket and returns its
    /// index, or `None` if the queue is empty. Amortized O(1): the cursor
    /// never revisits a time, and the bitmap skips empty buckets 64 at a
    /// step.
    fn seek(&mut self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        loop {
            if self.wheel_len == 0 {
                // Wheel drained: jump straight to the earliest far event.
                let Reverse(min) = self.overflow.peek().expect("len() > 0");
                self.cursor = min.time();
                self.migrate();
                continue;
            }
            let b = (self.cursor % WHEEL_BUCKETS as u64) as usize;
            if self.wheel[b].live() > 0 {
                return Some(b);
            }
            // Skip empty buckets with the bitmap: find the next set bit at
            // or after `b + 1`, in ring order from the cursor.
            let next = self.next_occupied(b).expect("wheel_len > 0");
            let delta = ((next + WHEEL_BUCKETS - b) % WHEEL_BUCKETS).max(1) as u64;
            self.cursor += delta;
            self.migrate();
        }
    }

    /// Index of the next occupied bucket strictly after `from` in ring
    /// order (wrapping), or `None` when the bitmap is empty.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let start = (from + 1) % WHEEL_BUCKETS;
        let mut word = start / 64;
        // Mask off bits below `start` in its word.
        let mut bits = self.occupied[word] & !((1u64 << (start % 64)) - 1);
        for _ in 0..=BITMAP_WORDS {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word = (word + 1) % BITMAP_WORDS;
            bits = self.occupied[word];
        }
        None
    }

    /// The earliest item, without removing it. Advances the internal scan
    /// cursor (never past the earliest item's time), which is harmless under
    /// the push contract.
    #[inline]
    pub fn peek(&mut self) -> Option<T> {
        let b = self.seek()?;
        let bucket = &self.wheel[b];
        Some(bucket.items[bucket.head])
    }

    /// Removes and returns the earliest item (ties broken by `Ord`, i.e. by
    /// sequence for the machine's events).
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        let b = self.seek()?;
        let bucket = &mut self.wheel[b];
        let item = bucket.items[bucket.head];
        bucket.head += 1;
        self.wheel_len -= 1;
        if bucket.head == bucket.items.len() {
            bucket.items.clear();
            bucket.head = 0;
            self.unmark(b);
        }
        debug_assert!(item.time() == self.cursor);
        Some(item)
    }

    /// Copies every queued item out, in no particular order (snapshotting
    /// sorts; see `Machine::snapshot`).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for bucket in &self.wheel {
            out.extend_from_slice(&bucket.items[bucket.head..]);
        }
        out.extend(self.overflow.iter().map(|Reverse(e)| *e));
        out
    }

    /// Rebuilds a queue from restored items with the floor at `floor`
    /// (the machine's current time). Items must all be scheduled at or
    /// after `floor`; order of `items` is irrelevant for correctness but
    /// sorted input reproduces bucket FIFO order directly.
    pub fn from_items(floor: u64, items: impl IntoIterator<Item = T>) -> Self {
        let mut q = EventQueue::new(floor);
        let mut sorted: Vec<T> = items.into_iter().collect();
        sorted.sort_unstable();
        for item in sorted {
            q.push(item);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `(time, seq)` pair, the machine's key shape.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Item(u64, u64);
    impl Timed for Item {
        fn time(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new(0);
        q.push(Item(5, 0));
        q.push(Item(3, 1));
        q.push(Item(5, 2));
        q.push(Item(3, 3));
        let order: Vec<Item> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![Item(3, 1), Item(3, 3), Item(5, 0), Item(5, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_events_overflow_and_come_back() {
        let mut q = EventQueue::new(0);
        q.push(Item(1_000_000, 0));
        q.push(Item(10, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(Item(10, 1)));
        // Wheel now empty; the cursor jumps to the overflow minimum.
        assert_eq!(q.peek(), Some(Item(1_000_000, 0)));
        assert_eq!(q.floor(), 1_000_000);
        assert_eq!(q.pop(), Some(Item(1_000_000, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_migration_preserves_seq_order() {
        let mut q = EventQueue::new(0);
        // Two same-time far events pushed out of seq order, plus a near one.
        q.push(Item(10_000, 7));
        q.push(Item(10_000, 3));
        q.push(Item(0, 1));
        assert_eq!(q.pop(), Some(Item(0, 1)));
        // Migration must deliver seq 3 before seq 7.
        assert_eq!(q.pop(), Some(Item(10_000, 3)));
        // A same-time push after migration keeps FIFO==sorted (higher seq).
        q.push(Item(10_000, 9));
        assert_eq!(q.pop(), Some(Item(10_000, 7)));
        assert_eq!(q.pop(), Some(Item(10_000, 9)));
    }

    #[test]
    fn wheel_wraps_across_many_rotations() {
        let mut q = EventQueue::new(0);
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut popped = Vec::new();
        for _ in 0..4 {
            q.push(Item(now + 1, seq));
            seq += 1;
        }
        for _ in 0..50_000 {
            let it = q.pop().expect("queue stays populated");
            assert!(it.0 >= now, "time must be monotone");
            now = it.0;
            popped.push(it);
            q.push(Item(now + 1 + (seq % 700), seq));
            seq += 1;
        }
        // Fully ordered.
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn to_vec_and_from_items_round_trip() {
        let mut q = EventQueue::new(0);
        for (i, &t) in [40u64, 2, 9000, 2, 40, 77].iter().enumerate() {
            q.push(Item(t, i as u64));
        }
        q.pop();
        let mut items = q.to_vec();
        items.sort_unstable();
        let mut rebuilt = EventQueue::from_items(2, items.clone());
        let a: Vec<Item> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<Item> = std::iter::from_fn(|| rebuilt.pop()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn peek_does_not_remove_and_matches_pop() {
        let mut q = EventQueue::new(0);
        q.push(Item(100, 0));
        q.push(Item(50, 1));
        assert_eq!(q.peek(), Some(Item(50, 1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(Item(50, 1)));
        assert_eq!(q.peek(), Some(Item(100, 0)));
        assert_eq!(q.pop(), Some(Item(100, 0)));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn push_at_floor_after_peek_is_legal() {
        let mut q = EventQueue::new(0);
        q.push(Item(500, 0));
        assert_eq!(q.peek(), Some(Item(500, 0)));
        assert_eq!(q.floor(), 500);
        // The machine posts at the popped event's time; pushing exactly at
        // the advanced floor must work.
        q.push(Item(500, 1));
        assert_eq!(q.pop(), Some(Item(500, 0)));
        assert_eq!(q.pop(), Some(Item(500, 1)));
    }

    #[test]
    fn exactly_horizon_boundary_goes_to_overflow() {
        let mut q = EventQueue::new(10);
        q.push(Item(10 + WHEEL_BUCKETS as u64 - 1, 0)); // last wheel slot
        q.push(Item(10 + WHEEL_BUCKETS as u64, 1)); // first overflow slot
        assert_eq!(q.pop(), Some(Item(10 + WHEEL_BUCKETS as u64 - 1, 0)));
        assert_eq!(q.pop(), Some(Item(10 + WHEEL_BUCKETS as u64, 1)));
    }
}
