//! Machine checkpoints: a stable binary snapshot encoding.
//!
//! The paper's methodology launches every measured run from a checkpoint
//! taken after warmup (§3.3: "identical initial conditions + small
//! perturbations"). This module provides the serialization substrate:
//!
//! * [`Snap`] — a hand-rolled, version-stable binary codec trait implemented
//!   by every state-holding simulator type. All integers are fixed-width
//!   little-endian, floats round-trip through their IEEE-754 bit patterns,
//!   and enums carry explicit tag bytes, so an encoding produced today
//!   decodes bit-identically forever (no `serde`, no layout dependence).
//! * [`Checkpoint`] — an opaque container for one encoded
//!   [`Machine`](crate::machine::Machine): a payload plus a content
//!   fingerprint, with a framed byte format ([`Checkpoint::to_bytes`] /
//!   [`Checkpoint::from_bytes`]) whose magic, version, length and
//!   fingerprint are all validated on load. A truncated or corrupted file
//!   is rejected with a [`CheckpointError`] instead of yielding a broken
//!   machine.
//!
//! Determinism contract: restoring a checkpoint and continuing must be
//! bit-identical to never having snapshotted. Every RNG stream, LRU clock,
//! predictor table and event-queue entry is therefore part of the encoding.

use std::collections::VecDeque;
use std::fmt;

use crate::ids::{BlockAddr, CpuId, LockId, ThreadId};

/// Magic bytes opening a framed checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"MTVARCKP";

/// Current encoding version. Bump when any [`Snap`] implementation changes
/// its wire format; old checkpoints are then rejected instead of misread.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The byte stream ended before the value was complete.
    Truncated,
    /// The framed header does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The encoding version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The stored fingerprint does not match the payload contents.
    FingerprintMismatch {
        /// Fingerprint recorded in the header.
        stored: u64,
        /// Fingerprint recomputed over the payload.
        actual: u64,
    },
    /// A decoded value was structurally invalid (bad enum tag, invalid
    /// UTF-8, trailing bytes, ...).
    Corrupt {
        /// Description of the inconsistency.
        what: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint data is truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version {found}")
            }
            CheckpointError::FingerprintMismatch { stored, actual } => write!(
                f,
                "checkpoint fingerprint mismatch (stored {stored:#018x}, actual {actual:#018x})"
            ),
            CheckpointError::Corrupt { what } => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for crate::SimError {
    fn from(e: CheckpointError) -> Self {
        crate::SimError::BadCheckpoint {
            what: e.to_string(),
        }
    }
}

/// Appends fixed-width little-endian values to a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Creates an empty encoder with `capacity` bytes pre-reserved. Machine
    /// snapshots know their rough size up front (the L2 arrays dominate);
    /// reserving once replaces the doubling-regrowth copies of a payload
    /// built from zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim (length is the caller's responsibility).
    #[inline]
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads fixed-width little-endian values back out of a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        self.take(n)
    }

    /// Asserts the whole buffer was consumed — trailing garbage means the
    /// encoding and decoding disagree on the schema.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] if bytes remain.
    pub fn finish(&self) -> Result<(), CheckpointError> {
        if self.remaining() != 0 {
            return Err(CheckpointError::Corrupt {
                what: format!("{} trailing byte(s) after decode", self.remaining()),
            });
        }
        Ok(())
    }
}

/// A type with a stable binary snapshot encoding.
///
/// Implementations must be exact inverses: `decode(encode(x)) == x` for
/// every reachable value, and the byte format must never change without a
/// [`CHECKPOINT_VERSION`] bump.
pub trait Snap: Sized {
    /// Appends this value's encoding to `enc`.
    fn encode_snap(&self, enc: &mut Encoder);

    /// Reads one value of this type from `dec`.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the stream is truncated or the bytes
    /// are not a valid encoding of this type.
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError>;
}

/// Implements [`Snap`] for a struct with named fields by encoding the listed
/// fields in order. Usable from dependent crates for their own state types
/// (the workload crates use it for generator state).
#[macro_export]
macro_rules! impl_snap {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::checkpoint::Snap for $ty {
            fn encode_snap(&self, enc: &mut $crate::checkpoint::Encoder) {
                $( $crate::checkpoint::Snap::encode_snap(&self.$field, enc); )+
            }
            fn decode_snap(
                dec: &mut $crate::checkpoint::Decoder<'_>,
            ) -> Result<Self, $crate::checkpoint::CheckpointError> {
                $( let $field = $crate::checkpoint::Snap::decode_snap(dec)?; )+
                Ok(Self { $($field),+ })
            }
        }
    };
}

impl Snap for u8 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        dec.get_u8()
    }
}

impl Snap for u16 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u16(*self);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        dec.get_u16()
    }
}

impl Snap for u32 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        dec.get_u32()
    }
}

impl Snap for u64 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        dec.get_u64()
    }
}

impl Snap for usize {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(*self as u64);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        usize::try_from(dec.get_u64()?).map_err(|_| CheckpointError::Corrupt {
            what: "usize value exceeds this platform's width".into(),
        })
    }
}

impl Snap for bool {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u8(u8::from(*self));
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid bool byte {b}"),
            }),
        }
    }
}

impl Snap for f64 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.to_bits());
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(f64::from_bits(dec.get_u64()?))
    }
}

impl Snap for String {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.len() as u64);
        enc.put_bytes(self.as_bytes());
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        let len = decode_len(dec)?;
        let bytes = dec.get_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Corrupt {
            what: "string is not valid UTF-8".into(),
        })
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode_snap(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode_snap(enc);
            }
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_snap(dec)?)),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid Option tag {b}"),
            }),
        }
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn encode_snap(&self, enc: &mut Encoder) {
        self.0.encode_snap(enc);
        self.1.encode_snap(enc);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok((A::decode_snap(dec)?, B::decode_snap(dec)?))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.len() as u64);
        for v in self {
            v.encode_snap(enc);
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        let len = decode_len(dec)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode_snap(dec)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.len() as u64);
        for v in self {
            v.encode_snap(enc);
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        let len = decode_len(dec)?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::decode_snap(dec)?);
        }
        Ok(out)
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn encode_snap(&self, enc: &mut Encoder) {
        for v in self {
            v.encode_snap(enc);
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode_snap(dec)?);
        }
        match <[T; N]>::try_from(out) {
            Ok(a) => Ok(a),
            Err(_) => unreachable!("vector was built with exactly N elements"),
        }
    }
}

/// Reads a container length, rejecting values that could not possibly fit in
/// the remaining bytes (every element encodes to at least one byte) so a
/// corrupted length cannot trigger a huge allocation.
fn decode_len(dec: &mut Decoder<'_>) -> Result<usize, CheckpointError> {
    let len = dec.get_u64()?;
    if len > dec.remaining() as u64 {
        return Err(CheckpointError::Truncated);
    }
    Ok(len as usize)
}

impl Snap for CpuId {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(CpuId(dec.get_u32()?))
    }
}

impl Snap for ThreadId {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(ThreadId(dec.get_u32()?))
    }
}

impl Snap for LockId {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(LockId(dec.get_u32()?))
    }
}

impl Snap for BlockAddr {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(BlockAddr(dec.get_u64()?))
    }
}

/// FNV-1a over `bytes`, finished with a splitmix diffusion step — the same
/// construction the fingerprint helpers in `mtvar-core` use, applied to a
/// checkpoint's payload to content-address it.
fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // splitmix64 finalizer for avalanche.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One serialized machine state: an opaque payload plus its content
/// fingerprint.
///
/// Produced by [`Machine::snapshot`](crate::machine::Machine::snapshot) and
/// consumed by [`Machine::restore`](crate::machine::Machine::restore).
/// The framed byte form ([`Checkpoint::to_bytes`]) is safe to persist:
/// [`Checkpoint::from_bytes`] re-verifies magic, version, length and
/// fingerprint, so a truncated or bit-flipped file is detected instead of
/// silently restoring a wrong machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    payload: Vec<u8>,
    fingerprint: u64,
}

impl Checkpoint {
    /// Wraps an encoded payload, computing its fingerprint.
    pub fn from_payload(payload: Vec<u8>) -> Self {
        let fingerprint = fingerprint_bytes(&payload);
        Checkpoint {
            payload,
            fingerprint,
        }
    }

    /// The encoded machine state.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Content fingerprint of the payload (FNV-1a + splitmix finalizer).
    /// Two checkpoints have the same fingerprint exactly when their encoded
    /// state is byte-identical.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty (never true for a real machine).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Serializes to the framed byte format:
    /// `magic(8) | version(4) | payload_len(8) | fingerprint(8) | payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.payload.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and validates the framed byte format.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the magic or version is wrong, the
    /// data is shorter than the recorded payload length (an interrupted
    /// write), trailing bytes follow the payload, or the recorded
    /// fingerprint does not match the payload (bit rot / corruption).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.get_bytes(8)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = dec.get_u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let payload_len = dec.get_u64()?;
        let stored = dec.get_u64()?;
        if payload_len > dec.remaining() as u64 {
            return Err(CheckpointError::Truncated);
        }
        let payload = dec.get_bytes(payload_len as usize)?.to_vec();
        dec.finish()?;
        let actual = fingerprint_bytes(&payload);
        if actual != stored {
            return Err(CheckpointError::FingerprintMismatch { stored, actual });
        }
        Ok(Checkpoint {
            payload,
            fingerprint: stored,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snap + PartialEq + fmt::Debug>(v: T) {
        let mut enc = Encoder::new();
        v.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = T::decode_snap(&mut dec).expect("decode");
        dec.finish().expect("fully consumed");
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(12345usize);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f64);
        round_trip(-0.0f64);
        round_trip(String::from("oltp"));
        round_trip(String::new());
    }

    #[test]
    fn nan_round_trips_bit_exact() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut enc = Encoder::new();
        v.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let back = f64::decode_snap(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn container_round_trips() {
        round_trip(Option::<u64>::None);
        round_trip(Some(42u64));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(VecDeque::from([ThreadId(1), ThreadId(9)]));
        round_trip([1u64, 2, 3, 4]);
        round_trip((0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn id_round_trips() {
        round_trip(CpuId(7));
        round_trip(ThreadId(31));
        round_trip(LockId(0));
        round_trip(BlockAddr(u64::MAX));
    }

    #[test]
    fn truncated_stream_errors() {
        let mut enc = Encoder::new();
        0xAABB_CCDDu32.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..2]);
        assert_eq!(u32::decode_snap(&mut dec), Err(CheckpointError::Truncated));
    }

    #[test]
    fn bad_tags_error() {
        let mut dec = Decoder::new(&[7]);
        assert!(matches!(
            bool::decode_snap(&mut dec),
            Err(CheckpointError::Corrupt { .. })
        ));
        let mut dec = Decoder::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(
            Option::<u64>::decode_snap(&mut dec),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn huge_corrupt_length_is_rejected_without_allocating() {
        // Length claims u64::MAX elements but only a few bytes follow.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        enc.put_u64(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            Vec::<u64>::decode_snap(&mut dec),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut enc = Encoder::new();
        1u8.encode_snap(&mut enc);
        2u8.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        u8::decode_snap(&mut dec).unwrap();
        assert!(matches!(dec.finish(), Err(CheckpointError::Corrupt { .. })));
    }

    #[test]
    fn checkpoint_frame_round_trips() {
        let ck = Checkpoint::from_payload(vec![1, 2, 3, 4, 5]);
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("valid frame");
        assert_eq!(ck, back);
        assert_eq!(back.len(), 5);
        assert!(!back.is_empty());
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = Checkpoint::from_payload(vec![1, 2, 3]);
        let b = Checkpoint::from_payload(vec![1, 2, 3]);
        let c = Checkpoint::from_payload(vec![1, 2, 4]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn frame_rejects_bad_magic_version_truncation_and_corruption() {
        let ck = Checkpoint::from_payload((0u8..64).collect());
        let good = ck.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            Checkpoint::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        );

        let mut bad_version = good.clone();
        bad_version[8] = 0xEE;
        assert!(matches!(
            Checkpoint::from_bytes(&bad_version),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));

        // An interrupted write: the file ends mid-payload.
        assert_eq!(
            Checkpoint::from_bytes(&good[..good.len() - 10]),
            Err(CheckpointError::Truncated)
        );

        // A flipped payload bit fails the fingerprint check.
        let mut corrupt = good.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(
            Checkpoint::from_bytes(&corrupt),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));

        // Trailing garbage after the payload is rejected too.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&trailing),
            Err(CheckpointError::Corrupt { .. })
        ));

        assert!(Checkpoint::from_bytes(&good).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        let e = CheckpointError::FingerprintMismatch {
            stored: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("mismatch"));
    }
}
