//! Machine checkpoints: a stable binary snapshot encoding.
//!
//! The paper's methodology launches every measured run from a checkpoint
//! taken after warmup (§3.3: "identical initial conditions + small
//! perturbations"). This module provides the serialization substrate:
//!
//! * [`Snap`] — a hand-rolled, version-stable binary codec trait implemented
//!   by every state-holding simulator type. All integers are fixed-width
//!   little-endian, floats round-trip through their IEEE-754 bit patterns,
//!   and enums carry explicit tag bytes, so an encoding produced today
//!   decodes bit-identically forever (no `serde`, no layout dependence).
//! * [`Checkpoint`] — an opaque container for one encoded
//!   [`Machine`](crate::machine::Machine): a payload plus a content
//!   fingerprint, with a framed byte format ([`Checkpoint::to_bytes`] /
//!   [`Checkpoint::from_bytes`]) whose magic, version, length and
//!   fingerprint are all validated on load. A truncated or corrupted file
//!   is rejected with a [`CheckpointError`] instead of yielding a broken
//!   machine.
//!
//! Determinism contract: restoring a checkpoint and continuing must be
//! bit-identical to never having snapshotted. Every RNG stream, LRU clock,
//! predictor table and event-queue entry is therefore part of the encoding.

use std::collections::VecDeque;
use std::fmt;

use crate::ids::{BlockAddr, CpuId, LockId, ThreadId};

/// Magic bytes opening a framed checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"MTVARCKP";

/// Current encoding version. Bump when any [`Snap`] implementation changes
/// its wire format; old checkpoints are then rejected instead of misread.
///
/// Version history:
///
/// * **1** — monolithic frame: `magic | version | payload_len | fingerprint
///   | payload`.
/// * **2** — sectioned frame: the header additionally carries a section
///   table (kind, length and per-section fingerprint for every
///   [`Section`] of the payload) plus a checksum over the whole header.
///   The *payload* bytes are unchanged from version 1 — sections are
///   offsets into the same byte stream — so payload fingerprints (and
///   everything derived from them: store keys, run seeds, golden
///   statistics) carry over without re-blessing. Only the framed on-disk
///   form changed, which is why the version bump rejects old spill files
///   instead of misreading their headers.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Why a checkpoint could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The byte stream ended before the value was complete.
    Truncated,
    /// The framed header does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The encoding version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The stored fingerprint does not match the payload contents.
    FingerprintMismatch {
        /// Fingerprint recorded in the header.
        stored: u64,
        /// Fingerprint recomputed over the payload.
        actual: u64,
    },
    /// A decoded value was structurally invalid (bad enum tag, invalid
    /// UTF-8, trailing bytes, ...).
    Corrupt {
        /// Description of the inconsistency.
        what: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint data is truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version {found}")
            }
            CheckpointError::FingerprintMismatch { stored, actual } => write!(
                f,
                "checkpoint fingerprint mismatch (stored {stored:#018x}, actual {actual:#018x})"
            ),
            CheckpointError::Corrupt { what } => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for crate::SimError {
    fn from(e: CheckpointError) -> Self {
        crate::SimError::BadCheckpoint {
            what: e.to_string(),
        }
    }
}

/// Appends fixed-width little-endian values to a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Creates an empty encoder with `capacity` bytes pre-reserved. Machine
    /// snapshots know their rough size up front (the L2 arrays dominate);
    /// reserving once replaces the doubling-regrowth copies of a payload
    /// built from zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Creates an encoder that writes into `buf`, reusing its capacity.
    /// The buffer is cleared first — this is the recycle-a-scratch-buffer
    /// constructor (`into_bytes` hands the buffer back), used by streaming
    /// writers that encode one frame after another into the same
    /// allocation.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Encoder { buf }
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim (length is the caller's responsibility).
    #[inline]
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads fixed-width little-endian values back out of a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Truncated`] past the end of the buffer.
    #[inline]
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        self.take(n)
    }

    /// Asserts the whole buffer was consumed — trailing garbage means the
    /// encoding and decoding disagree on the schema.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] if bytes remain.
    pub fn finish(&self) -> Result<(), CheckpointError> {
        if self.remaining() != 0 {
            return Err(CheckpointError::Corrupt {
                what: format!("{} trailing byte(s) after decode", self.remaining()),
            });
        }
        Ok(())
    }
}

/// A type with a stable binary snapshot encoding.
///
/// Implementations must be exact inverses: `decode(encode(x)) == x` for
/// every reachable value, and the byte format must never change without a
/// [`CHECKPOINT_VERSION`] bump.
pub trait Snap: Sized {
    /// Appends this value's encoding to `enc`.
    fn encode_snap(&self, enc: &mut Encoder);

    /// Reads one value of this type from `dec`.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the stream is truncated or the bytes
    /// are not a valid encoding of this type.
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError>;

    /// Upper estimate of this value's encoded size in bytes, used to seed
    /// encoder capacity so snapshot encoding never regrows its buffer
    /// mid-encode (gated by the alloc-budget suite). Estimates must err
    /// high, never low; the default generously covers small fixed-size
    /// values (hand-written enum encodings), and containers sum their
    /// elements. [`impl_snap!`](crate::impl_snap) derives it as the sum of
    /// the field hints.
    fn snap_size_hint(&self) -> usize {
        64
    }
}

/// Implements [`Snap`] for a struct with named fields by encoding the listed
/// fields in order. Usable from dependent crates for their own state types
/// (the workload crates use it for generator state).
#[macro_export]
macro_rules! impl_snap {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::checkpoint::Snap for $ty {
            fn encode_snap(&self, enc: &mut $crate::checkpoint::Encoder) {
                $( $crate::checkpoint::Snap::encode_snap(&self.$field, enc); )+
            }
            fn decode_snap(
                dec: &mut $crate::checkpoint::Decoder<'_>,
            ) -> ::std::result::Result<Self, $crate::checkpoint::CheckpointError> {
                $( let $field = $crate::checkpoint::Snap::decode_snap(dec)?; )+
                Ok(Self { $($field),+ })
            }
            fn snap_size_hint(&self) -> usize {
                0 $( + $crate::checkpoint::Snap::snap_size_hint(&self.$field) )+
            }
        }
    };
}

impl Snap for u8 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        dec.get_u8()
    }
    fn snap_size_hint(&self) -> usize {
        1
    }
}

impl Snap for u16 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u16(*self);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        dec.get_u16()
    }
    fn snap_size_hint(&self) -> usize {
        2
    }
}

impl Snap for u32 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        dec.get_u32()
    }
    fn snap_size_hint(&self) -> usize {
        4
    }
}

impl Snap for u64 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        dec.get_u64()
    }
    fn snap_size_hint(&self) -> usize {
        8
    }
}

impl Snap for usize {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(*self as u64);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        usize::try_from(dec.get_u64()?).map_err(|_| CheckpointError::Corrupt {
            what: "usize value exceeds this platform's width".into(),
        })
    }
    fn snap_size_hint(&self) -> usize {
        8
    }
}

impl Snap for bool {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u8(u8::from(*self));
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid bool byte {b}"),
            }),
        }
    }
    fn snap_size_hint(&self) -> usize {
        1
    }
}

impl Snap for f64 {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.to_bits());
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(f64::from_bits(dec.get_u64()?))
    }
    fn snap_size_hint(&self) -> usize {
        8
    }
}

impl Snap for String {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.len() as u64);
        enc.put_bytes(self.as_bytes());
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        let len = decode_len(dec)?;
        let bytes = dec.get_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Corrupt {
            what: "string is not valid UTF-8".into(),
        })
    }
    fn snap_size_hint(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode_snap(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode_snap(enc);
            }
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_snap(dec)?)),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid Option tag {b}"),
            }),
        }
    }
    fn snap_size_hint(&self) -> usize {
        1 + self.as_ref().map_or(0, Snap::snap_size_hint)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn encode_snap(&self, enc: &mut Encoder) {
        self.0.encode_snap(enc);
        self.1.encode_snap(enc);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok((A::decode_snap(dec)?, B::decode_snap(dec)?))
    }
    fn snap_size_hint(&self) -> usize {
        self.0.snap_size_hint() + self.1.snap_size_hint()
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.len() as u64);
        for v in self {
            v.encode_snap(enc);
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        let len = decode_len(dec)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode_snap(dec)?);
        }
        Ok(out)
    }
    fn snap_size_hint(&self) -> usize {
        8 + self.iter().map(Snap::snap_size_hint).sum::<usize>()
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.len() as u64);
        for v in self {
            v.encode_snap(enc);
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        let len = decode_len(dec)?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::decode_snap(dec)?);
        }
        Ok(out)
    }
    fn snap_size_hint(&self) -> usize {
        8 + self.iter().map(Snap::snap_size_hint).sum::<usize>()
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn encode_snap(&self, enc: &mut Encoder) {
        for v in self {
            v.encode_snap(enc);
        }
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode_snap(dec)?);
        }
        match <[T; N]>::try_from(out) {
            Ok(a) => Ok(a),
            Err(_) => unreachable!("vector was built with exactly N elements"),
        }
    }
    fn snap_size_hint(&self) -> usize {
        self.iter().map(Snap::snap_size_hint).sum()
    }
}

/// Reads a container length, rejecting values that could not possibly fit in
/// the remaining bytes (every element encodes to at least one byte) so a
/// corrupted length cannot trigger a huge allocation.
fn decode_len(dec: &mut Decoder<'_>) -> Result<usize, CheckpointError> {
    let len = dec.get_u64()?;
    if len > dec.remaining() as u64 {
        return Err(CheckpointError::Truncated);
    }
    Ok(len as usize)
}

impl Snap for CpuId {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(CpuId(dec.get_u32()?))
    }
    fn snap_size_hint(&self) -> usize {
        4
    }
}

impl Snap for ThreadId {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(ThreadId(dec.get_u32()?))
    }
    fn snap_size_hint(&self) -> usize {
        4
    }
}

impl Snap for LockId {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(LockId(dec.get_u32()?))
    }
    fn snap_size_hint(&self) -> usize {
        4
    }
}

impl Snap for BlockAddr {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
    fn decode_snap(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(BlockAddr(dec.get_u64()?))
    }
    fn snap_size_hint(&self) -> usize {
        8
    }
}

/// FNV-1a offset basis (the running-state seed for [`fnv1a_update`]).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Folds `bytes` into a running FNV-1a state. Resumable: hashing a
/// concatenation equals chaining updates, which is what lets
/// [`SectionEncoder::finish`] compute the whole-payload fingerprint
/// alongside the per-section ones in a single traversal.
#[inline]
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Finishes an FNV-1a state with a splitmix64 diffusion step for avalanche.
#[inline]
fn fnv_finish(h: u64) -> u64 {
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over `bytes`, finished with a splitmix diffusion step — the same
/// construction the fingerprint helpers in `mtvar-core` use, applied to a
/// checkpoint's payload to content-address it.
fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    fnv_finish(fnv1a_update(FNV_OFFSET, bytes))
}

/// Identifies one section of a sectioned checkpoint payload. The order of
/// sections in a machine snapshot is fixed (see
/// [`Machine::snapshot`](crate::machine::Machine::snapshot)): `Meta`,
/// `Cpus`, `MemHeader`, one `MemNode` per node, `MemShared`, `Sched`,
/// `Workload`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SectionKind {
    /// Machine config, clock, sequence counter and the sorted event queue.
    Meta,
    /// All processor cores (pipelines, predictors, per-CPU accounting).
    Cpus,
    /// Memory-system configuration and the node count.
    MemHeader,
    /// One node's cache stack (L1I, L1D, L2) — the payload's dominant
    /// sections, and the unit of copy-on-write sharing between forks.
    MemNode(u32),
    /// Memory-system tail: bus/occupancy timing, perturbation RNG, stats.
    MemShared,
    /// Scheduler, lock table, noise model and invariant monitor.
    Sched,
    /// Workload generators and commit accounting.
    Workload,
}

impl SectionKind {
    fn wire(self) -> (u8, u32) {
        match self {
            SectionKind::Meta => (0, 0),
            SectionKind::Cpus => (1, 0),
            SectionKind::MemHeader => (2, 0),
            SectionKind::MemNode(i) => (3, i),
            SectionKind::MemShared => (4, 0),
            SectionKind::Sched => (5, 0),
            SectionKind::Workload => (6, 0),
        }
    }

    fn from_wire(tag: u8, index: u32) -> Result<Self, CheckpointError> {
        let kind = match (tag, index) {
            (0, 0) => SectionKind::Meta,
            (1, 0) => SectionKind::Cpus,
            (2, 0) => SectionKind::MemHeader,
            (3, i) => SectionKind::MemNode(i),
            (4, 0) => SectionKind::MemShared,
            (5, 0) => SectionKind::Sched,
            (6, 0) => SectionKind::Workload,
            _ => {
                return Err(CheckpointError::Corrupt {
                    what: format!("section kind tag {tag}/{index}"),
                })
            }
        };
        Ok(kind)
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionKind::Meta => write!(f, "Meta"),
            SectionKind::Cpus => write!(f, "Cpus"),
            SectionKind::MemHeader => write!(f, "MemHeader"),
            SectionKind::MemNode(i) => write!(f, "MemNode({i})"),
            SectionKind::MemShared => write!(f, "MemShared"),
            SectionKind::Sched => write!(f, "Sched"),
            SectionKind::Workload => write!(f, "Workload"),
        }
    }
}

/// One contiguous, individually fingerprinted range of a checkpoint payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// What machine state the range holds.
    pub kind: SectionKind,
    /// Byte offset of the section's first byte within the payload.
    pub start: usize,
    /// Section length in bytes.
    pub len: usize,
    /// Content fingerprint of exactly this range (same construction as the
    /// whole-payload fingerprint).
    pub fingerprint: u64,
}

/// Wire size of one section-table entry in the framed format:
/// `tag(1) | index(4) | len(8) | fingerprint(8)`.
const SECTION_ENTRY_BYTES: usize = 21;

/// Sanity cap on the section count a frame may declare: `Meta` + `Cpus` +
/// `MemHeader` + `MemShared` + `Sched` + `Workload` + one node per CPU.
/// No machine we build approaches 2^20 nodes, so anything larger is a
/// corrupt header, rejected before it can size an allocation.
const MAX_SECTIONS: usize = (1 << 20) + 8;

/// An [`Encoder`] that records section boundaries as it goes: callers mark
/// the start of each logical region with [`SectionEncoder::begin`], append
/// bytes through [`SectionEncoder::enc`], and [`SectionEncoder::finish`]
/// closes the table and fingerprints every section. The byte stream produced
/// is exactly what the same `encode_snap` calls would feed a bare
/// [`Encoder`] — marking boundaries adds table entries, never bytes — which
/// is what keeps sectioned payloads (and their fingerprints) identical to
/// the pre-section encoding.
#[derive(Debug)]
pub struct SectionEncoder {
    enc: Encoder,
    sections: Vec<Section>,
    open: Option<(SectionKind, usize)>,
}

impl SectionEncoder {
    /// Creates an encoder with `capacity` payload bytes and room for
    /// `sections` table entries pre-reserved (machine snapshots know both up
    /// front, keeping encode free of regrowth).
    pub fn with_capacity(capacity: usize, sections: usize) -> Self {
        SectionEncoder {
            enc: Encoder::with_capacity(capacity),
            sections: Vec::with_capacity(sections),
            open: None,
        }
    }

    /// Closes the current section (if any) and opens a new one of `kind` at
    /// the current byte offset.
    pub fn begin(&mut self, kind: SectionKind) {
        self.close_open();
        self.open = Some((kind, self.enc.len()));
    }

    /// The underlying byte encoder; everything appended lands in the
    /// section most recently opened with [`SectionEncoder::begin`].
    pub fn enc(&mut self) -> &mut Encoder {
        &mut self.enc
    }

    fn close_open(&mut self) {
        if let Some((kind, start)) = self.open.take() {
            self.sections.push(Section {
                kind,
                start,
                len: self.enc.len() - start,
                fingerprint: 0,
            });
        }
    }

    /// Closes the table, fingerprints every section and the whole payload,
    /// and returns the finished [`Checkpoint`].
    pub fn finish(mut self) -> Checkpoint {
        self.close_open();
        let payload = self.enc.into_bytes();
        // One traversal computes every fingerprint: each byte feeds two
        // independent FNV chains (its section's and the whole payload's).
        // The chains carry no data dependency on each other, so the CPU
        // overlaps their serial multiply chains and the fused pass costs
        // barely more than one — where hashing a multi-megabyte payload
        // twice costs double.
        let mut whole = FNV_OFFSET;
        let mut cursor = 0usize;
        for s in &mut self.sections {
            // Bytes between sections (none in practice: `begin` is called
            // before the first byte and sections abut) still feed the
            // whole-payload chain.
            whole = fnv1a_update(whole, &payload[cursor..s.start]);
            let mut sec = FNV_OFFSET;
            for &b in &payload[s.start..s.start + s.len] {
                sec ^= u64::from(b);
                sec = sec.wrapping_mul(FNV_PRIME);
                whole ^= u64::from(b);
                whole = whole.wrapping_mul(FNV_PRIME);
            }
            s.fingerprint = fnv_finish(sec);
            cursor = s.start + s.len;
        }
        whole = fnv1a_update(whole, &payload[cursor..]);
        Checkpoint {
            payload,
            fingerprint: fnv_finish(whole),
            sections: self.sections,
        }
    }
}

/// Sequential reader over a sectioned checkpoint: each
/// [`SectionReader::expect`] demands the next section be of a given kind and
/// hands back a [`Decoder`] scoped to exactly that section's bytes, so a
/// decode overrun in one component is caught at its own boundary (with the
/// section named) instead of silently consuming its neighbour's bytes.
#[derive(Debug)]
pub struct SectionReader<'a> {
    ck: &'a Checkpoint,
    next: usize,
}

impl<'a> SectionReader<'a> {
    /// Positions a reader at `ck`'s first section.
    pub fn new(ck: &'a Checkpoint) -> Self {
        SectionReader { ck, next: 0 }
    }

    /// Number of sections not yet consumed.
    pub fn remaining(&self) -> usize {
        self.ck.sections.len() - self.next
    }

    /// The kind of the next section, if any (for data-dependent layouts
    /// like the per-node memory sections).
    pub fn peek(&self) -> Option<SectionKind> {
        self.ck.sections.get(self.next).map(|s| s.kind)
    }

    /// Opens the next section, requiring it to be `kind`; returns a decoder
    /// over exactly its bytes. The caller must fully consume it (checked
    /// with [`Decoder::finish`]).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] when sections are exhausted or
    /// the next section is of a different kind.
    pub fn expect(&mut self, kind: SectionKind) -> Result<Decoder<'a>, CheckpointError> {
        let Some(s) = self.ck.sections.get(self.next) else {
            return Err(CheckpointError::Corrupt {
                what: format!("missing section {kind}"),
            });
        };
        if s.kind != kind {
            return Err(CheckpointError::Corrupt {
                what: format!("expected section {kind}, found {}", s.kind),
            });
        }
        self.next += 1;
        Ok(Decoder::new(&self.ck.payload[s.start..s.start + s.len]))
    }

    /// Asserts every section was consumed.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] if sections remain.
    pub fn finish(&self) -> Result<(), CheckpointError> {
        if self.remaining() != 0 {
            return Err(CheckpointError::Corrupt {
                what: format!("{} unread trailing section(s)", self.remaining()),
            });
        }
        Ok(())
    }
}

/// One serialized machine state: an opaque payload plus its content
/// fingerprint and (for machine snapshots) a table of [`Section`]s over the
/// payload.
///
/// Produced by [`Machine::snapshot`](crate::machine::Machine::snapshot) and
/// consumed by [`Machine::restore`](crate::machine::Machine::restore).
/// The framed byte form ([`Checkpoint::to_bytes`]) is safe to persist:
/// [`Checkpoint::from_bytes`] re-verifies magic, version, header checksum,
/// length, the whole-payload fingerprint and every per-section fingerprint,
/// so a truncated or bit-flipped file — in header or payload — is detected
/// instead of silently restoring a wrong machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    payload: Vec<u8>,
    fingerprint: u64,
    sections: Vec<Section>,
}

impl Checkpoint {
    /// Wraps an encoded payload, computing its fingerprint. The checkpoint
    /// carries no section table (callers that want one use
    /// [`SectionEncoder`]); decode falls back to one linear pass.
    pub fn from_payload(payload: Vec<u8>) -> Self {
        let fingerprint = fingerprint_bytes(&payload);
        Checkpoint {
            payload,
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// The encoded machine state.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Content fingerprint of the payload (FNV-1a + splitmix finalizer).
    /// Two checkpoints have the same fingerprint exactly when their encoded
    /// state is byte-identical. Independent of the section table — a
    /// sectioned and an unsectioned checkpoint over the same bytes
    /// fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The section table (empty for [`Checkpoint::from_payload`]
    /// checkpoints). Sections tile the payload exactly, in order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty (never true for a real machine).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Serializes to the framed byte format:
    ///
    /// ```text
    /// magic(8) | version(4) | payload_len(8) | payload_fingerprint(8)
    ///   | section_count(4) | section entries (21 bytes each)
    ///   | header_checksum(8) | payload
    /// ```
    ///
    /// The header checksum fingerprints every header byte before it, so a
    /// flipped bit in the section table (or the lengths) is caught on load
    /// without consulting the payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let header_len = 32 + self.sections.len() * SECTION_ENTRY_BYTES + 8;
        let mut out = Vec::with_capacity(header_len + self.payload.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            let (tag, index) = s.kind.wire();
            out.push(tag);
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&(s.len as u64).to_le_bytes());
            out.extend_from_slice(&s.fingerprint.to_le_bytes());
        }
        let header_checksum = fingerprint_bytes(&out);
        out.extend_from_slice(&header_checksum.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and validates the framed byte format.
    ///
    /// Validation is layered so any single corruption is caught by at least
    /// one check: magic and version first; the header checksum (covering
    /// lengths and the section table); the payload length against the bytes
    /// actually present (an interrupted write) and against `usize` (so a
    /// wrapped length cannot mis-slice on 32-bit targets); the
    /// whole-payload fingerprint; and finally every section's own
    /// fingerprint over its recorded range, which localizes payload damage
    /// to a named section.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] describing the first failed check.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.get_bytes(8)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = dec.get_u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let payload_len = dec.get_u64()?;
        // Reject lengths that do not fit in this platform's usize *before*
        // any cast — `payload_len as usize` would silently truncate on
        // 32-bit targets and slice the wrong range.
        let payload_len: usize = payload_len
            .try_into()
            .map_err(|_| CheckpointError::Corrupt {
                what: format!("payload length {payload_len} exceeds this platform's usize"),
            })?;
        let stored = dec.get_u64()?;
        let section_count = dec.get_u32()? as usize;
        if section_count > MAX_SECTIONS {
            return Err(CheckpointError::Corrupt {
                what: format!("section count {section_count}"),
            });
        }
        let mut sections = Vec::with_capacity(section_count);
        let mut start = 0usize;
        for _ in 0..section_count {
            let tag = dec.get_u8()?;
            let index = dec.get_u32()?;
            let kind = SectionKind::from_wire(tag, index)?;
            let len: usize = dec
                .get_u64()?
                .try_into()
                .map_err(|_| CheckpointError::Corrupt {
                    what: format!("section {kind} length exceeds this platform's usize"),
                })?;
            let fingerprint = dec.get_u64()?;
            sections.push(Section {
                kind,
                start,
                len,
                fingerprint,
            });
            start = start
                .checked_add(len)
                .filter(|&end| end <= payload_len)
                .ok_or_else(|| CheckpointError::Corrupt {
                    what: format!("section {kind} overruns the payload"),
                })?;
        }
        if section_count > 0 && start != payload_len {
            return Err(CheckpointError::Corrupt {
                what: format!("section table covers {start} of {payload_len} payload byte(s)"),
            });
        }
        // The checksum fingerprints every header byte before itself, so a
        // corrupted length or table entry is caught here even when the
        // payload bytes are intact.
        let header_end = bytes.len() - dec.remaining();
        let header_checksum = dec.get_u64()?;
        let actual_checksum = fingerprint_bytes(&bytes[..header_end]);
        if header_checksum != actual_checksum {
            return Err(CheckpointError::Corrupt {
                what: "header checksum mismatch".into(),
            });
        }
        if payload_len > dec.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let payload = dec.get_bytes(payload_len)?.to_vec();
        dec.finish()?;
        let actual = fingerprint_bytes(&payload);
        if actual != stored {
            return Err(CheckpointError::FingerprintMismatch { stored, actual });
        }
        for s in &sections {
            let actual = fingerprint_bytes(&payload[s.start..s.start + s.len]);
            if actual != s.fingerprint {
                return Err(CheckpointError::Corrupt {
                    what: format!("section {} fingerprint mismatch", s.kind),
                });
            }
        }
        Ok(Checkpoint {
            payload,
            fingerprint: stored,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snap + PartialEq + fmt::Debug>(v: T) {
        let mut enc = Encoder::new();
        v.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = T::decode_snap(&mut dec).expect("decode");
        dec.finish().expect("fully consumed");
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(12345usize);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f64);
        round_trip(-0.0f64);
        round_trip(String::from("oltp"));
        round_trip(String::new());
    }

    #[test]
    fn nan_round_trips_bit_exact() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut enc = Encoder::new();
        v.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let back = f64::decode_snap(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn container_round_trips() {
        round_trip(Option::<u64>::None);
        round_trip(Some(42u64));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(VecDeque::from([ThreadId(1), ThreadId(9)]));
        round_trip([1u64, 2, 3, 4]);
        round_trip((0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn id_round_trips() {
        round_trip(CpuId(7));
        round_trip(ThreadId(31));
        round_trip(LockId(0));
        round_trip(BlockAddr(u64::MAX));
    }

    #[test]
    fn truncated_stream_errors() {
        let mut enc = Encoder::new();
        0xAABB_CCDDu32.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..2]);
        assert_eq!(u32::decode_snap(&mut dec), Err(CheckpointError::Truncated));
    }

    #[test]
    fn bad_tags_error() {
        let mut dec = Decoder::new(&[7]);
        assert!(matches!(
            bool::decode_snap(&mut dec),
            Err(CheckpointError::Corrupt { .. })
        ));
        let mut dec = Decoder::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(
            Option::<u64>::decode_snap(&mut dec),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn huge_corrupt_length_is_rejected_without_allocating() {
        // Length claims u64::MAX elements but only a few bytes follow.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        enc.put_u64(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            Vec::<u64>::decode_snap(&mut dec),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut enc = Encoder::new();
        1u8.encode_snap(&mut enc);
        2u8.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        u8::decode_snap(&mut dec).unwrap();
        assert!(matches!(dec.finish(), Err(CheckpointError::Corrupt { .. })));
    }

    #[test]
    fn checkpoint_frame_round_trips() {
        let ck = Checkpoint::from_payload(vec![1, 2, 3, 4, 5]);
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("valid frame");
        assert_eq!(ck, back);
        assert_eq!(back.len(), 5);
        assert!(!back.is_empty());
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = Checkpoint::from_payload(vec![1, 2, 3]);
        let b = Checkpoint::from_payload(vec![1, 2, 3]);
        let c = Checkpoint::from_payload(vec![1, 2, 4]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn frame_rejects_bad_magic_version_truncation_and_corruption() {
        let ck = Checkpoint::from_payload((0u8..64).collect());
        let good = ck.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            Checkpoint::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        );

        let mut bad_version = good.clone();
        bad_version[8] = 0xEE;
        assert!(matches!(
            Checkpoint::from_bytes(&bad_version),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));

        // An interrupted write: the file ends mid-payload.
        assert_eq!(
            Checkpoint::from_bytes(&good[..good.len() - 10]),
            Err(CheckpointError::Truncated)
        );

        // A flipped payload bit fails the fingerprint check.
        let mut corrupt = good.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(
            Checkpoint::from_bytes(&corrupt),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));

        // Trailing garbage after the payload is rejected too.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&trailing),
            Err(CheckpointError::Corrupt { .. })
        ));

        assert!(Checkpoint::from_bytes(&good).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        let e = CheckpointError::FingerprintMismatch {
            stored: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("mismatch"));
    }
}
