//! Small, serializable, version-stable pseudo-random number generators.
//!
//! Determinism is load-bearing in this crate: the paper's methodology
//! (§3.3) requires that a run be an exact function of `(configuration,
//! workload seed, perturbation seed)`, and checkpointing requires that the
//! *entire* machine state — including generator state — round-trip through
//! serialization. `rand::StdRng` guarantees neither (its algorithm may change
//! between `rand` versions and it is not serializable), so we carry our own
//! [`SplitMix64`] (seeding) and [`Xoshiro256StarStar`] (simulation streams).

/// SplitMix64: a tiny 64-bit generator used to expand one `u64` seed into the
/// 256-bit state of [`Xoshiro256StarStar`], and as a cheap standalone stream
/// where statistical quality demands are low.
///
/// # Example
///
/// ```
/// use mtvar_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator for workload streams and timing
/// perturbations. Fast, tiny state, excellent statistical quality, and the
/// algorithm is pinned in this crate so checkpoints stay replayable forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` through [`SplitMix64`]
    /// (the initialization recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Derives an independent child generator, e.g. one stream per thread
    /// from a single workload seed.
    pub fn fork(&mut self, stream: u64) -> Self {
        let a = self.next_u64();
        Xoshiro256StarStar::new(a ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` by Lemire's multiply-shift reduction
    /// (unbiased enough for simulation purposes; the modulo bias of a plain
    /// `%` would be ≤ 2⁻⁴⁰ here anyway, but this is also faster).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires bound > 0");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range requires lo <= hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an index from a discrete cumulative weight table.
    ///
    /// `cumulative` must be non-decreasing with a positive last element;
    /// returns an index in `[0, cumulative.len())`.
    ///
    /// # Panics
    ///
    /// Panics if `cumulative` is empty or its last element is not positive.
    pub fn next_weighted(&mut self, cumulative: &[u32]) -> usize {
        let total = *cumulative
            .last()
            .expect("cumulative table must be non-empty");
        assert!(total > 0, "cumulative weights must end positive");
        let x = self.next_below(u64::from(total)) as u32;
        cumulative
            .iter()
            .position(|&c| x < c)
            .expect("cumulative table is non-decreasing")
    }

    /// Geometric-ish burst length: `1 + floor(-mean * ln(u))` truncated to
    /// `max`, used for compute-burst sizing in workload generators.
    pub fn next_burst(&mut self, mean: f64, max: u64) -> u64 {
        let u = self.next_f64().max(1e-12);
        let v = 1.0 + (-(mean) * u.ln());
        (v as u64).clamp(1, max)
    }
}

crate::impl_snap!(SplitMix64 { state });
crate::impl_snap!(Xoshiro256StarStar { s });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut g = SplitMix64::new(0);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // Stability check: pin the first output for seed 0 so accidental
        // algorithm changes fail loudly (checkpoint compatibility).
        assert_eq!(a, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        let mut c = Xoshiro256StarStar::new(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = Xoshiro256StarStar::new(7);
        let mut t0 = root.fork(0);
        let mut t1 = root.fork(1);
        let v0: Vec<u64> = (0..8).map(|_| t0.next_u64()).collect();
        let v1: Vec<u64> = (0..8).map(|_| t1.next_u64()).collect();
        assert_ne!(v0, v1);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut g = Xoshiro256StarStar::new(99);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = g.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_range_inclusive_bounds() {
        let mut g = Xoshiro256StarStar::new(5);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let v = g.next_range(3, 6);
            assert!((3..=6).contains(&v));
            hit_lo |= v == 3;
            hit_hi |= v == 6;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn next_f64_in_unit_interval_with_reasonable_mean() {
        let mut g = Xoshiro256StarStar::new(11);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn next_weighted_respects_weights() {
        let mut g = Xoshiro256StarStar::new(1);
        // Weights 45/43/4/4/4 like the TPC-C mix; cumulative form.
        let cum = [45u32, 88, 92, 96, 100];
        let mut counts = [0usize; 5];
        for _ in 0..100_000 {
            counts[g.next_weighted(&cum)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.45).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.43).abs() < 0.01);
        assert!(counts[2] > 3000 && counts[2] < 5000);
    }

    #[test]
    fn next_bool_probability() {
        let mut g = Xoshiro256StarStar::new(3);
        let hits = (0..50_000).filter(|_| g.next_bool(0.2)).count();
        assert!((hits as f64 / 50_000.0 - 0.2).abs() < 0.01);
    }

    #[test]
    fn next_burst_bounds() {
        let mut g = Xoshiro256StarStar::new(8);
        for _ in 0..1000 {
            let v = g.next_burst(20.0, 100);
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    fn copied_state_preserves_stream() {
        // Checkpointing relies on state copies resuming the exact stream.
        let mut g = Xoshiro256StarStar::new(77);
        g.next_u64();
        let mut h = g;
        for _ in 0..32 {
            assert_eq!(g.next_u64(), h.next_u64());
        }
    }
}
