//! Per-run measurement results.

use crate::ids::Cycle;
use crate::mem::MemStats;
use crate::proc::ProcStats;
use crate::sched::{SchedEvent, SchedStats};
use crate::sync::LockStats;

/// Everything measured over one simulation run (one measurement interval).
///
/// The headline number is [`RunResult::cycles_per_transaction`] — the paper's
/// §3.1 metric: simulated time to finish a fixed number of transactions,
/// divided by that number.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunResult {
    /// Cycle at which measurement began.
    pub start_cycle: Cycle,
    /// Cycle of the final transaction commit.
    pub end_cycle: Cycle,
    /// Transactions committed inside the interval.
    pub transactions: u64,
    /// Absolute commit time of each transaction, in order.
    pub commit_cycles: Vec<Cycle>,
    /// Memory-system counters over the interval.
    pub mem: MemStats,
    /// Aggregated processor counters over the interval.
    pub proc: ProcStats,
    /// Lock counters over the interval.
    pub locks: LockStats,
    /// Scheduler counters over the interval.
    pub sched: SchedStats,
    /// Scheduling-event log (empty unless recording was enabled).
    pub sched_events: Vec<SchedEvent>,
    /// Total ns the CPUs spent executing (vs idle), summed over CPUs.
    pub cpu_busy_ns: u64,
    /// Number of CPUs in the machine (for utilization).
    pub cpus: usize,
}

impl RunResult {
    /// Elapsed simulated time of the interval.
    pub fn elapsed(&self) -> Cycle {
        self.end_cycle - self.start_cycle
    }

    /// The paper's cycles-per-transaction metric.
    ///
    /// Returns NaN if no transactions committed.
    pub fn cycles_per_transaction(&self) -> f64 {
        if self.transactions == 0 {
            f64::NAN
        } else {
            self.elapsed() as f64 / self.transactions as f64
        }
    }

    /// Mean CPU utilization over the interval: busy time divided by
    /// `cpus × elapsed`. Exceeds neither 1 nor the truth by much — pipeline
    /// drains and stalls count as busy, idle waiting for work does not.
    pub fn cpu_utilization(&self) -> f64 {
        let denom = (self.cpus as u64 * self.elapsed()) as f64;
        if denom == 0.0 {
            0.0
        } else {
            (self.cpu_busy_ns as f64 / denom).min(1.0)
        }
    }

    /// Cycles-per-transaction over a sub-window `[i, j)` of the commit
    /// sequence (used for the Figure-8 time-variability series). Window `i`
    /// is measured from the previous commit (or interval start for `i = 0`).
    ///
    /// Returns `None` when the window is empty or out of range.
    pub fn window_cycles_per_transaction(&self, i: usize, j: usize) -> Option<f64> {
        if i >= j || j > self.commit_cycles.len() {
            return None;
        }
        let start = if i == 0 {
            self.start_cycle
        } else {
            self.commit_cycles[i - 1]
        };
        let end = self.commit_cycles[j - 1];
        Some((end - start) as f64 / (j - i) as f64)
    }
}

// Stable binary encoding so completed measurements can be spilled to disk
// (the run-result cache) and replayed across processes. Every field is
// covered — including the full commit-cycle vector and the observational
// sched-event log — so a decoded result is indistinguishable from the
// original, and the golden digest of a round-tripped result is unchanged.
crate::impl_snap!(RunResult {
    start_cycle,
    end_cycle,
    transactions,
    commit_cycles,
    mem,
    proc,
    locks,
    sched,
    sched_events,
    cpu_busy_ns,
    cpus,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{Decoder, Encoder, Snap};

    fn result() -> RunResult {
        RunResult {
            start_cycle: 1000,
            end_cycle: 5000,
            transactions: 4,
            commit_cycles: vec![2000, 3000, 4000, 5000],
            mem: MemStats::default(),
            proc: ProcStats::default(),
            locks: LockStats::default(),
            sched: SchedStats::default(),
            sched_events: Vec::new(),
            cpu_busy_ns: 3000,
            cpus: 2,
        }
    }

    #[test]
    fn cycles_per_transaction() {
        let r = result();
        assert_eq!(r.elapsed(), 4000);
        assert!((r.cycles_per_transaction() - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_nan() {
        let mut r = result();
        r.transactions = 0;
        assert!(r.cycles_per_transaction().is_nan());
    }

    #[test]
    fn utilization_is_bounded() {
        let r = result();
        // 3000 busy ns over 2 cpus x 4000 cycles.
        assert!((r.cpu_utilization() - 3000.0 / 8000.0).abs() < 1e-12);
        let mut z = result();
        z.end_cycle = z.start_cycle;
        assert_eq!(z.cpu_utilization(), 0.0);
    }

    #[test]
    fn snap_round_trip_is_exact() {
        let mut r = result();
        r.mem.l2_misses = 9;
        r.proc.instructions = 1234;
        r.locks.contended = 2;
        r.sched.preemptions = 3;
        let mut enc = Encoder::new();
        r.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        assert!(bytes.len() <= r.snap_size_hint(), "hint must err high");
        let mut dec = Decoder::new(&bytes);
        let back = RunResult::decode_snap(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, r);
        // Truncations decode to an error, never a panic.
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let out = RunResult::decode_snap(&mut dec);
            assert!(
                out.is_err() || dec.finish().is_err(),
                "prefix of {cut} bytes silently decoded"
            );
        }
    }

    #[test]
    fn window_metric() {
        let r = result();
        // First two txns: (3000 - 1000) / 2.
        assert_eq!(r.window_cycles_per_transaction(0, 2), Some(1000.0));
        // Last two: (5000 - 3000) / 2.
        assert_eq!(r.window_cycles_per_transaction(2, 4), Some(1000.0));
        assert_eq!(r.window_cycles_per_transaction(2, 2), None);
        assert_eq!(r.window_cycles_per_transaction(0, 9), None);
    }
}
