//! Environmental noise: the stand-in for *real-machine* non-determinism.
//!
//! Sections 2.2 and Figures 2–3 of the paper measure a physical Sun E5000,
//! where variability needs no artificial perturbation — timer interrupts,
//! kernel daemons and background activity supply it. This module models that
//! environment so the "real system" experiments can run on the simulator:
//!
//! * periodic timer interrupts stealing a fixed cost per tick,
//! * randomly phased background-activity *bursts* (a cron job, a page-out
//!   daemon) that inflate every op's cost while active.
//!
//! Noise is seeded independently of the §3.3 perturbation; runs on the
//! simulated "real machine" differ because the environment differs, exactly
//! as on hardware.

use crate::ids::{Cycle, Nanos};
use crate::rng::Xoshiro256StarStar;
use crate::SimError;

/// Configuration of the environmental noise source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseConfig {
    /// Timer-interrupt period per CPU (ns). Solaris ticks at 100 Hz; scaled
    /// simulations shrink this proportionally.
    pub timer_interval_ns: Nanos,
    /// Cost of one timer interrupt (ns).
    pub timer_cost_ns: Nanos,
    /// Mean interval between background-activity bursts (ns).
    pub burst_interval_ns: Nanos,
    /// Duration of one burst (ns).
    pub burst_duration_ns: Nanos,
    /// Slowdown during a burst, in permille of each op's busy time
    /// (e.g. 300 = ops run 30% slower).
    pub burst_slowdown_permille: u32,
    /// Seed for burst phase jitter — vary per run to model a live machine.
    pub seed: u64,
}

impl NoiseConfig {
    /// A default calibrated to produce E5000-like interval variability.
    pub fn default_with_seed(seed: u64) -> Self {
        NoiseConfig {
            timer_interval_ns: 100_000,
            timer_cost_ns: 900,
            burst_interval_ns: 12_000_000,
            burst_duration_ns: 2_500_000,
            burst_slowdown_permille: 450,
            seed,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if an interval is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.timer_interval_ns == 0 || self.burst_interval_ns == 0 {
            return Err(SimError::InvalidConfig {
                what: "noise intervals must be > 0".into(),
            });
        }
        Ok(())
    }
}

/// Live noise state for one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseState {
    config: NoiseConfig,
    rng: Xoshiro256StarStar,
    next_timer: Vec<Cycle>,
    burst_start: Cycle,
    burst_end: Cycle,
    /// Total ns of noise injected (diagnostics).
    injected_ns: u64,
}

impl NoiseState {
    /// Creates noise state for `cpus` processors.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: NoiseConfig, cpus: usize) -> Result<Self, SimError> {
        config.validate()?;
        let mut rng = Xoshiro256StarStar::new(config.seed ^ 0x0B5E_55ED_0015_EDAB);
        // Stagger per-CPU timer phases like real hardware.
        let next_timer = (0..cpus)
            .map(|_| rng.next_below(config.timer_interval_ns.max(1)))
            .collect();
        let first_burst = rng.next_below(config.burst_interval_ns);
        Ok(NoiseState {
            config,
            rng,
            next_timer,
            burst_start: first_burst,
            burst_end: first_burst + config.burst_duration_ns,
            injected_ns: 0,
        })
    }

    /// Extra ns charged to an op on `cpu` that runs `[now, now + busy)`.
    pub fn overhead(&mut self, cpu: usize, now: Cycle, busy: Nanos) -> Nanos {
        let mut extra = 0;
        // Timer interrupts that land inside the op's window.
        let end = now + busy;
        while self.next_timer[cpu] <= end {
            extra += self.config.timer_cost_ns;
            self.next_timer[cpu] += self.config.timer_interval_ns;
        }
        // Background burst slowdown.
        if now >= self.burst_end {
            // Schedule the next burst with ±50% jitter.
            let jitter = self.rng.next_range(
                self.config.burst_interval_ns / 2,
                self.config.burst_interval_ns + self.config.burst_interval_ns / 2,
            );
            self.burst_start = self.burst_end + jitter;
            self.burst_end = self.burst_start + self.config.burst_duration_ns;
        }
        if now >= self.burst_start && now < self.burst_end {
            extra += busy * u64::from(self.config.burst_slowdown_permille) / 1000;
        }
        self.injected_ns += extra;
        extra
    }

    /// Total noise injected so far (ns).
    pub fn injected_ns(&self) -> u64 {
        self.injected_ns
    }
}

crate::impl_snap!(NoiseConfig {
    timer_interval_ns,
    timer_cost_ns,
    burst_interval_ns,
    burst_duration_ns,
    burst_slowdown_permille,
    seed,
});
crate::impl_snap!(NoiseState {
    config,
    rng,
    next_timer,
    burst_start,
    burst_end,
    injected_ns,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> NoiseConfig {
        NoiseConfig::default_with_seed(seed)
    }

    #[test]
    fn timer_ticks_charged_per_interval() {
        let mut n = NoiseState::new(cfg(1), 1).unwrap();
        // Run one op spanning many timer periods.
        let span = 10 * n.config.timer_interval_ns;
        let extra = n.overhead(0, 0, span);
        assert!(extra >= 9 * n.config.timer_cost_ns);
        assert!(n.injected_ns() > 0);
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let mut a = NoiseState::new(cfg(1), 2).unwrap();
        let mut b = NoiseState::new(cfg(2), 2).unwrap();
        let sa: Vec<u64> = (0..200u64)
            .map(|i| a.overhead(0, i * 50_000, 10_000))
            .collect();
        let sb: Vec<u64> = (0..200u64)
            .map(|i| b.overhead(0, i * 50_000, 10_000))
            .collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mut a = NoiseState::new(cfg(5), 2).unwrap();
        let mut b = NoiseState::new(cfg(5), 2).unwrap();
        for i in 0..500u64 {
            assert_eq!(
                a.overhead((i % 2) as usize, i * 10_000, 4_000),
                b.overhead((i % 2) as usize, i * 10_000, 4_000)
            );
        }
    }

    #[test]
    fn bursts_inflate_ops_inside_window() {
        let mut n = NoiseState::new(cfg(3), 1).unwrap();
        // Probe forward until we are inside a burst.
        let mut t = 0u64;
        let mut saw_inflation = false;
        for _ in 0..20_000 {
            let base = 10_000;
            let e = n.overhead(0, t, base);
            // Subtract timer costs: anything beyond them is burst slowdown.
            if e > 2 * n.config.timer_cost_ns + 1 {
                saw_inflation = true;
                break;
            }
            t += base;
        }
        assert!(saw_inflation, "never observed a burst in 200 ms");
    }

    #[test]
    fn validation_rejects_zero_intervals() {
        let mut c = cfg(0);
        c.timer_interval_ns = 0;
        assert!(NoiseState::new(c, 1).is_err());
    }
}
