//! The fast blocking processor model (§3.2.4): one instruction per cycle
//! with perfect L1s, full stalls on every memory access.

use super::ProcStats;
use crate::ids::{CpuId, Cycle};
use crate::mem::MemorySystem;
use crate::ops::Op;

/// State of a simple blocking core (counters only — the model has no
/// microarchitectural state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimpleCore {
    stats: ProcStats,
}

impl SimpleCore {
    /// Creates a core.
    pub fn new() -> Self {
        SimpleCore::default()
    }

    /// Executes one op; returns the busy time in cycles.
    pub fn execute(&mut self, cpu: CpuId, op: &Op, now: Cycle, mem: &mut MemorySystem) -> Cycle {
        self.stats.instructions += u64::from(op.instruction_count());
        match op {
            Op::Compute {
                instructions,
                code_block,
            } => {
                let fetch = mem.fetch(cpu, *code_block, now);
                Cycle::from((*instructions).max(1)) + fetch
            }
            // The blocking model serializes every access anyway, so the
            // dependence flag is irrelevant here.
            Op::Memory { addr, kind, .. } => mem.access(cpu, *addr, *kind, now).latency,
            // The blocking model charges one cycle for control-flow
            // instructions; it has no speculation to mispredict.
            Op::Branch(_) | Op::IndirectBranch { .. } | Op::Call { .. } | Op::Return { .. } => 1,
            Op::Lock(_) | Op::Unlock(_) | Op::TxnEnd | Op::Io(_) | Op::Yield => {
                unreachable!("serializing ops are interpreted by the machine")
            }
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// Resets the counters.
    pub fn reset_stats(&mut self) {
        self.stats = ProcStats::default();
    }

    /// Convenience used by tests: executes a pure read and returns latency.
    #[cfg(test)]
    pub(crate) fn read(
        &mut self,
        cpu: CpuId,
        addr: crate::ids::BlockAddr,
        now: Cycle,
        mem: &mut MemorySystem,
    ) -> Cycle {
        self.execute(
            cpu,
            &Op::Memory {
                addr,
                kind: crate::ops::AccessKind::Read,
                dependent: false,
            },
            now,
            mem,
        )
    }
}

crate::impl_snap!(SimpleCore { stats });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BlockAddr;
    use crate::mem::{MemoryConfig, Perturbation};
    use crate::ops::BranchInfo;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig::hpca2003(), 1, Perturbation::disabled()).unwrap()
    }

    #[test]
    fn compute_costs_one_cycle_per_instruction() {
        let mut c = SimpleCore::new();
        let mut m = mem();
        let op = Op::Compute {
            instructions: 25,
            code_block: BlockAddr(0xC0),
        };
        // First burst pays the cold I-fetch.
        let first = c.execute(CpuId(0), &op, 0, &mut m);
        assert_eq!(first, 25 + 180);
        // Subsequent bursts are pure IPC-1.
        let warm = c.execute(CpuId(0), &op, 1000, &mut m);
        assert_eq!(warm, 25);
        assert_eq!(c.stats().instructions, 50);
    }

    #[test]
    fn memory_op_blocks_for_full_latency() {
        let mut c = SimpleCore::new();
        let mut m = mem();
        let cold = c.read(CpuId(0), BlockAddr(5), 0, &mut m);
        assert_eq!(cold, 180);
        let hit = c.read(CpuId(0), BlockAddr(5), 200, &mut m);
        assert_eq!(hit, 1);
    }

    #[test]
    fn control_flow_costs_one_cycle() {
        let mut c = SimpleCore::new();
        let mut m = mem();
        assert_eq!(
            c.execute(
                CpuId(0),
                &Op::Branch(BranchInfo { pc: 1, taken: true }),
                0,
                &mut m
            ),
            1
        );
        assert_eq!(
            c.execute(
                CpuId(0),
                &Op::IndirectBranch { pc: 2, target: 9 },
                0,
                &mut m
            ),
            1
        );
    }
}
