//! The TFsim-like out-of-order timing model (§3.2.4): a 4-wide core with a
//! configurable reorder buffer, branch predictors, and a miss window that
//! overlaps long-latency memory accesses with younger work until the ROB
//! fills.
//!
//! The model tracks, per outstanding miss, the cumulative instruction count
//! at its issue point. The ROB admits younger instructions until
//! `issued − oldest_miss_issue_point ≥ rob_size`; past that, issue stalls
//! until the oldest miss completes — the mechanism that makes Experiment 2's
//! runtime improve with ROB size.

use std::collections::VecDeque;

use super::predictor::{CascadedIndirect, ReturnAddressStack, Yags};
use super::ProcStats;
use crate::ids::{CpuId, Cycle, Nanos};
use crate::mem::MemorySystem;
use crate::ops::Op;

/// Configuration of the out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OooConfig {
    /// Issue/retire width in instructions per cycle (TFsim: 4).
    pub width: u32,
    /// Reorder-buffer capacity in instructions (the paper sweeps 16/32/64).
    pub rob_size: u32,
    /// Pipeline refill penalty after a branch misprediction (ns).
    pub mispredict_penalty_ns: Nanos,
    /// Maximum outstanding misses (MSHRs).
    pub max_outstanding: u32,
}

impl OooConfig {
    /// The paper's default TFsim configuration: 4-wide, 64-entry ROB.
    pub fn tfsim_default() -> Self {
        OooConfig {
            width: 4,
            rob_size: 64,
            mispredict_penalty_ns: 12,
            max_outstanding: 4,
        }
    }

    /// The default with a different ROB size (Experiment 2's sweep knob).
    pub fn with_rob_size(rob_size: u32) -> Self {
        OooConfig {
            rob_size,
            ..OooConfig::tfsim_default()
        }
    }
}

/// One in-flight long-latency access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Outstanding {
    complete: Cycle,
    /// Cumulative instruction count when this access issued.
    issued_at_instr: u64,
}

/// State of one out-of-order core.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OooCore {
    config: OooConfig,
    yags: Yags,
    indirect: CascadedIndirect,
    ras: ReturnAddressStack,
    window: VecDeque<Outstanding>,
    issued_instrs: u64,
    stats: ProcStats,
}

/// Latencies at or below this many ns are absorbed by the pipeline instead of
/// occupying the miss window (L1 hits).
const PIPELINE_HIDDEN_NS: Nanos = 2;

impl OooCore {
    /// Creates a core with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `width`, `rob_size` or `max_outstanding` is zero.
    pub fn new(config: OooConfig) -> Self {
        assert!(config.width > 0, "width must be > 0");
        assert!(config.rob_size > 0, "rob_size must be > 0");
        assert!(config.max_outstanding > 0, "max_outstanding must be > 0");
        OooCore {
            config,
            yags: Yags::tfsim_default(),
            indirect: CascadedIndirect::tfsim_default(),
            ras: ReturnAddressStack::tfsim_default(),
            window: VecDeque::with_capacity(config.max_outstanding as usize),
            issued_instrs: 0,
            stats: ProcStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &OooConfig {
        &self.config
    }

    /// Executes one pipelined op starting at `now`; returns busy time.
    pub fn execute(&mut self, cpu: CpuId, op: &Op, now: Cycle, mem: &mut MemorySystem) -> Cycle {
        let mut t = now;
        self.retire_completed(t);

        match op {
            Op::Compute {
                instructions,
                code_block,
            } => {
                let n = u64::from((*instructions).max(1));
                self.stats.instructions += n;
                // I-fetch: a miss stalls the front end outright.
                let fetch = mem.fetch(cpu, *code_block, t);
                t += fetch;
                // Issue the burst at full width, stalling whenever the ROB
                // fills behind an outstanding miss.
                let mut remaining = n;
                while remaining > 0 {
                    let room = self.rob_room();
                    if room == 0 {
                        t = self.wait_for_oldest(t);
                        continue;
                    }
                    let chunk = remaining.min(room);
                    self.issued_instrs += chunk;
                    remaining -= chunk;
                    t += chunk.div_ceil(u64::from(self.config.width)).max(1);
                    self.retire_completed(t);
                }
            }
            Op::Memory {
                addr,
                kind,
                dependent,
            } => {
                self.stats.instructions += 1;
                // The access is timed at the event time `now`: the engine
                // processes events in global time order, so memory-system
                // timestamps stay monotone (a requirement of the bus model).
                // Structural stalls (ROB/MSHR full) are charged to the busy
                // time afterwards.
                let outcome = mem.access(cpu, *addr, *kind, now);
                // A dependent access (pointer chase) waits for the newest
                // in-flight load to deliver its value.
                if *dependent {
                    if let Some(last) = self.window.back() {
                        if last.complete > t {
                            self.stats.window_stall_ns += last.complete - t;
                            t = last.complete;
                        }
                        self.retire_completed(t);
                    }
                }
                t = self.ensure_issue_slot(t);
                self.issued_instrs += 1;
                t += 1; // issue slot
                if outcome.latency > PIPELINE_HIDDEN_NS {
                    self.window.push_back(Outstanding {
                        complete: t + outcome.latency,
                        issued_at_instr: self.issued_instrs,
                    });
                }
            }
            Op::Branch(info) => {
                self.stats.instructions += 1;
                self.stats.branches += 1;
                t = self.ensure_issue_slot(t);
                self.issued_instrs += 1;
                t += 1;
                if !self.yags.update(info.pc, info.taken) {
                    self.stats.branch_mispredicts += 1;
                    t += self.config.mispredict_penalty_ns;
                }
            }
            Op::IndirectBranch { pc, target } => {
                self.stats.instructions += 1;
                t = self.ensure_issue_slot(t);
                self.issued_instrs += 1;
                t += 1;
                if !self.indirect.update(*pc, *target) {
                    self.stats.indirect_mispredicts += 1;
                    t += self.config.mispredict_penalty_ns;
                }
            }
            Op::Call { return_pc } => {
                self.stats.instructions += 1;
                t = self.ensure_issue_slot(t);
                self.issued_instrs += 1;
                t += 1;
                self.ras.push(*return_pc);
            }
            Op::Return { return_pc } => {
                self.stats.instructions += 1;
                t = self.ensure_issue_slot(t);
                self.issued_instrs += 1;
                t += 1;
                if !self.ras.pop_and_check(*return_pc) {
                    self.stats.ras_mispredicts += 1;
                    t += self.config.mispredict_penalty_ns;
                }
            }
            Op::Lock(_) | Op::Unlock(_) | Op::TxnEnd | Op::Io(_) | Op::Yield => {
                unreachable!("serializing ops are interpreted by the machine")
            }
        }
        t - now
    }

    /// Instruction slots available before the ROB fills behind the oldest
    /// outstanding miss. `u64::MAX` when the window is empty.
    #[inline]
    fn rob_room(&self) -> u64 {
        match self.window.front() {
            None => u64::MAX,
            Some(o) => {
                let occupied = self.issued_instrs - o.issued_at_instr;
                u64::from(self.config.rob_size).saturating_sub(occupied)
            }
        }
    }

    /// Stalls until structural hazards clear: MSHRs free and ROB has room.
    fn ensure_issue_slot(&mut self, mut t: Cycle) -> Cycle {
        while self.window.len() >= self.config.max_outstanding as usize || self.rob_room() == 0 {
            t = self.wait_for_oldest(t);
        }
        t
    }

    /// Blocks until the oldest outstanding access completes.
    fn wait_for_oldest(&mut self, t: Cycle) -> Cycle {
        let oldest = self
            .window
            .pop_front()
            .expect("wait_for_oldest requires a non-empty window");
        let target = oldest.complete.max(t);
        self.stats.window_stall_ns += target - t;
        self.retire_completed(target);
        target
    }

    /// Drops window entries whose data has arrived.
    #[inline]
    fn retire_completed(&mut self, t: Cycle) {
        while let Some(front) = self.window.front() {
            if front.complete <= t {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }

    /// Completes all in-flight work (serializing op or context switch);
    /// returns the wait.
    pub fn drain(&mut self, now: Cycle) -> Cycle {
        let mut latest = now;
        for o in &self.window {
            latest = latest.max(o.complete);
        }
        self.window.clear();
        let wait = latest - now;
        self.stats.drain_ns += wait;
        wait
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// Resets the counters (end of warmup); predictor state is kept, like a
    /// real warm machine.
    pub fn reset_stats(&mut self) {
        self.stats = ProcStats::default();
    }

    /// Number of in-flight accesses (tests/diagnostics).
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }
}

crate::impl_snap!(OooConfig {
    width,
    rob_size,
    mispredict_penalty_ns,
    max_outstanding,
});
crate::impl_snap!(Outstanding {
    complete,
    issued_at_instr,
});
crate::impl_snap!(OooCore {
    config,
    yags,
    indirect,
    ras,
    window,
    issued_instrs,
    stats,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BlockAddr;
    use crate::mem::{CacheConfig, MemoryConfig, MemorySystem, Perturbation};
    use crate::ops::{AccessKind, BranchInfo};

    fn mem() -> MemorySystem {
        // Tiny L2 so distinct addresses miss reliably.
        let mut cfg = MemoryConfig::hpca2003();
        cfg.l1d = CacheConfig::new(1024, 2, 64).unwrap();
        cfg.l2 = CacheConfig::new(8192, 4, 64).unwrap();
        MemorySystem::new(cfg, 1, Perturbation::disabled()).unwrap()
    }

    fn read(addr: u64) -> Op {
        Op::Memory {
            addr: BlockAddr(addr),
            kind: AccessKind::Read,
            dependent: false,
        }
    }

    fn compute(n: u32) -> Op {
        Op::Compute {
            instructions: n,
            code_block: BlockAddr(0xC0DE),
        }
    }

    #[test]
    fn miss_does_not_block_issue() {
        let mut core = OooCore::new(OooConfig::tfsim_default());
        let mut m = mem();
        // Warm the I-cache.
        core.execute(CpuId(0), &compute(4), 0, &mut m);
        let t0 = 10_000;
        // A cold load: issue slot only, the 180 ns miss rides in the window.
        let busy = core.execute(CpuId(0), &read(0x5000), t0, &mut m);
        assert_eq!(busy, 1);
        assert_eq!(core.in_flight(), 1);
        // A small compute burst proceeds under the miss shadow.
        let busy2 = core.execute(CpuId(0), &compute(8), t0 + 1, &mut m);
        assert_eq!(busy2, 2); // 8 instrs at width 4
    }

    #[test]
    fn rob_fill_stalls_issue() {
        let cfg = OooConfig {
            rob_size: 16,
            ..OooConfig::tfsim_default()
        };
        let mut core = OooCore::new(cfg);
        let mut m = mem();
        core.execute(CpuId(0), &compute(4), 0, &mut m); // warm I-cache
        let t0 = 10_000;
        core.execute(CpuId(0), &read(0x5000), t0, &mut m); // miss in window
                                                           // 64 instructions >> 15 remaining ROB slots: must stall for the miss.
        let busy = core.execute(CpuId(0), &compute(64), t0 + 1, &mut m);
        assert!(
            busy >= 170,
            "16-entry ROB should stall behind the 180ns miss, busy={busy}"
        );
        assert!(core.stats().window_stall_ns > 0);
    }

    #[test]
    fn larger_rob_hides_more_latency() {
        // Identical op sequence under ROB 16 vs 64: the 64-entry window must
        // finish no later, and strictly earlier when misses can overlap.
        let run = |rob: u32| {
            let mut core = OooCore::new(OooConfig::with_rob_size(rob));
            let mut m = mem();
            core.execute(CpuId(0), &compute(4), 0, &mut m);
            let mut t = 10_000u64;
            for i in 0..40u64 {
                t += core.execute(CpuId(0), &read(0x5000 + i * 64), t, &mut m);
                t += core.execute(CpuId(0), &compute(24), t, &mut m);
            }
            t += core.drain(t);
            t
        };
        let t16 = run(16);
        let t64 = run(64);
        assert!(t64 < t16, "ROB 64 ({t64}) should beat ROB 16 ({t16})");
    }

    #[test]
    fn mshr_limit_caps_outstanding() {
        let cfg = OooConfig {
            max_outstanding: 2,
            rob_size: 1024,
            ..OooConfig::tfsim_default()
        };
        let mut core = OooCore::new(cfg);
        let mut m = mem();
        core.execute(CpuId(0), &compute(4), 0, &mut m);
        let t0 = 10_000;
        let mut t = t0;
        for i in 0..3u64 {
            t += core.execute(CpuId(0), &read(0x7000 + i * 64), t, &mut m);
        }
        // Third miss had to wait for the first to complete.
        assert!(t - t0 >= 180, "elapsed {}", t - t0);
        assert!(core.in_flight() <= 2);
    }

    #[test]
    fn drain_completes_window() {
        let mut core = OooCore::new(OooConfig::tfsim_default());
        let mut m = mem();
        core.execute(CpuId(0), &compute(4), 0, &mut m);
        let t0 = 10_000;
        core.execute(CpuId(0), &read(0x9000), t0, &mut m);
        let wait = core.drain(t0 + 1);
        assert!(wait >= 179, "drain should wait for the miss, waited {wait}");
        assert_eq!(core.in_flight(), 0);
        assert_eq!(core.drain(t0 + 1000), 0);
    }

    #[test]
    fn mispredicted_branch_pays_penalty() {
        let mut core = OooCore::new(OooConfig::tfsim_default());
        let mut m = mem();
        // A fresh predictor with weakly-taken default: a not-taken branch
        // mispredicts.
        let busy = core.execute(
            CpuId(0),
            &Op::Branch(BranchInfo {
                pc: 0x44,
                taken: false,
            }),
            0,
            &mut m,
        );
        assert_eq!(busy, 1 + core.config().mispredict_penalty_ns);
        assert_eq!(core.stats().branch_mispredicts, 1);
    }

    #[test]
    fn matched_call_return_is_fast() {
        let mut core = OooCore::new(OooConfig::tfsim_default());
        let mut m = mem();
        let c = core.execute(CpuId(0), &Op::Call { return_pc: 0x99 }, 0, &mut m);
        let r = core.execute(CpuId(0), &Op::Return { return_pc: 0x99 }, 10, &mut m);
        assert_eq!(c, 1);
        assert_eq!(r, 1);
        assert_eq!(core.stats().ras_mispredicts, 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut core = OooCore::new(OooConfig::tfsim_default());
            let mut m = mem();
            let mut t = 0u64;
            for i in 0..200u64 {
                t += core.execute(CpuId(0), &read(0x100 + (i * 37) % 512), t, &mut m);
                t += core.execute(CpuId(0), &compute((i % 13) as u32 + 1), t, &mut m);
            }
            t
        };
        assert_eq!(run(), run());
    }
}
