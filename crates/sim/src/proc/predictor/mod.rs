//! Branch-prediction structures used by the out-of-order processor model,
//! mirroring the TFsim configuration in §3.2.4 of the paper:
//!
//! * a YAGS direct branch predictor ([`Yags`]),
//! * a 64-entry cascaded indirect branch predictor ([`CascadedIndirect`]),
//! * a 64-entry return-address stack ([`ReturnAddressStack`]).

mod cascaded;
mod ras;
mod yags;

pub use cascaded::CascadedIndirect;
pub use ras::ReturnAddressStack;
pub use yags::Yags;

/// A saturating 2-bit counter used throughout the predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) struct Counter2(u8);

impl Counter2 {
    /// Weakly-taken initial state.
    pub(crate) fn weakly_taken() -> Self {
        Counter2(2)
    }

    #[inline]
    pub(crate) fn predict(self) -> bool {
        self.0 >= 2
    }

    #[inline]
    pub(crate) fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

impl crate::checkpoint::Snap for Counter2 {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        enc.put_u8(self.0);
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        let v = dec.get_u8()?;
        if v > 3 {
            return Err(crate::checkpoint::CheckpointError::Corrupt {
                what: "Counter2 out of range".into(),
            });
        }
        Ok(Counter2(v))
    }
    fn snap_size_hint(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_both_ways() {
        let mut c = Counter2::weakly_taken();
        assert!(c.predict());
        c.update(false);
        assert!(!c.predict()); // 1: weakly not-taken
        c.update(false);
        c.update(false);
        assert!(!c.predict()); // saturated at 0
        c.update(true);
        assert!(!c.predict()); // 1
        c.update(true);
        assert!(c.predict()); // 2
        c.update(true);
        c.update(true);
        assert!(c.predict()); // saturated at 3
    }
}
