//! A return-address stack predictor, matching the 64-entry RAS TFsim models
//! (§3.2.4).

/// A fixed-depth circular return-address stack.
///
/// Overflow wraps (oldest entries are overwritten), underflow mispredicts —
/// both behaviours of real hardware RASes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReturnAddressStack {
    stack: Vec<u32>,
    top: usize,
    depth: usize,
    live: usize,
    predictions: u64,
    mispredictions: u64,
}

impl ReturnAddressStack {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be > 0");
        ReturnAddressStack {
            stack: vec![0; capacity],
            top: 0,
            depth: capacity,
            live: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// The paper's 64-entry configuration.
    pub fn tfsim_default() -> Self {
        ReturnAddressStack::new(64)
    }

    /// Pushes a return address at a call.
    pub fn push(&mut self, return_pc: u32) {
        self.stack[self.top] = return_pc;
        self.top = (self.top + 1) % self.depth;
        self.live = (self.live + 1).min(self.depth);
    }

    /// Pops a predicted return address at a return and checks it against the
    /// `actual` return target; returns whether the prediction was correct.
    pub fn pop_and_check(&mut self, actual: u32) -> bool {
        self.predictions += 1;
        if self.live == 0 {
            self.mispredictions += 1;
            return false;
        }
        self.top = (self.top + self.depth - 1) % self.depth;
        self.live -= 1;
        let predicted = self.stack[self.top];
        let correct = predicted == actual;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the stack holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Fraction of mispredicted returns so far.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

crate::impl_snap!(ReturnAddressStack {
    stack,
    top,
    depth,
    live,
    predictions,
    mispredictions,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_calls_predict_perfectly() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(100);
        ras.push(200);
        assert!(ras.pop_and_check(200));
        assert!(ras.pop_and_check(100));
        assert_eq!(ras.misprediction_rate(), 0.0);
    }

    #[test]
    fn underflow_mispredicts() {
        let mut ras = ReturnAddressStack::new(4);
        assert!(!ras.pop_and_check(123));
        assert!(ras.is_empty());
        assert_eq!(ras.misprediction_rate(), 1.0);
    }

    #[test]
    fn overflow_wraps_and_clobbers_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // clobbers 1
        assert!(ras.pop_and_check(3));
        assert!(ras.pop_and_check(2));
        // The original bottom entry was lost.
        assert!(!ras.pop_and_check(1));
    }

    #[test]
    fn deep_recursion_within_capacity() {
        let mut ras = ReturnAddressStack::tfsim_default();
        for i in 0..64u32 {
            ras.push(i);
        }
        assert_eq!(ras.len(), 64);
        for i in (0..64u32).rev() {
            assert!(ras.pop_and_check(i));
        }
    }
}
