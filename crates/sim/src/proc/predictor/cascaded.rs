//! A cascaded indirect branch predictor (Driesen & Hölzle, ISCA 1998),
//! matching the 64-entry indirect predictor TFsim models (§3.2.4).
//!
//! Two stages: a first-stage table indexed by PC alone, and a tagged
//! second-stage table indexed by PC xor a path history of recent targets.
//! The second stage overrides the first on a tag hit; entries are promoted
//! into the second stage when the first stage mispredicts.

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Stage1Entry {
    target: u32,
    valid: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Stage2Entry {
    tag: u16,
    target: u32,
    valid: bool,
}

/// The cascaded two-stage indirect branch predictor.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CascadedIndirect {
    stage1: Vec<Stage1Entry>,
    stage2: Vec<Stage2Entry>,
    path_history: u32,
    predictions: u64,
    mispredictions: u64,
}

impl CascadedIndirect {
    /// Creates a predictor with `2^stage1_bits` first-stage and
    /// `2^stage2_bits` second-stage entries.
    ///
    /// # Panics
    ///
    /// Panics if either size exceeds 20 bits.
    pub fn new(stage1_bits: u32, stage2_bits: u32) -> Self {
        assert!(
            stage1_bits <= 20 && stage2_bits <= 20,
            "predictor too large"
        );
        CascadedIndirect {
            stage1: vec![Stage1Entry::default(); 1 << stage1_bits],
            stage2: vec![Stage2Entry::default(); 1 << stage2_bits],
            path_history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// The paper's 64-entry configuration (two 64-entry stages).
    pub fn tfsim_default() -> Self {
        CascadedIndirect::new(6, 6)
    }

    #[inline]
    fn s1_index(&self, pc: u32) -> usize {
        (pc as usize) & (self.stage1.len() - 1)
    }

    #[inline]
    fn s2_index(&self, pc: u32) -> usize {
        ((pc ^ self.path_history) as usize) & (self.stage2.len() - 1)
    }

    #[inline]
    fn tag(pc: u32) -> u16 {
        (pc >> 3) as u16
    }

    /// Predicts the target of the indirect branch at `pc`; `None` when the
    /// predictor has no information (counts as a mispredict on update).
    pub fn predict(&self, pc: u32) -> Option<u32> {
        let s2 = &self.stage2[self.s2_index(pc)];
        if s2.valid && s2.tag == Self::tag(pc) {
            return Some(s2.target);
        }
        let s1 = &self.stage1[self.s1_index(pc)];
        if s1.valid {
            return Some(s1.target);
        }
        None
    }

    /// Updates with the actual `target`; returns whether the prediction made
    /// beforehand was correct.
    pub fn update(&mut self, pc: u32, target: u32) -> bool {
        let predicted = self.predict(pc);
        let correct = predicted == Some(target);
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }

        let s1_idx = self.s1_index(pc);
        let s1_correct = self.stage1[s1_idx].valid && self.stage1[s1_idx].target == target;
        // Stage-1 is a plain last-target table.
        self.stage1[s1_idx] = Stage1Entry {
            target,
            valid: true,
        };
        // Cascade: allocate in stage 2 only when stage 1 was wrong
        // (polymorphic branch), or update an existing hit.
        let s2_idx = self.s2_index(pc);
        let s2 = &mut self.stage2[s2_idx];
        let s2_hit = s2.valid && s2.tag == Self::tag(pc);
        if s2_hit || !s1_correct {
            *s2 = Stage2Entry {
                tag: Self::tag(pc),
                target,
                valid: true,
            };
        }

        // Path history mixes in low target bits.
        self.path_history = (self.path_history << 3) ^ (target & 0x3F);
        correct
    }

    /// Fraction of mispredicted indirect branches so far.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

crate::impl_snap!(Stage1Entry { target, valid });
crate::impl_snap!(Stage2Entry { tag, target, valid });
crate::impl_snap!(CascadedIndirect {
    stage1,
    stage2,
    path_history,
    predictions,
    mispredictions,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomorphic_branch_is_learned_by_stage1() {
        let mut p = CascadedIndirect::tfsim_default();
        p.update(0x10, 42);
        let correct = (0..50).filter(|_| p.update(0x10, 42)).count();
        assert_eq!(correct, 50);
    }

    #[test]
    fn cold_predictor_returns_none() {
        let p = CascadedIndirect::tfsim_default();
        assert_eq!(p.predict(0x99), None);
    }

    #[test]
    fn polymorphic_branch_with_stable_pattern_improves_in_stage2() {
        let mut p = CascadedIndirect::new(6, 10);
        // A branch that cycles through 3 targets — pure last-target predicts
        // 0% on a 3-cycle; the history-indexed stage should learn it.
        let targets = [7u32, 13, 29];
        for i in 0..600usize {
            p.update(0x20, targets[i % 3]);
        }
        let correct = (600..1200usize)
            .filter(|&i| p.update(0x20, targets[i % 3]))
            .count();
        assert!(correct > 450, "only {correct}/600 correct");
    }

    #[test]
    fn distinguishes_branch_sites() {
        let mut p = CascadedIndirect::tfsim_default();
        for _ in 0..10 {
            p.update(0x1, 100);
            p.update(0x2, 200);
        }
        assert_eq!(p.predict(0x1), Some(100));
        assert_eq!(p.predict(0x2), Some(200));
    }

    #[test]
    fn misprediction_rate_tracked() {
        let mut p = CascadedIndirect::tfsim_default();
        p.update(0x5, 1); // cold: mispredict
        p.update(0x5, 1); // learned
        assert!((p.misprediction_rate() - 0.5).abs() < 1e-12);
    }
}
