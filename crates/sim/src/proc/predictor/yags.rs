//! The YAGS ("Yet Another Global Scheme") direct branch predictor
//! (Eden & Mudge, ISCA 1998), the direct predictor TFsim models (§3.2.4).
//!
//! YAGS keeps a choice PHT indexed by PC, plus two small tagged *direction
//! caches* — one for branches that deviate toward taken, one toward
//! not-taken — indexed by PC xor global history. A branch first consults the
//! choice PHT; the corresponding direction cache can override on a tag hit.

use super::Counter2;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct DirEntry {
    tag: u16,
    counter: Counter2,
    valid: bool,
}

/// A YAGS direct branch predictor.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Yags {
    choice: Vec<Counter2>,
    taken_cache: Vec<DirEntry>,
    not_taken_cache: Vec<DirEntry>,
    history: u32,
    history_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl Yags {
    /// Creates a predictor with `choice_bits` of choice-PHT index and
    /// `cache_bits` of direction-cache index (sizes are `2^bits` entries).
    ///
    /// # Panics
    ///
    /// Panics if either size exceeds 24 bits (an obvious misconfiguration).
    pub fn new(choice_bits: u32, cache_bits: u32) -> Self {
        assert!(choice_bits <= 24 && cache_bits <= 24, "predictor too large");
        Yags {
            choice: vec![Counter2::weakly_taken(); 1 << choice_bits],
            taken_cache: vec![DirEntry::default(); 1 << cache_bits],
            not_taken_cache: vec![DirEntry::default(); 1 << cache_bits],
            history: 0,
            history_bits: cache_bits.min(16),
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// The TFsim-like default: 4K-entry choice PHT, 1K-entry direction
    /// caches.
    pub fn tfsim_default() -> Self {
        Yags::new(12, 10)
    }

    #[inline]
    fn choice_index(&self, pc: u32) -> usize {
        (pc as usize) & (self.choice.len() - 1)
    }

    #[inline]
    fn cache_index(&self, pc: u32) -> usize {
        ((pc ^ self.history) as usize) & (self.taken_cache.len() - 1)
    }

    #[inline]
    fn tag(pc: u32) -> u16 {
        (pc >> 4) as u16
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u32) -> bool {
        let choice = self.choice[self.choice_index(pc)].predict();
        let idx = self.cache_index(pc);
        let tag = Self::tag(pc);
        // The cache consulted is the one holding *exceptions* to the choice.
        let entry = if choice {
            &self.not_taken_cache[idx]
        } else {
            &self.taken_cache[idx]
        };
        if entry.valid && entry.tag == tag {
            entry.counter.predict()
        } else {
            choice
        }
    }

    /// Updates the predictor with the actual outcome; returns `true` when
    /// the prediction made beforehand was correct.
    pub fn update(&mut self, pc: u32, taken: bool) -> bool {
        let predicted = self.predict(pc);
        let correct = predicted == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }

        let cidx = self.choice_index(pc);
        let choice = self.choice[cidx].predict();
        let idx = self.cache_index(pc);
        let tag = Self::tag(pc);

        // Update the exception cache if it hit, or allocate on a
        // choice-mispredict (standard YAGS policy).
        let cache = if choice {
            &mut self.not_taken_cache[idx]
        } else {
            &mut self.taken_cache[idx]
        };
        let cache_hit = cache.valid && cache.tag == tag;
        if cache_hit {
            cache.counter.update(taken);
        } else if taken != choice {
            *cache = DirEntry {
                tag,
                counter: {
                    let mut c = Counter2::weakly_taken();
                    // Bias the fresh entry toward the observed outcome.
                    c.update(taken);
                    if !taken {
                        c.update(false);
                    }
                    c
                },
                valid: true,
            };
        }
        // The choice PHT is updated unless the exception cache both hit and
        // was correct while the choice was wrong.
        if !(cache_hit && taken != choice) {
            self.choice[cidx].update(taken);
        }

        // Global history shifts in the outcome.
        self.history = ((self.history << 1) | u32::from(taken)) & ((1 << self.history_bits) - 1);
        correct
    }

    /// Fraction of mispredicted branches so far (0 if none predicted).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }
}

crate::impl_snap!(DirEntry {
    tag,
    counter,
    valid,
});
crate::impl_snap!(Yags {
    choice,
    taken_cache,
    not_taken_cache,
    history,
    history_bits,
    predictions,
    mispredictions,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut y = Yags::new(8, 6);
        for _ in 0..8 {
            y.update(0x40, true);
        }
        assert!(y.predict(0x40));
        // After warmup, it keeps predicting correctly.
        let correct = (0..100).filter(|_| y.update(0x40, true)).count();
        assert_eq!(correct, 100);
    }

    #[test]
    fn learns_always_not_taken() {
        let mut y = Yags::new(8, 6);
        for _ in 0..8 {
            y.update(0x80, false);
        }
        let correct = (0..100).filter(|_| y.update(0x80, false)).count();
        assert_eq!(correct, 100);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut y = Yags::new(8, 8);
        // Alternating T/NT is history-predictable; after warmup the
        // misprediction rate should drop well below 50%.
        let mut taken = false;
        for _ in 0..64 {
            y.update(0x100, taken);
            taken = !taken;
        }
        let correct = (0..200)
            .filter(|_| {
                let c = y.update(0x100, taken);
                taken = !taken;
                c
            })
            .count();
        assert!(correct > 150, "only {correct}/200 correct");
    }

    #[test]
    fn random_branches_mispredict_roughly_half() {
        let mut y = Yags::tfsim_default();
        let mut rng = crate::rng::Xoshiro256StarStar::new(5);
        for i in 0..5000 {
            y.update(0x200 + (i % 13), rng.next_bool(0.5));
        }
        let r = y.misprediction_rate();
        assert!((0.35..0.65).contains(&r), "rate {r}");
    }

    #[test]
    fn tracks_counts() {
        let mut y = Yags::new(6, 4);
        y.update(1, true);
        y.update(1, true);
        assert_eq!(y.predictions(), 2);
        assert!(y.misprediction_rate() <= 0.5);
    }
}
