//! Processor timing models (§3.2.4 of the paper).
//!
//! Two models are provided, mirroring the paper's infrastructure:
//!
//! * [`ProcessorConfig::Simple`] — a fast blocking model that retires one
//!   instruction per cycle when the L1 caches are perfect, stalling for the
//!   full latency of every memory access.
//! * [`ProcessorConfig::OutOfOrder`] — a TFsim-like 4-wide out-of-order model
//!   with a configurable reorder buffer, a YAGS direct predictor, a cascaded
//!   indirect predictor and a return-address stack. Long-latency misses
//!   overlap with younger work until the ROB fills (memory-level
//!   parallelism), which is what makes runtime improve with ROB size in
//!   Experiment 2.

pub mod predictor;

mod ooo;
mod simple;

pub use ooo::{OooConfig, OooCore};
pub use simple::SimpleCore;

use crate::ids::{CpuId, Cycle, Nanos};
use crate::mem::MemorySystem;
use crate::ops::Op;

/// Which processor timing model drives each CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum ProcessorConfig {
    /// Blocking in-order model (IPC 1 with perfect L1s).
    #[default]
    Simple,
    /// Out-of-order model with the given window configuration.
    OutOfOrder(OooConfig),
}

/// Counters accumulated by one processor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProcStats {
    /// Instructions executed (compute bursts count their full size).
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub branch_mispredicts: u64,
    /// Indirect branches mispredicted.
    pub indirect_mispredicts: u64,
    /// Returns mispredicted by the RAS.
    pub ras_mispredicts: u64,
    /// ns spent stalled because the ROB or MSHRs were full.
    pub window_stall_ns: u64,
    /// ns spent draining the window at serializing ops and context switches.
    pub drain_ns: u64,
}

impl ProcStats {
    /// Conditional-branch misprediction ratio; 0.0 (not NaN) when no
    /// branches executed, so zero-length runs stay safe to aggregate.
    pub fn branch_misprediction_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }
}

/// One CPU's processor state, dispatching to the configured model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProcCore {
    /// Blocking model state.
    Simple(SimpleCore),
    /// Out-of-order model state.
    Ooo(Box<OooCore>),
}

impl ProcCore {
    /// Creates a core for the configured model.
    pub fn new(config: &ProcessorConfig) -> Self {
        match config {
            ProcessorConfig::Simple => ProcCore::Simple(SimpleCore::new()),
            ProcessorConfig::OutOfOrder(cfg) => ProcCore::Ooo(Box::new(OooCore::new(*cfg))),
        }
    }

    /// Executes one pipelined op (`Compute`, `Memory`, `Branch`,
    /// `IndirectBranch`, `Call`, `Return`) starting at `now`; returns how
    /// long the CPU is busy before it can take its next op.
    ///
    /// # Panics
    ///
    /// Panics if called with a serializing op ([`Op::is_serializing`]);
    /// the machine handles those (locks, I/O, transaction boundaries) after
    /// calling [`ProcCore::drain`].
    pub fn execute(&mut self, cpu: CpuId, op: &Op, now: Cycle, mem: &mut MemorySystem) -> Cycle {
        assert!(
            !op.is_serializing(),
            "serializing ops are interpreted by the machine, not the core"
        );
        match self {
            ProcCore::Simple(c) => c.execute(cpu, op, now, mem),
            ProcCore::Ooo(c) => c.execute(cpu, op, now, mem),
        }
    }

    /// Completes all in-flight work (pipeline drain); returns the wait.
    /// Called before serializing ops and at context switches.
    pub fn drain(&mut self, now: Cycle) -> Cycle {
        match self {
            ProcCore::Simple(_) => 0,
            ProcCore::Ooo(c) => c.drain(now),
        }
    }

    /// The core's counters.
    pub fn stats(&self) -> &ProcStats {
        match self {
            ProcCore::Simple(c) => c.stats(),
            ProcCore::Ooo(c) => c.stats(),
        }
    }

    /// Resets the counters (end of warmup).
    pub fn reset_stats(&mut self) {
        match self {
            ProcCore::Simple(c) => c.reset_stats(),
            ProcCore::Ooo(c) => c.reset_stats(),
        }
    }
}

impl crate::checkpoint::Snap for ProcessorConfig {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        match self {
            ProcessorConfig::Simple => enc.put_u8(0),
            ProcessorConfig::OutOfOrder(cfg) => {
                enc.put_u8(1);
                cfg.encode_snap(enc);
            }
        }
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::Snap;
        Ok(match dec.get_u8()? {
            0 => ProcessorConfig::Simple,
            1 => ProcessorConfig::OutOfOrder(Snap::decode_snap(dec)?),
            _ => {
                return Err(crate::checkpoint::CheckpointError::Corrupt {
                    what: "ProcessorConfig tag".into(),
                })
            }
        })
    }
    fn snap_size_hint(&self) -> usize {
        1 + match self {
            ProcessorConfig::Simple => 0,
            ProcessorConfig::OutOfOrder(cfg) => cfg.snap_size_hint(),
        }
    }
}

impl crate::checkpoint::Snap for ProcCore {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        match self {
            ProcCore::Simple(core) => {
                enc.put_u8(0);
                core.encode_snap(enc);
            }
            ProcCore::Ooo(core) => {
                enc.put_u8(1);
                core.as_ref().encode_snap(enc);
            }
        }
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::Snap;
        Ok(match dec.get_u8()? {
            0 => ProcCore::Simple(Snap::decode_snap(dec)?),
            1 => ProcCore::Ooo(Box::new(Snap::decode_snap(dec)?)),
            _ => {
                return Err(crate::checkpoint::CheckpointError::Corrupt {
                    what: "ProcCore tag".into(),
                })
            }
        })
    }
    fn snap_size_hint(&self) -> usize {
        1 + match self {
            ProcCore::Simple(core) => core.snap_size_hint(),
            ProcCore::Ooo(core) => core.as_ref().snap_size_hint(),
        }
    }
}

crate::impl_snap!(ProcStats {
    instructions,
    branches,
    branch_mispredicts,
    indirect_mispredicts,
    ras_mispredicts,
    window_stall_ns,
    drain_ns,
});

/// Cost in ns of the short uncontended instruction sequence around
/// synchronization ops (shared by both models).
pub(crate) const SYNC_OP_COST_NS: Nanos = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BlockAddr;
    use crate::mem::{MemoryConfig, Perturbation};
    use crate::ops::AccessKind;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig::hpca2003(), 1, Perturbation::disabled()).unwrap()
    }

    #[test]
    fn dispatch_matches_config() {
        assert!(matches!(
            ProcCore::new(&ProcessorConfig::Simple),
            ProcCore::Simple(_)
        ));
        assert!(matches!(
            ProcCore::new(&ProcessorConfig::OutOfOrder(OooConfig::tfsim_default())),
            ProcCore::Ooo(_)
        ));
    }

    #[test]
    #[should_panic(expected = "serializing ops")]
    fn serializing_op_panics() {
        let mut core = ProcCore::new(&ProcessorConfig::Simple);
        let mut m = mem();
        core.execute(CpuId(0), &Op::TxnEnd, 0, &mut m);
    }

    #[test]
    fn branch_misprediction_ratio_is_zero_on_empty_runs() {
        let stats = ProcStats::default();
        assert_eq!(stats.branch_misprediction_ratio(), 0.0);
        let stats = ProcStats {
            branches: 8,
            branch_mispredicts: 2,
            ..ProcStats::default()
        };
        assert!((stats.branch_misprediction_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn simple_drain_is_free() {
        let mut core = ProcCore::new(&ProcessorConfig::Simple);
        let mut m = mem();
        core.execute(
            CpuId(0),
            &Op::Memory {
                addr: BlockAddr(1),
                kind: AccessKind::Read,
                dependent: false,
            },
            0,
            &mut m,
        );
        assert_eq!(core.drain(500), 0);
    }
}
