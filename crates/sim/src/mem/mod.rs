//! The memory hierarchy: cache arrays, MOSI snooping coherence, interconnect
//! and DRAM timing, plus the §3.3 perturbation hook.

mod cache;
pub mod filter;
mod system;

pub use cache::{CacheArray, CacheConfig, CoherenceState, Eviction};
pub use filter::SnoopFilter;
pub use system::{
    AccessOutcome, AccessSource, CoherenceProtocol, MemStats, MemoryConfig, MemorySystem,
    Perturbation,
};
