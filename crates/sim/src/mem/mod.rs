//! The memory hierarchy: cache arrays, MOSI/MESI/MOESI coherence over a
//! snooping bus or a home-node directory, interconnect and DRAM timing,
//! plus the §3.3 perturbation hook.

pub mod arena;
mod cache;
pub mod directory;
pub mod filter;
mod system;

pub use cache::{CacheArray, CacheConfig, CoherenceState, Eviction};
pub use directory::{home_of, Directory};
pub use filter::SnoopFilter;
pub use system::{
    AccessOutcome, AccessSource, CoherenceProtocol, MemStats, MemoryConfig, MemorySystem,
    Perturbation, ProbeStats,
};
