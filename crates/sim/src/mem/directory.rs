//! Directory-based coherence: exact per-block sharer tracking at a
//! per-region home node.
//!
//! Snooping broadcasts every coherence transaction to all nodes; even with
//! the [`SnoopFilter`](super::SnoopFilter) narrowing the scan, the protocol
//! is fundamentally a broadcast medium and its root-switch serialization
//! point couples every processor's timing. Past a few dozen nodes that is
//! neither how real machines are built nor affordable to simulate. The
//! directory organization instead assigns every block a **home node** (the
//! region hash modulo the node count, so homes interleave across the
//! machine) that records exactly which nodes hold a copy. A miss is a
//! point-to-point request to the home, which consults its sharer list and
//! forwards to the owner or answers from its memory controller — the
//! machine pays probes proportional to the *actual* sharer count, never the
//! node count.
//!
//! [`Directory`] is the bookkeeping half: a map from block address to an
//! exact sharer bitset, maintained at every L2 residency transition by the
//! same `note_fill`/`note_evict` call sites that maintain the snoop filter.
//! Because the set is exact (not a hashed summary), the candidate list it
//! hands the memory system equals the true holder set — debug builds verify
//! that against a full broadcast scan, the same differential discipline the
//! snoop filter uses. The protocol state machine itself (MOSI/MESI/MOESI
//! transitions) is unchanged from snooping, so a directory machine reaches
//! the same cache states as a snooping machine given the same accesses;
//! only timing and probe counts differ. `crates/sim/tests/coherence_diff.rs`
//! asserts exactly that.
//!
//! Like the filter, the directory is **derived state**: it is rebuilt from
//! restored cache contents after a checkpoint restore and never appears in
//! snapshot bytes. The only architectural state the directory organization
//! adds is the per-home occupancy registers, which live in the memory
//! system and are serialized only for directory configurations (snooping
//! snapshot encodings are byte-identical to before the directory existed).

use std::collections::HashMap;

use super::filter::{region_of, words_for};
use crate::ids::BlockAddr;

/// The home node of `addr` on a `cpus`-node machine: the region hash spread
/// over the nodes, so consecutive regions interleave their directory load.
#[inline]
pub fn home_of(addr: BlockAddr, cpus: usize) -> usize {
    region_of(addr) % cpus
}

/// Exact per-block sharer bitsets, conceptually sharded across the home
/// nodes (the shard key — [`home_of`] — matters only for timing, so one map
/// holds them all).
#[derive(Debug, Clone)]
pub struct Directory {
    /// Sharer bitset per block, one `u64` word per 64 nodes. Entries whose
    /// bits have all cleared are kept (zeroed) rather than removed, so the
    /// steady state never reallocates; equality treats them as absent.
    entries: HashMap<BlockAddr, Box<[u64]>>,
    /// Node count.
    cpus: usize,
    /// `u64` words per sharer bitset: `ceil(cpus / 64)`.
    words: usize,
    /// All-zero word group returned for blocks with no entry.
    zeros: Box<[u64]>,
}

impl Directory {
    /// Creates the directory for a machine with `cpus` nodes (all caches
    /// empty).
    pub fn new(cpus: usize) -> Self {
        let words = words_for(cpus);
        Directory {
            entries: HashMap::new(),
            cpus,
            words,
            zeros: vec![0; words].into_boxed_slice(),
        }
    }

    /// Node count the directory tracks.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// The exact sharer bitset for `addr`, one `u64` word per 64 nodes (bit
    /// `i` of word `i / 64` covers node `i`). Unlike the snoop filter's
    /// conservative region summary, a set bit here proves the node holds a
    /// valid copy of this very block.
    #[inline]
    pub fn candidates(&self, addr: BlockAddr) -> &[u64] {
        self.entries.get(&addr).map_or(&self.zeros, |s| s)
    }

    /// Whether node `cpu` holds a valid copy of `addr`.
    #[inline]
    pub fn is_sharer(&self, cpu: usize, addr: BlockAddr) -> bool {
        self.candidates(addr)[cpu / 64] & (1u64 << (cpu % 64)) != 0
    }

    /// Number of nodes holding a valid copy of `addr`.
    pub fn sharer_count(&self, addr: BlockAddr) -> u32 {
        self.candidates(addr).iter().map(|w| w.count_ones()).sum()
    }

    /// Records that node `cpu`'s L2 gained a block it did not hold before.
    #[inline]
    pub fn note_fill(&mut self, cpu: usize, addr: BlockAddr) {
        let words = self.words;
        let set = self
            .entries
            .entry(addr)
            .or_insert_with(|| vec![0; words].into_boxed_slice());
        let bit = 1u64 << (cpu % 64);
        debug_assert!(
            set[cpu / 64] & bit == 0,
            "directory fill for a node already recorded as a sharer"
        );
        set[cpu / 64] |= bit;
    }

    /// Records that node `cpu`'s L2 lost a block it held (eviction or
    /// invalidation of a resident copy).
    #[inline]
    pub fn note_evict(&mut self, cpu: usize, addr: BlockAddr) {
        let set = self
            .entries
            .get_mut(&addr)
            .expect("directory eviction for an untracked block");
        let bit = 1u64 << (cpu % 64);
        debug_assert!(
            set[cpu / 64] & bit != 0,
            "directory eviction for a node not recorded as a sharer"
        );
        set[cpu / 64] &= !bit;
    }

    /// Number of blocks with at least one recorded sharer (for tests).
    pub fn tracked_blocks(&self) -> usize {
        self.entries
            .values()
            .filter(|s| s.iter().any(|&w| w != 0))
            .count()
    }
}

/// Equality over the *live* sharer sets only: entries whose bits have all
/// cleared are bookkeeping residue (kept to avoid steady-state reallocation)
/// and must not distinguish a long-running directory from one just rebuilt
/// out of a checkpoint.
impl PartialEq for Directory {
    fn eq(&self, other: &Self) -> bool {
        let live = |d: &Self| {
            d.entries
                .iter()
                .filter(|(_, s)| s.iter().any(|&w| w != 0))
                .map(|(&a, s)| (a, s.clone()))
                .collect::<HashMap<_, _>>()
        };
        self.cpus == other.cpus && live(self) == live(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_evict_track_exact_sharers() {
        let mut d = Directory::new(64);
        let a = BlockAddr(0x40);
        assert_eq!(d.sharer_count(a), 0);
        d.note_fill(0, a);
        d.note_fill(63, a);
        d.note_fill(17, a);
        assert_eq!(d.sharer_count(a), 3);
        assert!(d.is_sharer(63, a) && !d.is_sharer(62, a));
        d.note_evict(63, a);
        assert_eq!(d.sharer_count(a), 2);
        assert!(!d.is_sharer(63, a));
    }

    #[test]
    fn wide_machines_split_sharers_across_words() {
        let mut d = Directory::new(128);
        let a = BlockAddr(7);
        d.note_fill(64, a);
        d.note_fill(127, a);
        assert_eq!(d.candidates(a).len(), 2);
        assert_eq!(d.candidates(a)[0], 0);
        assert_eq!(d.candidates(a)[1], (1 << 0) | (1 << 63));
    }

    #[test]
    fn zeroed_entries_do_not_break_equality() {
        let mut lived = Directory::new(8);
        let a = BlockAddr(1);
        let b = BlockAddr(2);
        lived.note_fill(3, a);
        lived.note_fill(5, b);
        lived.note_evict(5, b); // leaves a zeroed entry for `b`
        let mut rebuilt = Directory::new(8);
        rebuilt.note_fill(3, a);
        assert_eq!(lived, rebuilt);
        assert_eq!(lived.tracked_blocks(), 1);
    }

    #[test]
    fn homes_interleave_across_nodes() {
        let homes: std::collections::HashSet<usize> = (0..1024u64)
            .map(|i| home_of(BlockAddr(0x10_0000 + i * 64), 64))
            .collect();
        assert!(
            homes.len() > 48,
            "1024 blocks homed on only {} of 64 nodes",
            homes.len()
        );
    }
}
