//! Sharer-presence filter for the snooping coherence protocol.
//!
//! Every L2 miss in the baseline system broadcasts a snoop to all other
//! nodes, probing each remote L2 even though most blocks — thread-private
//! data above all — live in at most one or two caches. On the paper's
//! 16-processor OLTP workload roughly half of all misses find *no* remote
//! copy, yet still pay fifteen tag probes.
//!
//! [`SnoopFilter`] keeps a conservative residency summary: block addresses
//! hash into [`REGIONS`] regions, and for every region the filter maintains
//! a per-node count of resident L2 blocks plus a presence bitset (bit *i*
//! set while node *i* holds at least one block in the region). A miss then
//! consults only the nodes whose presence bit is set.
//!
//! The summary is **conservative and exact in the direction that matters**:
//! a set bit may be stale coverage from a different block in the same
//! region (hash collision), but a clear bit *proves* the node holds no copy
//! of the address. Skipped nodes would have answered `Invalid` — a probe
//! with no side effects and an invalidate that is a no-op — so filtered
//! snoops produce bit-identical protocol state, statistics, and timing to
//! the full broadcast. Debug builds verify exactly that: every filtered
//! miss is differentially checked against the full scan.
//!
//! The counts are maintained at every L2 residency transition (fill,
//! eviction, invalidation) and rebuilt from cache contents when a machine
//! is restored from a checkpoint, so the filter itself never appears in
//! snapshot bytes — checkpoint encodings and fingerprints are unchanged
//! from the broadcast implementation.
//!
//! The presence vector is a `u64`-word bitset ([`SnoopFilter::candidates`] returns
//! one word per 64 nodes), so filtering works at any machine size; a
//! 128-node configuration pays two words per region instead of losing the
//! filter. Directory-coherence configurations replace the filter with the
//! exact per-block [`Directory`](super::Directory) and construct it
//! [`disabled`](SnoopFilter::disabled).

use super::arena;
use crate::ids::BlockAddr;

/// Number of residency regions block addresses hash into. With the paper's
/// 4 MB L2s (65,536 blocks per node) a smaller table would saturate — every
/// bit set — and filter nothing; 65,536 regions keep private-data regions
/// mapped to their single user with high probability.
pub const REGIONS: usize = 65_536;

/// Maps a block address to its region. Block addresses are structured (the
/// workloads carve them from a handful of widely spaced bases), so a plain
/// low-bit mask would alias heavily; a Fibonacci multiplicative hash mixes
/// the whole word before the top 16 bits pick the region.
#[inline]
pub fn region_of(addr: BlockAddr) -> usize {
    (addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize
}

/// Number of `u64` words a presence bitset over `cpus` nodes needs.
#[inline]
pub(crate) fn words_for(cpus: usize) -> usize {
    cpus.div_ceil(64)
}

/// Takes a zero-filled `u64` buffer of exactly `len` elements, recycled
/// through the decode arena when a retired filter's array fits. Recycled
/// buffers are dirty, so the resize-from-empty writes the zeros.
fn zeroed_u64s(len: usize) -> Vec<u64> {
    match arena::take_u64s(len) {
        Some(mut buf) => {
            buf.resize(len, 0);
            buf
        }
        None => vec![0; len],
    }
}

/// [`zeroed_u64s`] for the count array's element type.
fn zeroed_u32s(len: usize) -> Vec<u32> {
    match arena::take_u32s(len) {
        Some(mut buf) => {
            buf.resize(len, 0);
            buf
        }
        None => vec![0; len],
    }
}

/// Conservative per-region summary of which nodes' L2 caches may hold a
/// block; see the module docs for the contract.
#[derive(Debug, PartialEq)]
pub struct SnoopFilter {
    /// Presence bitsets, `REGIONS × words` row-major by region: bit `i` of a
    /// region's word group is set iff `counts` for node `i` in the region is
    /// nonzero. Empty when the filter is disabled.
    bits: Vec<u64>,
    /// Resident-block counts, `REGIONS × cpus`, row-major by region. A
    /// count needs 32 bits: one region can in principle absorb an entire
    /// 65,536-block L2.
    counts: Vec<u32>,
    /// Node count; 0 marks the filter disabled (directory configurations).
    cpus: usize,
    /// `u64` words per region: `ceil(cpus / 64)`.
    words: usize,
}

/// A fork clones its parent's filter wholesale — at the paper's 16 CPUs
/// that is a 4 MB count array plus a 512 KB presence bitset, far and away
/// the largest buffers a fork allocates once the line arrays are
/// copy-on-write. Route both through the decode arena so steady-state
/// sweep launches recycle a retired fork's arrays instead of hitting the
/// allocator per fork.
impl Clone for SnoopFilter {
    fn clone(&self) -> Self {
        let mut bits = (!self.bits.is_empty())
            .then(|| arena::take_u64s(self.bits.len()))
            .flatten()
            .unwrap_or_default();
        bits.extend_from_slice(&self.bits);
        let mut counts = (!self.counts.is_empty())
            .then(|| arena::take_u32s(self.counts.len()))
            .flatten()
            .unwrap_or_default();
        counts.extend_from_slice(&self.counts);
        SnoopFilter {
            bits,
            counts,
            cpus: self.cpus,
            words: self.words,
        }
    }
}

impl Drop for SnoopFilter {
    fn drop(&mut self) {
        arena::give_u64s(std::mem::take(&mut self.bits));
        arena::give_u32s(std::mem::take(&mut self.counts));
    }
}

impl SnoopFilter {
    /// Creates the filter for a machine with `cpus` nodes (all caches
    /// empty). Works at any node count; the presence bitset grows by one
    /// `u64` word per region per 64 nodes.
    pub fn new(cpus: usize) -> Self {
        let words = words_for(cpus);
        SnoopFilter {
            bits: zeroed_u64s(REGIONS * words),
            counts: zeroed_u32s(REGIONS * cpus),
            cpus,
            words,
        }
    }

    /// A permanently disabled filter that records nothing — the placeholder
    /// used by directory-coherence memory systems, which track residency in
    /// the exact [`Directory`](super::Directory) instead.
    pub fn disabled() -> Self {
        SnoopFilter {
            bits: Vec::new(),
            counts: Vec::new(),
            cpus: 0,
            words: 0,
        }
    }

    /// Whether the filter is tracking residency (always true for filters
    /// built with [`Self::new`]; false only for [`Self::disabled`]).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cpus != 0
    }

    /// The presence bitset for `addr`'s region, one `u64` word per 64 nodes
    /// (bit `i` of word `i / 64` covers node `i`): only nodes with their bit
    /// set can hold the block. Meaningless (always call [`Self::enabled`]
    /// first) on a disabled filter.
    #[inline]
    pub fn candidates(&self, addr: BlockAddr) -> &[u64] {
        debug_assert!(self.enabled());
        let r = region_of(addr);
        &self.bits[r * self.words..(r + 1) * self.words]
    }

    /// Whether node `cpu`'s presence bit is set for `addr`'s region.
    #[inline]
    pub fn may_hold(&self, cpu: usize, addr: BlockAddr) -> bool {
        self.candidates(addr)[cpu / 64] & (1u64 << (cpu % 64)) != 0
    }

    /// Records that node `cpu`'s L2 gained a block it did not hold before.
    #[inline]
    pub fn note_fill(&mut self, cpu: usize, addr: BlockAddr) {
        if !self.enabled() {
            return;
        }
        let r = region_of(addr);
        let c = &mut self.counts[r * self.cpus + cpu];
        *c += 1;
        if *c == 1 {
            self.bits[r * self.words + cpu / 64] |= 1u64 << (cpu % 64);
        }
    }

    /// [`Self::note_fill`] with the region already hashed — the parallel
    /// sectioned decode computes `region_of` on its worker threads while
    /// walking each node's resident lines, and the (sequential) merge into
    /// the filter then only touches the count and bit arrays. State after
    /// the merge is identical to calling `note_fill` per block: counts sum
    /// and the presence bit is set iff a region count is nonzero,
    /// regardless of call order.
    #[inline]
    pub(crate) fn note_region_fill(&mut self, cpu: usize, region: usize) {
        if !self.enabled() {
            return;
        }
        debug_assert!(region < REGIONS);
        let c = &mut self.counts[region * self.cpus + cpu];
        *c += 1;
        if *c == 1 {
            self.bits[region * self.words + cpu / 64] |= 1u64 << (cpu % 64);
        }
    }

    /// Records that node `cpu`'s L2 lost a block it held (eviction or
    /// invalidation of a resident copy).
    #[inline]
    pub fn note_evict(&mut self, cpu: usize, addr: BlockAddr) {
        if !self.enabled() {
            return;
        }
        let r = region_of(addr);
        let c = &mut self.counts[r * self.cpus + cpu];
        debug_assert!(*c > 0, "evicting from an empty region summary");
        *c -= 1;
        if *c == 0 {
            self.bits[r * self.words + cpu / 64] &= !(1u64 << (cpu % 64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects the candidate set as a mask over the first 128 nodes, for
    /// compact assertions.
    fn mask(f: &SnoopFilter, addr: BlockAddr) -> u128 {
        let mut m = 0u128;
        for (w, &bits) in f.candidates(addr).iter().enumerate() {
            m |= u128::from(bits) << (64 * w);
        }
        m
    }

    #[test]
    fn fill_sets_and_evict_clears_presence() {
        let mut f = SnoopFilter::new(4);
        let a = BlockAddr(0x1234);
        assert_eq!(mask(&f, a), 0);
        f.note_fill(2, a);
        assert_eq!(mask(&f, a), 0b0100);
        f.note_fill(0, a);
        assert_eq!(mask(&f, a), 0b0101);
        f.note_evict(2, a);
        assert_eq!(mask(&f, a), 0b0001);
        f.note_evict(0, a);
        assert_eq!(mask(&f, a), 0);
    }

    #[test]
    fn colliding_blocks_keep_the_bit_until_both_leave() {
        let mut f = SnoopFilter::new(2);
        // Two distinct blocks in the same region (same address → same
        // region trivially; different addresses may or may not collide, so
        // use the same address twice as the canonical collision).
        let a = BlockAddr(0xAB);
        f.note_fill(1, a);
        f.note_fill(1, a);
        f.note_evict(1, a);
        assert_eq!(mask(&f, a), 0b10, "one resident block remains");
        f.note_evict(1, a);
        assert_eq!(mask(&f, a), 0);
    }

    #[test]
    fn wide_machines_use_multiple_words() {
        let mut f = SnoopFilter::new(128);
        assert!(f.enabled());
        let a = BlockAddr(0xF00D);
        assert_eq!(f.candidates(a).len(), 2);
        f.note_fill(0, a);
        f.note_fill(63, a);
        f.note_fill(64, a);
        f.note_fill(127, a);
        assert_eq!(mask(&f, a), (1 << 0) | (1 << 63) | (1 << 64) | (1 << 127));
        assert!(f.may_hold(64, a) && f.may_hold(127, a));
        f.note_evict(64, a);
        assert!(!f.may_hold(64, a));
        assert_eq!(mask(&f, a), (1 << 0) | (1 << 63) | (1 << 127));
    }

    #[test]
    fn odd_node_counts_round_words_up() {
        let f = SnoopFilter::new(17);
        assert!(f.enabled());
        assert_eq!(f.candidates(BlockAddr(1)).len(), 1);
        let f = SnoopFilter::new(65);
        assert_eq!(f.candidates(BlockAddr(1)).len(), 2);
    }

    #[test]
    fn disabled_filter_records_nothing() {
        let mut f = SnoopFilter::disabled();
        assert!(!f.enabled());
        f.note_fill(3, BlockAddr(1)); // must not panic or record
        f.note_evict(3, BlockAddr(1));
        assert!(!f.enabled());
    }

    #[test]
    fn region_hash_spreads_structured_addresses() {
        // The workload generators use widely spaced bases with small
        // offsets; the hash must not funnel them into a few regions.
        let mut regions: Vec<usize> = (0..4096u64)
            .map(|i| region_of(BlockAddr(0x10_0000_0000 + i)))
            .collect();
        regions.sort_unstable();
        regions.dedup();
        assert!(
            regions.len() > 3500,
            "4096 consecutive blocks landed in only {} regions",
            regions.len()
        );
    }
}
