//! Sharer-presence filter for the snooping coherence protocol.
//!
//! Every L2 miss in the baseline system broadcasts a snoop to all other
//! nodes, probing each remote L2 even though most blocks — thread-private
//! data above all — live in at most one or two caches. On the paper's
//! 16-processor OLTP workload roughly half of all misses find *no* remote
//! copy, yet still pay fifteen tag probes.
//!
//! [`SnoopFilter`] keeps a conservative residency summary: block addresses
//! hash into [`REGIONS`] regions, and for every region the filter maintains
//! a per-node count of resident L2 blocks plus a 16-bit presence vector
//! (bit *i* set while node *i* holds at least one block in the region). A
//! miss then consults only the nodes whose presence bit is set.
//!
//! The summary is **conservative and exact in the direction that matters**:
//! a set bit may be stale coverage from a different block in the same
//! region (hash collision), but a clear bit *proves* the node holds no copy
//! of the address. Skipped nodes would have answered `Invalid` — a probe
//! with no side effects and an invalidate that is a no-op — so filtered
//! snoops produce bit-identical protocol state, statistics, and timing to
//! the full broadcast. Debug builds verify exactly that: every filtered
//! miss is differentially checked against the full scan.
//!
//! The counts are maintained at every L2 residency transition (fill,
//! eviction, invalidation) and rebuilt from cache contents when a machine
//! is restored from a checkpoint, so the filter itself never appears in
//! snapshot bytes — checkpoint encodings and fingerprints are unchanged
//! from the broadcast implementation.
//!
//! The presence vector is a `u16`, so filtering engages only on machines
//! with at most 16 nodes (the paper's target size); larger configurations
//! fall back to the full broadcast scan transparently.

use crate::ids::BlockAddr;

/// Number of residency regions block addresses hash into. With the paper's
/// 4 MB L2s (65,536 blocks per node) a smaller table would saturate — every
/// bit set — and filter nothing; 65,536 regions keep private-data regions
/// mapped to their single user with high probability.
pub const REGIONS: usize = 65_536;

/// Largest node count the `u16` presence vector can summarize; bigger
/// machines use the unfiltered broadcast path.
pub const MAX_FILTERED_CPUS: usize = 16;

/// Maps a block address to its region. Block addresses are structured (the
/// workloads carve them from a handful of widely spaced bases), so a plain
/// low-bit mask would alias heavily; a Fibonacci multiplicative hash mixes
/// the whole word before the top 16 bits pick the region.
#[inline]
pub fn region_of(addr: BlockAddr) -> usize {
    (addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize
}

/// Conservative per-region summary of which nodes' L2 caches may hold a
/// block; see the module docs for the contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SnoopFilter {
    /// Presence vector per region: bit `i` set iff `counts` for node `i` in
    /// the region is nonzero. Empty when the filter is disabled.
    masks: Vec<u16>,
    /// Resident-block counts, `REGIONS × cpus`, row-major by region. A
    /// count needs 32 bits: one region can in principle absorb an entire
    /// 65,536-block L2.
    counts: Vec<u32>,
    /// Node count; 0 marks the filter disabled (> [`MAX_FILTERED_CPUS`]).
    cpus: usize,
}

impl SnoopFilter {
    /// Creates the filter for a machine with `cpus` nodes (all caches
    /// empty). Machines with more than [`MAX_FILTERED_CPUS`] nodes get a
    /// disabled filter that records nothing.
    pub fn new(cpus: usize) -> Self {
        if cpus > MAX_FILTERED_CPUS {
            return SnoopFilter {
                masks: Vec::new(),
                counts: Vec::new(),
                cpus: 0,
            };
        }
        SnoopFilter {
            masks: vec![0; REGIONS],
            counts: vec![0; REGIONS * cpus],
            cpus,
        }
    }

    /// Whether the filter is tracking residency (node count within the
    /// presence vector's reach).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cpus != 0
    }

    /// The presence vector for `addr`'s region: only nodes with their bit
    /// set can hold the block. Meaningless (always call [`Self::enabled`]
    /// first) on a disabled filter.
    #[inline]
    pub fn candidates(&self, addr: BlockAddr) -> u16 {
        debug_assert!(self.enabled());
        self.masks[region_of(addr)]
    }

    /// Records that node `cpu`'s L2 gained a block it did not hold before.
    #[inline]
    pub fn note_fill(&mut self, cpu: usize, addr: BlockAddr) {
        if !self.enabled() {
            return;
        }
        let r = region_of(addr);
        let c = &mut self.counts[r * self.cpus + cpu];
        *c += 1;
        if *c == 1 {
            self.masks[r] |= 1u16 << cpu;
        }
    }

    /// Records that node `cpu`'s L2 lost a block it held (eviction or
    /// invalidation of a resident copy).
    #[inline]
    pub fn note_evict(&mut self, cpu: usize, addr: BlockAddr) {
        if !self.enabled() {
            return;
        }
        let r = region_of(addr);
        let c = &mut self.counts[r * self.cpus + cpu];
        debug_assert!(*c > 0, "evicting from an empty region summary");
        *c -= 1;
        if *c == 0 {
            self.masks[r] &= !(1u16 << cpu);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_sets_and_evict_clears_presence() {
        let mut f = SnoopFilter::new(4);
        let a = BlockAddr(0x1234);
        assert_eq!(f.candidates(a), 0);
        f.note_fill(2, a);
        assert_eq!(f.candidates(a), 0b0100);
        f.note_fill(0, a);
        assert_eq!(f.candidates(a), 0b0101);
        f.note_evict(2, a);
        assert_eq!(f.candidates(a), 0b0001);
        f.note_evict(0, a);
        assert_eq!(f.candidates(a), 0);
    }

    #[test]
    fn colliding_blocks_keep_the_bit_until_both_leave() {
        let mut f = SnoopFilter::new(2);
        // Two distinct blocks in the same region (same address → same
        // region trivially; different addresses may or may not collide, so
        // use the same address twice as the canonical collision).
        let a = BlockAddr(0xAB);
        f.note_fill(1, a);
        f.note_fill(1, a);
        f.note_evict(1, a);
        assert_eq!(f.candidates(a), 0b10, "one resident block remains");
        f.note_evict(1, a);
        assert_eq!(f.candidates(a), 0);
    }

    #[test]
    fn disabled_beyond_sixteen_cpus() {
        let f = SnoopFilter::new(17);
        assert!(!f.enabled());
        let mut f = f;
        f.note_fill(3, BlockAddr(1)); // must not panic or record
        assert!(!f.enabled());
        assert!(SnoopFilter::new(16).enabled());
    }

    #[test]
    fn region_hash_spreads_structured_addresses() {
        // The workload generators use widely spaced bases with small
        // offsets; the hash must not funnel them into a few regions.
        let mut regions: Vec<usize> = (0..4096u64)
            .map(|i| region_of(BlockAddr(0x10_0000_0000 + i)))
            .collect();
        regions.sort_unstable();
        regions.dedup();
        assert!(
            regions.len() > 3500,
            "4096 consecutive blocks landed in only {} regions",
            regions.len()
        );
    }
}
