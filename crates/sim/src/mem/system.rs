//! The coherent memory system: per-node L1 I/D and L2 caches, a snooping
//! MOSI protocol over a shared interconnect (or a directory organization on
//! large machines), DRAM, and the paper's §3.3 timing-perturbation hook.
//!
//! Latencies follow §3.2.1 of the paper: with a 50 ns network traversal and
//! 80 ns DRAM, a block comes from memory in 180 ns and from another cache in
//! 125 ns (two traversals plus the 80 ns/25 ns provider times). Under the
//! directory variants a cache-to-cache transfer takes three traversals (via
//! the block's home node) instead of two, and transactions serialize at the
//! per-region home instead of one global root switch.

use super::cache::{CacheArray, CacheConfig, CoherenceState};
use super::directory::{home_of, Directory};
use super::filter::{region_of, words_for, SnoopFilter};
use crate::ids::{BlockAddr, CpuId, Cycle, Nanos};
use crate::ops::AccessKind;
use crate::rng::Xoshiro256StarStar;
use crate::SimError;

/// Which invalidation-based coherence protocol keeps the caches coherent,
/// and over which transport.
///
/// The paper's target uses MOSI snooping (§3.2.1); its simulator supports a
/// broad range of protocols (§3.2.3), and the ablation benches compare the
/// three classic variants. The `Dir*` variants run the *same* protocol
/// state machine over a per-region home-node directory (see
/// [`Directory`](super::Directory)) instead of a broadcast bus — the
/// scalable organization for machines past the paper's 16 nodes. Directory
/// and snooping variants are distinct here (rather than a separate config
/// field) so every derived configuration fingerprint, golden key, and
/// checkpoint-cache key distinguishes them automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CoherenceProtocol {
    /// Modified/Owned/Shared/Invalid — dirty sharing, cache-to-cache supply
    /// from the owner (the paper's protocol).
    #[default]
    Mosi,
    /// Modified/Exclusive/Shared/Invalid — clean-exclusive state with silent
    /// upgrades; dirty data is written back to memory when another node
    /// reads it.
    Mesi,
    /// The union: clean-exclusive silent upgrades *and* dirty sharing.
    Moesi,
    /// MOSI over a home-node directory instead of a snooping bus.
    DirMosi,
    /// MESI over a home-node directory.
    DirMesi,
    /// MOESI over a home-node directory.
    DirMoesi,
}

impl CoherenceProtocol {
    /// The underlying protocol state machine, with the transport stripped:
    /// `DirMesi.base() == Mesi`, `Mesi.base() == Mesi`.
    #[inline]
    pub fn base(self) -> Self {
        match self {
            CoherenceProtocol::DirMosi => CoherenceProtocol::Mosi,
            CoherenceProtocol::DirMesi => CoherenceProtocol::Mesi,
            CoherenceProtocol::DirMoesi => CoherenceProtocol::Moesi,
            other => other,
        }
    }

    /// The same protocol state machine over the directory transport:
    /// `Mesi.directory() == DirMesi`, idempotent on `Dir*` variants.
    #[inline]
    pub fn directory(self) -> Self {
        match self.base() {
            CoherenceProtocol::Mosi => CoherenceProtocol::DirMosi,
            CoherenceProtocol::Mesi => CoherenceProtocol::DirMesi,
            _ => CoherenceProtocol::DirMoesi,
        }
    }

    /// Whether coherence transactions route through home-node directories
    /// rather than a snooping broadcast.
    #[inline]
    pub fn is_directory(self) -> bool {
        matches!(
            self,
            CoherenceProtocol::DirMosi | CoherenceProtocol::DirMesi | CoherenceProtocol::DirMoesi
        )
    }

    /// Whether the protocol grants Exclusive on a read miss with no other
    /// sharers.
    #[inline]
    pub fn has_exclusive(self) -> bool {
        matches!(
            self.base(),
            CoherenceProtocol::Mesi | CoherenceProtocol::Moesi
        )
    }

    /// Whether a dirty block may stay dirty-shared (Owned) when another node
    /// reads it; otherwise the read forces a writeback and the block goes
    /// Shared-clean.
    #[inline]
    pub fn has_owned(self) -> bool {
        matches!(
            self.base(),
            CoherenceProtocol::Mosi | CoherenceProtocol::Moesi
        )
    }
}

/// Latency and geometry configuration for the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryConfig {
    /// L1 instruction-cache geometry (paper: 128 KB, 4-way, 64 B).
    pub l1i: CacheConfig,
    /// L1 data-cache geometry (paper: 128 KB, 4-way, 64 B).
    pub l1d: CacheConfig,
    /// Unified L2 geometry (paper: 4 MB, 4-way, 64 B).
    pub l2: CacheConfig,
    /// L1 hit latency (ns).
    pub l1_hit_ns: Nanos,
    /// L2 hit latency (ns).
    pub l2_hit_ns: Nanos,
    /// One interconnect traversal (paper: 50 ns, includes wire, sync,
    /// routing).
    pub hop_ns: Nanos,
    /// Time for a remote cache owner to provide data (paper: 25 ns).
    pub cache_provide_ns: Nanos,
    /// Time for a memory controller to provide data (paper: 80 ns).
    pub mem_provide_ns: Nanos,
    /// Address-bus/root-switch occupancy per coherence transaction; the
    /// serialization point that couples processors' timing.
    pub bus_occupancy_ns: Nanos,
    /// Latency of an ownership upgrade (S/O → M) broadcast.
    pub upgrade_ns: Nanos,
    /// The snooping protocol in force.
    pub protocol: CoherenceProtocol,
}

impl MemoryConfig {
    /// The paper's §3.2.1 E10000-like hierarchy.
    pub fn hpca2003() -> Self {
        MemoryConfig {
            l1i: CacheConfig {
                size_bytes: 128 * 1024,
                associativity: 4,
                block_bytes: 64,
            },
            l1d: CacheConfig {
                size_bytes: 128 * 1024,
                associativity: 4,
                block_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                associativity: 4,
                block_bytes: 64,
            },
            l1_hit_ns: 1,
            l2_hit_ns: 12,
            hop_ns: 50,
            cache_provide_ns: 25,
            mem_provide_ns: 80,
            bus_occupancy_ns: 2,
            upgrade_ns: 50,
            protocol: CoherenceProtocol::Mosi,
        }
    }

    /// Validates cache geometries and latencies.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if a cache geometry is
    /// inconsistent or any latency is zero where a zero would stall progress.
    pub fn validate(&self) -> Result<(), SimError> {
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        if self.l1_hit_ns == 0 {
            return Err(SimError::InvalidConfig {
                what: "l1_hit_ns must be >= 1 to guarantee time progress".into(),
            });
        }
        Ok(())
    }

    /// End-to-end latency of a miss served by another cache
    /// (paper: 125 ns).
    pub fn cache_to_cache_ns(&self) -> Nanos {
        2 * self.hop_ns + self.cache_provide_ns
    }

    /// End-to-end latency of a miss served by memory (paper: 180 ns).
    pub fn memory_fetch_ns(&self) -> Nanos {
        2 * self.hop_ns + self.mem_provide_ns
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessSource {
    /// L1 hit.
    L1,
    /// Local L2 hit with sufficient permission.
    L2,
    /// Ownership upgrade (block present, write permission acquired).
    Upgrade,
    /// Cache-to-cache transfer from a remote owner.
    RemoteCache,
    /// Fetched from a memory controller.
    Memory,
}

/// Timing outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total latency in ns (== cycles at 1 GHz), including bus wait and
    /// perturbation.
    pub latency: Nanos,
    /// Where the data came from.
    pub source: AccessSource,
}

/// Aggregate memory-system counters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemStats {
    /// L1 instruction-cache hits.
    pub l1i_hits: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache hits.
    pub l1d_hits: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 hits (with sufficient permission).
    pub l2_hits: u64,
    /// L2 misses (coherence transactions issued).
    pub l2_misses: u64,
    /// Ownership upgrades that required a bus broadcast (S/O → M).
    pub upgrades: u64,
    /// Silent Exclusive → Modified upgrades (MESI/MOESI only).
    pub silent_upgrades: u64,
    /// Misses served by a remote cache owner.
    pub cache_to_cache: u64,
    /// Misses served by memory.
    pub memory_fetches: u64,
    /// Dirty blocks written back on eviction.
    pub writebacks: u64,
    /// Remote copies invalidated by stores/upgrades.
    pub invalidations: u64,
    /// Total ns spent waiting for the snooping bus.
    pub bus_wait_ns: u64,
    /// Total perturbation ns injected (§3.3).
    pub perturbation_ns: u64,
}

impl MemStats {
    /// Total data-cache accesses observed.
    pub fn data_accesses(&self) -> u64 {
        self.l1d_hits + self.l1d_misses
    }

    /// Total instruction fetches observed.
    pub fn instruction_fetches(&self) -> u64 {
        self.l1i_hits + self.l1i_misses
    }

    /// L1 data-cache miss ratio; 0.0 for a run with no data accesses.
    pub fn l1d_miss_ratio(&self) -> f64 {
        let total = self.data_accesses();
        if total == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / total as f64
        }
    }

    /// L1 instruction-cache miss ratio; 0.0 for a run with no fetches.
    pub fn l1i_miss_ratio(&self) -> f64 {
        let total = self.instruction_fetches();
        if total == 0 {
            0.0
        } else {
            self.l1i_misses as f64 / total as f64
        }
    }

    /// L2 miss ratio over data + instruction L2 lookups; 0.0 for a run with
    /// no L2 traffic.
    pub fn l2_miss_ratio(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses + self.upgrades;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }
}

/// Per-node cache stack.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Node {
    l1i: CacheArray,
    l1d: CacheArray,
    l2: CacheArray,
}

/// The §3.3 pseudo-random timing perturbation: a uniform integer in
/// `[0, max_ns]` added to every L2 miss. `max_ns = 0` restores the
/// deterministic baseline simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Perturbation {
    max_ns: Nanos,
    rng: Xoshiro256StarStar,
}

impl Perturbation {
    /// Creates the perturbation source. The paper's default is `max_ns = 4`;
    /// each run of a multi-simulation experiment uses a unique `seed`.
    pub fn new(max_ns: Nanos, seed: u64) -> Self {
        Perturbation {
            max_ns,
            rng: Xoshiro256StarStar::new(seed ^ 0x5EED_CAFE_F00D_D00D),
        }
    }

    /// Disabled perturbation (deterministic baseline).
    pub fn disabled() -> Self {
        Perturbation::new(0, 0)
    }

    /// Maximum perturbation magnitude in ns.
    pub fn max_ns(&self) -> Nanos {
        self.max_ns
    }

    /// Draws the next perturbation value: uniform in `[0, max_ns]`, exactly
    /// zero when disabled. Public so distribution tests can sample the
    /// stream directly; the memory system draws once per L2 miss.
    #[inline]
    pub fn draw(&mut self) -> Nanos {
        if self.max_ns == 0 {
            0
        } else {
            self.rng.next_below(self.max_ns + 1)
        }
    }
}

/// Interconnect-probe counters: how many remote tag probes (owner scans)
/// and point-to-point invalidation messages the coherence transport issued.
/// Purely diagnostic — the broadcast-vs-filtered-vs-directory comparison in
/// EXPERIMENTS.md is built from these. Never serialized, never part of run
/// results, and excluded from machine equality (always-equal `PartialEq`,
/// like the invariant monitor's scratch state), so a restored machine whose
/// counters restart at zero still compares equal to the live one.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeStats {
    /// Remote L2 tag probes issued while locating an owner on a miss.
    pub scan_probes: u64,
    /// Point-to-point invalidation messages sent to candidate holders.
    pub invalidate_probes: u64,
}

impl PartialEq for ProbeStats {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for ProbeStats {}

/// Reusable candidate-bitset buffer for scans that mutate the machine while
/// iterating. Sized once at construction (`ceil(cpus / 64)` words), so the
/// steady-state hot path never allocates. Contents are dead outside a single
/// scan; equality always holds so leftover bits never distinguish machines.
#[derive(Debug, Clone, Default)]
struct ScanScratch(Vec<u64>);

impl PartialEq for ScanScratch {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// The full coherent memory system shared by all processors.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemorySystem {
    config: MemoryConfig,
    nodes: Vec<Node>,
    bus_free_at: Cycle,
    perturbation: Perturbation,
    stats: MemStats,
    /// Timestamp of the most recent access; the bus model requires callers
    /// to present non-decreasing timestamps (checked in debug builds).
    last_access: Cycle,
    /// Conservative L2-residency summary narrowing snoop scans; derived
    /// state, maintained at every residency transition and rebuilt on
    /// checkpoint restore (never serialized, so snapshot bytes are those of
    /// the broadcast implementation). Disabled under directory protocols,
    /// which track residency exactly in `directory` instead.
    filter: SnoopFilter,
    /// Exact per-block sharer directory (`Some` iff the protocol is a
    /// `Dir*` variant). Derived state like the filter: rebuilt from cache
    /// contents on restore, never serialized.
    directory: Option<Directory>,
    /// Per-home occupancy registers for the directory transport (empty for
    /// snooping protocols, which serialize at the single root switch via
    /// `bus_free_at`). Architectural timing state: serialized, but only for
    /// directory configurations, so snooping snapshot encodings are
    /// byte-identical to the pre-directory implementation.
    home_free_at: Vec<Cycle>,
    /// Scratch bitset for candidate scans (see [`ScanScratch`]).
    scan_scratch: ScanScratch,
    /// Diagnostic probe counters (see [`ProbeStats`]).
    probes: ProbeStats,
}

impl MemorySystem {
    /// Builds the memory system for `cpus` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `cpus == 0` or the memory
    /// configuration is inconsistent.
    pub fn new(
        config: MemoryConfig,
        cpus: usize,
        perturbation: Perturbation,
    ) -> Result<Self, SimError> {
        if cpus == 0 {
            return Err(SimError::InvalidConfig {
                what: "memory system needs at least one node".into(),
            });
        }
        config.validate()?;
        let mut nodes = Vec::with_capacity(cpus);
        for _ in 0..cpus {
            nodes.push(Node {
                l1i: CacheArray::new(config.l1i)?,
                l1d: CacheArray::new(config.l1d)?,
                l2: CacheArray::new(config.l2)?,
            });
        }
        let dir = config.protocol.is_directory();
        Ok(MemorySystem {
            config,
            nodes,
            bus_free_at: 0,
            perturbation,
            stats: MemStats::default(),
            last_access: 0,
            filter: if dir {
                SnoopFilter::disabled()
            } else {
                SnoopFilter::new(cpus)
            },
            directory: dir.then(|| Directory::new(cpus)),
            home_free_at: if dir { vec![0; cpus] } else { Vec::new() },
            scan_scratch: ScanScratch(Vec::with_capacity(words_for(cpus))),
            probes: ProbeStats::default(),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets counters (e.g. at the end of warmup) without touching cache
    /// contents. The diagnostic probe counters reset too, so measurement
    /// intervals report measurement probes only.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.probes = ProbeStats::default();
    }

    /// Replaces the perturbation stream — the per-run knob of §3.3. Cache
    /// contents are untouched, so two machines that differ only here start
    /// from identical initial conditions.
    pub fn set_perturbation(&mut self, perturbation: Perturbation) {
        self.perturbation = perturbation;
    }

    /// Performs a data access by `cpu` to `addr` at time `now`.
    ///
    /// Returns the access latency (ns) and the level that supplied the data.
    /// State transitions follow the MOSI snooping protocol; L2 misses receive
    /// the configured pseudo-random perturbation.
    pub fn access(
        &mut self,
        cpu: CpuId,
        addr: BlockAddr,
        kind: AccessKind,
        now: Cycle,
    ) -> AccessOutcome {
        let n = cpu.index();
        // 1. L1D.
        let l1_state = self.nodes[n].l1d.touch(addr);
        let l1_ok = match kind {
            AccessKind::Read => l1_state.is_readable(),
            AccessKind::Write => l1_state.is_writable(),
        };
        if l1_ok {
            self.stats.l1d_hits += 1;
            return AccessOutcome {
                latency: self.config.l1_hit_ns,
                source: AccessSource::L1,
            };
        }
        self.stats.l1d_misses += 1;
        let outcome = self.l2_access(n, addr, kind, now, false);
        // Fill L1D with the resulting permission.
        let l2_state = self.nodes[n].l2.probe(addr);
        let l1_fill = if l2_state.is_writable() {
            CoherenceState::Modified
        } else {
            CoherenceState::Shared
        };
        self.nodes[n].l1d.insert(addr, l1_fill);
        outcome
    }

    /// Performs an instruction fetch by `cpu` of `code` at time `now`.
    ///
    /// An L1I hit is free (fully pipelined); a miss pays the L2/coherence
    /// path like a data read.
    pub fn fetch(&mut self, cpu: CpuId, code: BlockAddr, now: Cycle) -> Nanos {
        let n = cpu.index();
        if self.nodes[n].l1i.touch(code).is_readable() {
            self.stats.l1i_hits += 1;
            return 0;
        }
        self.stats.l1i_misses += 1;
        let outcome = self.l2_access(n, code, AccessKind::Read, now, true);
        self.nodes[n].l1i.insert(code, CoherenceState::Shared);
        outcome.latency
    }

    /// L2-and-below access path. `instruction` only routes stats.
    fn l2_access(
        &mut self,
        n: usize,
        addr: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        _instruction: bool,
    ) -> AccessOutcome {
        let l2_state = self.nodes[n].l2.touch(addr);
        match kind {
            AccessKind::Read if l2_state.is_readable() => {
                self.stats.l2_hits += 1;
                return AccessOutcome {
                    latency: self.config.l2_hit_ns,
                    source: AccessSource::L2,
                };
            }
            AccessKind::Write if l2_state.is_writable() => {
                self.stats.l2_hits += 1;
                return AccessOutcome {
                    latency: self.config.l2_hit_ns,
                    source: AccessSource::L2,
                };
            }
            AccessKind::Write if l2_state == CoherenceState::Exclusive => {
                // Clean-exclusive: the defining MESI/MOESI optimization — a
                // store needs no bus transaction at all.
                self.stats.silent_upgrades += 1;
                self.nodes[n].l2.set_state(addr, CoherenceState::Modified);
                return AccessOutcome {
                    latency: self.config.l2_hit_ns,
                    source: AccessSource::L2,
                };
            }
            AccessKind::Write if l2_state.is_readable() => {
                // S or O: ownership upgrade — invalidate remote copies. On
                // the snooping bus the upgrade is one broadcast; under a
                // directory the requester asks the home, which invalidates
                // the exact sharers point-to-point and acks (two traversals).
                self.stats.upgrades += 1;
                let latency = if self.config.protocol.is_directory() {
                    let wait = self.arbitrate_home(home_of(addr, self.nodes.len()), now);
                    wait + 2 * self.config.hop_ns + self.config.l2_hit_ns
                } else {
                    let wait = self.arbitrate_bus(now);
                    wait + self.config.upgrade_ns + self.config.l2_hit_ns
                };
                self.invalidate_others(n, addr);
                self.nodes[n].l2.set_state(addr, CoherenceState::Modified);
                return AccessOutcome {
                    latency,
                    source: AccessSource::Upgrade,
                };
            }
            _ => {}
        }

        // Full L2 miss: one coherence transaction. Snooping serializes at
        // the root switch; the directory serializes at the block's home
        // node, so transactions to different regions proceed independently.
        self.stats.l2_misses += 1;
        let directory = self.config.protocol.is_directory();
        let wait = if directory {
            self.arbitrate_home(home_of(addr, self.nodes.len()), now)
        } else {
            self.arbitrate_bus(now)
        };
        let pert = self.perturbation.draw();
        self.stats.perturbation_ns += pert;

        // Locate a remote owner (M/O/E copy) and whether any copy exists,
        // probing only the candidate holders: the snoop filter's region
        // summary (conservative, clear bit proves absence) or the
        // directory's exact sharer set. Differentially checked against the
        // full broadcast in debug builds either way.
        let (owner, any_remote_copy) = self.scan_candidates(n, addr);

        // Data supply: cache-to-cache is two traversals on the snooping bus
        // (owner overhears the broadcast) but three via a directory (the
        // home forwards the request to the owner). A home-node memory fetch
        // costs the same two traversals as the snooping bus: the home *is*
        // the memory controller for its region.
        let (provide, source) = match owner {
            Some(_) => {
                self.stats.cache_to_cache += 1;
                let forward_hop = if directory { self.config.hop_ns } else { 0 };
                (
                    forward_hop + self.config.cache_provide_ns,
                    AccessSource::RemoteCache,
                )
            }
            None => {
                self.stats.memory_fetches += 1;
                (self.config.mem_provide_ns, AccessSource::Memory)
            }
        };
        let latency = wait + 2 * self.config.hop_ns + provide + pert;

        // Protocol state transitions.
        let my_new_state = match kind {
            AccessKind::Read => {
                if let Some(o) = owner {
                    match self.nodes[o].l2.probe(addr) {
                        CoherenceState::Modified => {
                            if self.config.protocol.has_owned() {
                                // MOSI/MOESI: the dirty owner keeps supplying.
                                self.nodes[o].l2.set_state(addr, CoherenceState::Owned);
                            } else {
                                // MESI: the read forces a writeback; both
                                // copies end up Shared-clean.
                                self.stats.writebacks += 1;
                                self.nodes[o].l2.set_state(addr, CoherenceState::Shared);
                            }
                            // Its L1 copy loses write permission.
                            downgrade_l1(&mut self.nodes[o], addr);
                        }
                        CoherenceState::Exclusive => {
                            // Clean-exclusive supplier downgrades silently.
                            self.nodes[o].l2.set_state(addr, CoherenceState::Shared);
                        }
                        _ => {}
                    }
                }
                if !any_remote_copy && self.config.protocol.has_exclusive() {
                    CoherenceState::Exclusive
                } else {
                    CoherenceState::Shared
                }
            }
            AccessKind::Write => {
                self.invalidate_others(n, addr);
                CoherenceState::Modified
            }
        };

        // Insert into our L2 (and handle the victim).
        if let Some(ev) = self.nodes[n].l2.insert(addr, my_new_state) {
            if ev.state.is_dirty() {
                self.stats.writebacks += 1;
            }
            self.residency_evict(n, ev.addr);
            // Inclusion: the victim leaves our L1s too.
            self.nodes[n].l1d.invalidate(ev.addr);
            self.nodes[n].l1i.invalidate(ev.addr);
        }
        // A full miss only runs when our own L2 held no copy, so the insert
        // is always a fresh fill.
        self.residency_fill(n, addr);

        AccessOutcome { latency, source }
    }

    /// Records a fresh L2 fill in whichever residency tracker the transport
    /// uses: the snoop filter's region summary or the exact directory.
    #[inline]
    fn residency_fill(&mut self, n: usize, addr: BlockAddr) {
        match &mut self.directory {
            Some(dir) => dir.note_fill(n, addr),
            None => self.filter.note_fill(n, addr),
        }
    }

    /// Records the loss of a resident L2 copy (eviction or invalidation) in
    /// the active residency tracker.
    #[inline]
    fn residency_evict(&mut self, n: usize, addr: BlockAddr) {
        match &mut self.directory {
            Some(dir) => dir.note_evict(n, addr),
            None => self.filter.note_evict(n, addr),
        }
    }

    /// Loads the candidate-holder bitset for `addr` (filter region bits or
    /// exact directory sharers) into the scan scratch, with requester `n`
    /// masked out. The scratch is pre-sized at construction, so this never
    /// allocates.
    fn load_candidates(&mut self, n: usize, addr: BlockAddr) {
        let words: &[u64] = match &self.directory {
            Some(dir) => dir.candidates(addr),
            None => self.filter.candidates(addr),
        };
        self.scan_scratch.0.clear();
        self.scan_scratch.0.extend_from_slice(words);
        self.scan_scratch.0[n / 64] &= !(1u64 << (n % 64));
    }

    /// Probes the candidate holders of `addr` (requester `n` excluded) for
    /// a remote owner (M/O/E copy) and whether any valid copy exists. Exact
    /// by the trackers' contracts — a clear filter bit proves absence, and
    /// directory sharer sets are exact — which debug builds verify against
    /// the full broadcast scan.
    fn scan_candidates(&mut self, n: usize, addr: BlockAddr) -> (Option<usize>, bool) {
        self.load_candidates(n, addr);
        let mut owner: Option<usize> = None;
        let mut any_remote_copy = false;
        let mut probed = 0u64;
        for w in 0..self.scan_scratch.0.len() {
            let mut bits = self.scan_scratch.0[w];
            while bits != 0 {
                let i = (w << 6) | (bits.trailing_zeros() as usize);
                bits &= bits - 1;
                probed += 1;
                let st = self.nodes[i].l2.probe(addr);
                if st != CoherenceState::Invalid {
                    any_remote_copy = true;
                    if st.is_owner() && owner.is_none() {
                        owner = Some(i);
                    }
                }
            }
        }
        self.probes.scan_probes += probed;
        debug_assert_eq!(
            (owner, any_remote_copy),
            self.broadcast_scan(n, addr),
            "candidate scan diverged from the full broadcast"
        );
        (owner, any_remote_copy)
    }

    /// Serializes a coherence transaction through the root switch; returns
    /// the wait time (ns).
    ///
    /// A single free-at register only models queueing correctly when
    /// requests arrive in time order; the machine guarantees that by timing
    /// every access at its event time.
    fn arbitrate_bus(&mut self, now: Cycle) -> Nanos {
        debug_assert!(
            now >= self.last_access,
            "memory-system timestamps must be non-decreasing ({now} < {})",
            self.last_access
        );
        self.last_access = now;
        let start = self.bus_free_at.max(now);
        self.bus_free_at = start + self.config.bus_occupancy_ns;
        let wait = start - now;
        self.stats.bus_wait_ns += wait;
        wait
    }

    /// Serializes a directory transaction at the block's home node; returns
    /// the wait time (ns). Same single free-at queueing model as the
    /// snooping root switch, but one register per home, so transactions to
    /// blocks homed on different nodes never contend — the decoupling that
    /// lets directory machines scale past the paper's 16 processors.
    fn arbitrate_home(&mut self, home: usize, now: Cycle) -> Nanos {
        debug_assert!(
            now >= self.last_access,
            "memory-system timestamps must be non-decreasing ({now} < {})",
            self.last_access
        );
        self.last_access = now;
        let start = self.home_free_at[home].max(now);
        self.home_free_at[home] = start + self.config.bus_occupancy_ns;
        let wait = start - now;
        self.stats.bus_wait_ns += wait;
        wait
    }

    /// Owner/sharer scan probing every remote node — the reference the
    /// filtered path must agree with, and the fallback for machines too
    /// large for the presence vector.
    fn broadcast_scan(&self, n: usize, addr: BlockAddr) -> (Option<usize>, bool) {
        let mut owner: Option<usize> = None;
        let mut any_remote_copy = false;
        for (i, node) in self.nodes.iter().enumerate() {
            if i == n {
                continue;
            }
            let st = node.l2.probe(addr);
            if st != CoherenceState::Invalid {
                any_remote_copy = true;
                if st.is_owner() && owner.is_none() {
                    owner = Some(i);
                }
            }
        }
        (owner, any_remote_copy)
    }

    /// Invalidates every remote copy of `addr` (L2 + both L1s), counting
    /// invalidations. Only the candidate holders are visited — the filter's
    /// region summary or the directory's exact sharers; an invalidate on a
    /// non-resident node is a no-op, so skipping proven non-holders changes
    /// nothing (checked in debug builds).
    fn invalidate_others(&mut self, n: usize, addr: BlockAddr) {
        self.load_candidates(n, addr);
        #[cfg(debug_assertions)]
        for (i, node) in self.nodes.iter().enumerate() {
            if i != n && self.scan_scratch.0[i / 64] & (1u64 << (i % 64)) == 0 {
                debug_assert_eq!(
                    node.l2.probe(addr),
                    CoherenceState::Invalid,
                    "node {i} skipped by the candidate scan holds a copy"
                );
            }
        }
        // Invalidation mutates the directory entry being iterated, so walk a
        // detached scratch (no allocation: ownership moves out and back).
        let scratch = std::mem::take(&mut self.scan_scratch.0);
        let mut probed = 0u64;
        for (w, &word) in scratch.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = (w << 6) | (bits.trailing_zeros() as usize);
                bits &= bits - 1;
                probed += 1;
                self.invalidate_node(i, addr);
            }
        }
        self.probes.invalidate_probes += probed;
        self.scan_scratch.0 = scratch;
    }

    /// Invalidates node `i`'s copy of `addr` across its cache stack,
    /// keeping the stats and the residency tracker in step.
    fn invalidate_node(&mut self, i: usize, addr: BlockAddr) {
        let old = self.nodes[i].l2.invalidate(addr);
        if old != CoherenceState::Invalid {
            self.stats.invalidations += 1;
            self.residency_evict(i, addr);
            self.nodes[i].l1d.invalidate(addr);
            self.nodes[i].l1i.invalidate(addr);
        }
    }

    /// Number of processor nodes in the system.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total resident blocks across every cache array — the dominant term
    /// of a machine snapshot's size, used to pre-reserve encoder capacity.
    pub fn resident_blocks_total(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.l1i.resident_blocks() + n.l1d.resident_blocks() + n.l2.resident_blocks())
            .sum()
    }

    /// Returns the MOSI state of `addr` in `cpu`'s L2 (for tests and
    /// invariant checks).
    pub fn l2_state(&self, cpu: CpuId, addr: BlockAddr) -> CoherenceState {
        self.nodes[cpu.index()].l2.probe(addr)
    }

    /// Returns the state of `addr` in `cpu`'s L1 data cache (for inclusion
    /// checks; a snoop probe, no LRU update).
    pub fn l1d_state(&self, cpu: CpuId, addr: BlockAddr) -> CoherenceState {
        self.nodes[cpu.index()].l1d.probe(addr)
    }

    /// Returns the state of `addr` in `cpu`'s L1 instruction cache (for
    /// inclusion checks; a snoop probe, no LRU update).
    pub fn l1i_state(&self, cpu: CpuId, addr: BlockAddr) -> CoherenceState {
        self.nodes[cpu.index()].l1i.probe(addr)
    }

    /// Test hook: forcibly sets `addr`'s state in `cpu`'s L2, bypassing the
    /// protocol. Exists solely so the invariant-checking tests can plant
    /// deliberately broken coherence states and verify the
    /// [`check`](crate::check) machinery catches them; never call it from
    /// simulation code.
    #[doc(hidden)]
    pub fn force_l2_state(&mut self, cpu: CpuId, addr: BlockAddr, state: CoherenceState) {
        let n = cpu.index();
        if state == CoherenceState::Invalid {
            if self.nodes[n].l2.invalidate(addr) != CoherenceState::Invalid {
                self.residency_evict(n, addr);
            }
        } else if !self.nodes[n].l2.set_state(addr, state) {
            let evicted = self.nodes[n].l2.insert(addr, state);
            if let Some(ev) = evicted {
                self.residency_evict(n, ev.addr);
            }
            self.residency_fill(n, addr);
        }
    }

    /// The snoop filter's residency summary (for tests asserting that a
    /// restored machine rebuilds the identical filter). Disabled — empty —
    /// under directory protocols.
    pub fn snoop_filter(&self) -> &SnoopFilter {
        &self.filter
    }

    /// The home-node directory (`Some` iff the protocol is a `Dir*`
    /// variant); for tests asserting the rebuilt-on-restore contract.
    pub fn directory(&self) -> Option<&Directory> {
        self.directory.as_ref()
    }

    /// Diagnostic interconnect-probe counters accumulated since the last
    /// [`Self::reset_stats`].
    pub fn probe_stats(&self) -> ProbeStats {
        self.probes
    }

    /// Checks the protocol's single-writer invariant for `addr`: at most one
    /// M copy, and an M copy excludes any other valid copy.
    pub fn check_coherence_invariant(&self, addr: BlockAddr) -> bool {
        let mut modified = 0usize;
        let mut exclusive = 0usize;
        let mut owned = 0usize;
        let mut valid = 0usize;
        for node in &self.nodes {
            match node.l2.probe(addr) {
                CoherenceState::Modified => {
                    modified += 1;
                    valid += 1;
                }
                CoherenceState::Exclusive => {
                    exclusive += 1;
                    valid += 1;
                }
                CoherenceState::Owned => {
                    owned += 1;
                    valid += 1;
                }
                CoherenceState::Shared => valid += 1,
                CoherenceState::Invalid => {}
            }
        }
        modified <= 1
            && exclusive <= 1
            && owned <= 1
            && ((modified == 0 && exclusive == 0) || valid == 1)
            && !(modified == 1 && owned == 1)
    }
}

impl crate::checkpoint::Snap for CoherenceProtocol {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        enc.put_u8(match self {
            CoherenceProtocol::Mosi => 0,
            CoherenceProtocol::Mesi => 1,
            CoherenceProtocol::Moesi => 2,
            CoherenceProtocol::DirMosi => 3,
            CoherenceProtocol::DirMesi => 4,
            CoherenceProtocol::DirMoesi => 5,
        });
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(CoherenceProtocol::Mosi),
            1 => Ok(CoherenceProtocol::Mesi),
            2 => Ok(CoherenceProtocol::Moesi),
            3 => Ok(CoherenceProtocol::DirMosi),
            4 => Ok(CoherenceProtocol::DirMesi),
            5 => Ok(CoherenceProtocol::DirMoesi),
            _ => Err(crate::checkpoint::CheckpointError::Corrupt {
                what: "CoherenceProtocol tag".into(),
            }),
        }
    }
    fn snap_size_hint(&self) -> usize {
        1
    }
}

crate::impl_snap!(MemoryConfig {
    l1i,
    l1d,
    l2,
    l1_hit_ns,
    l2_hit_ns,
    hop_ns,
    cache_provide_ns,
    mem_provide_ns,
    bus_occupancy_ns,
    upgrade_ns,
    protocol,
});
crate::impl_snap!(MemStats {
    l1i_hits,
    l1i_misses,
    l1d_hits,
    l1d_misses,
    l2_hits,
    l2_misses,
    upgrades,
    silent_upgrades,
    cache_to_cache,
    memory_fetches,
    writebacks,
    invalidations,
    bus_wait_ns,
    perturbation_ns,
});
crate::impl_snap!(Node { l1i, l1d, l2 });
crate::impl_snap!(Perturbation { max_ns, rng });

/// Hand-written [`Snap`](crate::checkpoint::Snap): encodes exactly the six
/// architectural fields the derived implementation always encoded, in the
/// same order — the snoop filter and the directory are derived state,
/// rebuilt from the restored cache contents, keeping snooping checkpoint
/// bytes (and fingerprints) identical to the pre-filter encoding. The only
/// addition the directory organization makes — its per-home occupancy
/// registers — is appended *after* those six fields and *only* for `Dir*`
/// protocols, so every snooping configuration's encoding is untouched.
impl crate::checkpoint::Snap for MemorySystem {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        self.config.encode_snap(enc);
        self.nodes.encode_snap(enc);
        self.bus_free_at.encode_snap(enc);
        self.perturbation.encode_snap(enc);
        self.stats.encode_snap(enc);
        self.last_access.encode_snap(enc);
        if self.config.protocol.is_directory() {
            self.home_free_at.encode_snap(enc);
        }
    }

    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::Snap;
        let config = MemoryConfig::decode_snap(dec)?;
        let nodes: Vec<Node> = Snap::decode_snap(dec)?;
        let bus_free_at = Snap::decode_snap(dec)?;
        let perturbation = Snap::decode_snap(dec)?;
        let stats = Snap::decode_snap(dec)?;
        let last_access = Snap::decode_snap(dec)?;
        let home_free_at: Vec<Cycle> = if config.protocol.is_directory() {
            Snap::decode_snap(dec)?
        } else {
            Vec::new()
        };
        MemorySystem::from_parts(
            config,
            nodes,
            bus_free_at,
            perturbation,
            stats,
            last_access,
            home_free_at,
            None,
        )
    }

    fn snap_size_hint(&self) -> usize {
        // `home_free_at` is counted unconditionally — an over-estimate on
        // snooping configs, which is the direction hints are allowed to err.
        self.config.snap_size_hint()
            + self.nodes.snap_size_hint()
            + self.bus_free_at.snap_size_hint()
            + self.perturbation.snap_size_hint()
            + self.stats.snap_size_hint()
            + self.last_access.snap_size_hint()
            + self.home_free_at.snap_size_hint()
    }
}

/// Sanity cap on a decoded node count: no machine we build approaches 2^20
/// CPUs, so a larger value is a corrupt header, rejected before it can size
/// an allocation.
const MAX_SNAP_NODES: u64 = 1 << 20;

/// One node's residency contribution to the derived coherence summary:
/// `(block, region)` for every resident L2 line, in line-index order. The
/// parallel decode precomputes one list per node on its worker threads
/// (hashing `region_of` there), so the sequential merge into the snoop
/// filter or directory only touches the summary arrays.
type ResidencySeed = Vec<(BlockAddr, u32)>;

/// Decodes one `MemNode` section body and walks the node's L2 for its
/// [`ResidencySeed`] — the per-node unit of work the sectioned decode
/// distributes across worker threads.
fn decode_node_section(
    dec: &mut crate::checkpoint::Decoder<'_>,
) -> Result<(Node, ResidencySeed), crate::checkpoint::CheckpointError> {
    use crate::checkpoint::Snap;
    let node = Node::decode_snap(dec)?;
    dec.finish()?;
    let mut seed = Vec::with_capacity(node.l2.resident_blocks());
    node.l2.for_each_resident(|addr, _| {
        // `region_of` is a 16-bit region index; u32 keeps the tuple at 16
        // bytes with headroom if `REGIONS` ever grows.
        seed.push((addr, region_of(addr) as u32));
    });
    Ok((node, seed))
}

impl MemorySystem {
    /// Assembles a decoded memory system, validating the directory register
    /// count and rebuilding the derived residency state (snoop filter or
    /// directory) from the restored cache contents. Shared by the linear
    /// [`Snap`](crate::checkpoint::Snap) decode and the sectioned decode so
    /// both produce byte-for-byte identical machines.
    ///
    /// `seeds`, when present, carries each node's precomputed residency
    /// list (from the parallel sectioned decode); the merge below then
    /// replays them in node order, which leaves the filter/directory in
    /// exactly the state the `for_each_resident` walk would have built —
    /// counts are order-independent sums and presence bits depend only on
    /// the counts.
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        config: MemoryConfig,
        nodes: Vec<Node>,
        bus_free_at: Cycle,
        perturbation: Perturbation,
        stats: MemStats,
        last_access: Cycle,
        home_free_at: Vec<Cycle>,
        seeds: Option<Vec<ResidencySeed>>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        let dir = config.protocol.is_directory();
        let cpus = nodes.len();
        if dir && home_free_at.len() != cpus {
            return Err(crate::checkpoint::CheckpointError::Corrupt {
                what: "home occupancy register count".into(),
            });
        }
        let (mut filter, mut directory) = if dir {
            (SnoopFilter::disabled(), Some(Directory::new(cpus)))
        } else {
            (SnoopFilter::new(cpus), None)
        };
        match seeds {
            Some(seeds) => {
                debug_assert_eq!(seeds.len(), cpus, "one residency seed per node");
                for (i, seed) in seeds.iter().enumerate() {
                    match &mut directory {
                        Some(d) => {
                            for &(addr, _) in seed {
                                d.note_fill(i, addr);
                            }
                        }
                        None => {
                            for &(_, region) in seed {
                                filter.note_region_fill(i, region as usize);
                            }
                        }
                    }
                }
            }
            None => {
                for (i, node) in nodes.iter().enumerate() {
                    node.l2.for_each_resident(|addr, _| match &mut directory {
                        Some(d) => d.note_fill(i, addr),
                        None => filter.note_fill(i, addr),
                    });
                }
            }
        }
        Ok(MemorySystem {
            config,
            nodes,
            bus_free_at,
            perturbation,
            stats,
            last_access,
            filter,
            directory,
            home_free_at,
            scan_scratch: ScanScratch(Vec::with_capacity(words_for(cpus))),
            probes: ProbeStats::default(),
        })
    }

    /// Encodes into per-section ranges of a [`SectionEncoder`]: a
    /// `MemHeader` section (config + node count), one `MemNode` section per
    /// node, and a `MemShared` tail. The concatenated section bytes are
    /// **identical** to what [`Snap::encode_snap`](crate::checkpoint::Snap)
    /// produces — `Vec<Node>`'s linear encoding is its length followed by
    /// each element, and the section boundaries fall exactly on those
    /// element boundaries — so whole-payload fingerprints are unchanged by
    /// sectioning.
    pub(crate) fn encode_snap_sectioned(&self, se: &mut crate::checkpoint::SectionEncoder) {
        use crate::checkpoint::{SectionKind, Snap};
        se.begin(SectionKind::MemHeader);
        self.config.encode_snap(se.enc());
        se.enc().put_u64(self.nodes.len() as u64);
        for (i, node) in self.nodes.iter().enumerate() {
            se.begin(SectionKind::MemNode(i as u32));
            node.encode_snap(se.enc());
        }
        se.begin(SectionKind::MemShared);
        self.bus_free_at.encode_snap(se.enc());
        self.perturbation.encode_snap(se.enc());
        self.stats.encode_snap(se.enc());
        self.last_access.encode_snap(se.enc());
        if self.config.protocol.is_directory() {
            self.home_free_at.encode_snap(se.enc());
        }
    }

    /// Decodes the sectioned form written by
    /// [`MemorySystem::encode_snap_sectioned`], consuming the `MemHeader`,
    /// `MemNode` and `MemShared` sections from `sr`. Each section's decoder
    /// is finished at its own boundary, so an overrun in one node's cache
    /// stack is reported against that node instead of corrupting its
    /// neighbours' decode.
    ///
    /// With `threads > 1` the per-node sections are decoded on that many
    /// scoped worker threads. The section table makes this safe and exact:
    /// every `MemNode(i)` decoder borrows a disjoint, independently
    /// fingerprinted byte range of the payload, each worker decodes a
    /// contiguous chunk of nodes into its own slots, and the results are
    /// reassembled in node index order — so the decoded machine is
    /// bit-identical to the single-threaded walk by construction, not by
    /// scheduling luck. Workers also pre-walk each node's L2 for its
    /// residency seed (the expensive `region_of` hashing), leaving only an
    /// order-insensitive count merge on the calling thread.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`](crate::checkpoint::CheckpointError) on
    /// any malformed or out-of-order section; the first failing node (in
    /// index order) wins, matching the sequential walk.
    pub(crate) fn decode_snap_sectioned(
        sr: &mut crate::checkpoint::SectionReader<'_>,
        threads: usize,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{CheckpointError, SectionKind, Snap};
        let mut dec = sr.expect(SectionKind::MemHeader)?;
        let config = MemoryConfig::decode_snap(&mut dec)?;
        let node_count = dec.get_u64()?;
        dec.finish()?;
        if node_count > MAX_SNAP_NODES {
            return Err(CheckpointError::Corrupt {
                what: "memory-system node count".into(),
            });
        }
        let count = node_count as usize;
        // Collect every node section's decoder before decoding anything:
        // each one borrows its own slice of the payload, which is what lets
        // the workers run without synchronizing on the reader.
        let mut decoders = Vec::with_capacity(count);
        for i in 0..node_count as u32 {
            decoders.push(sr.expect(SectionKind::MemNode(i))?);
        }
        let workers = threads.clamp(1, count.max(1));
        let mut slots: Vec<Option<Result<(Node, ResidencySeed), CheckpointError>>> =
            (0..count).map(|_| None).collect();
        if workers <= 1 {
            for (slot, dec) in slots.iter_mut().zip(decoders.iter_mut()) {
                *slot = Some(decode_node_section(dec));
            }
        } else {
            let chunk = count.div_ceil(workers);
            std::thread::scope(|scope| {
                for (slot_chunk, dec_chunk) in
                    slots.chunks_mut(chunk).zip(decoders.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (slot, dec) in slot_chunk.iter_mut().zip(dec_chunk.iter_mut()) {
                            *slot = Some(decode_node_section(dec));
                        }
                    });
                }
            });
        }
        let mut nodes = Vec::with_capacity(count);
        let mut seeds = Vec::with_capacity(count);
        for slot in slots {
            let (node, seed) = slot.expect("every node slot is visited exactly once")?;
            nodes.push(node);
            seeds.push(seed);
        }
        let mut dec = sr.expect(SectionKind::MemShared)?;
        let bus_free_at = Snap::decode_snap(&mut dec)?;
        let perturbation = Snap::decode_snap(&mut dec)?;
        let stats = Snap::decode_snap(&mut dec)?;
        let last_access = Snap::decode_snap(&mut dec)?;
        let home_free_at: Vec<Cycle> = if config.protocol.is_directory() {
            Snap::decode_snap(&mut dec)?
        } else {
            Vec::new()
        };
        dec.finish()?;
        MemorySystem::from_parts(
            config,
            nodes,
            bus_free_at,
            perturbation,
            stats,
            last_access,
            home_free_at,
            Some(seeds),
        )
    }
}

/// Downgrades a node's L1D copy of `addr` to read-only (used when its L2
/// loses write permission).
fn downgrade_l1(node: &mut Node, addr: BlockAddr) {
    if node.l1d.probe(addr).is_writable() {
        node.l1d.set_state(addr, CoherenceState::Shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cpus: usize) -> MemorySystem {
        let mut cfg = MemoryConfig::hpca2003();
        // Small caches so tests exercise evictions.
        cfg.l1i = CacheConfig::new(1024, 2, 64).unwrap();
        cfg.l1d = CacheConfig::new(1024, 2, 64).unwrap();
        cfg.l2 = CacheConfig::new(8192, 4, 64).unwrap();
        MemorySystem::new(cfg, cpus, Perturbation::disabled()).unwrap()
    }

    #[test]
    fn paper_latencies() {
        let cfg = MemoryConfig::hpca2003();
        assert_eq!(cfg.cache_to_cache_ns(), 125);
        assert_eq!(cfg.memory_fetch_ns(), 180);
    }

    #[test]
    fn cold_read_comes_from_memory_then_hits() {
        let mut m = sys(2);
        let a = BlockAddr(100);
        let first = m.access(CpuId(0), a, AccessKind::Read, 0);
        assert_eq!(first.source, AccessSource::Memory);
        assert_eq!(first.latency, 180);
        let second = m.access(CpuId(0), a, AccessKind::Read, 1000);
        assert_eq!(second.source, AccessSource::L1);
        assert_eq!(second.latency, 1);
        assert_eq!(m.stats().memory_fetches, 1);
        assert_eq!(m.stats().l1d_hits, 1);
    }

    #[test]
    fn cache_to_cache_transfer_after_remote_write() {
        let mut m = sys(2);
        let a = BlockAddr(7);
        // CPU 0 writes (M copy).
        let w = m.access(CpuId(0), a, AccessKind::Write, 0);
        assert_eq!(w.source, AccessSource::Memory);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Modified);
        // CPU 1 reads: served cache-to-cache, owner downgrades to O.
        let r = m.access(CpuId(1), a, AccessKind::Read, 1000);
        assert_eq!(r.source, AccessSource::RemoteCache);
        assert_eq!(r.latency, 125);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Owned);
        assert_eq!(m.l2_state(CpuId(1), a), CoherenceState::Shared);
        assert!(m.check_coherence_invariant(a));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut m = sys(3);
        let a = BlockAddr(9);
        m.access(CpuId(0), a, AccessKind::Read, 0);
        m.access(CpuId(1), a, AccessKind::Read, 100);
        // CPU 2 writes: both copies invalidated.
        m.access(CpuId(2), a, AccessKind::Write, 200);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Invalid);
        assert_eq!(m.l2_state(CpuId(1), a), CoherenceState::Invalid);
        assert_eq!(m.l2_state(CpuId(2), a), CoherenceState::Modified);
        assert!(m.stats().invalidations >= 2);
        assert!(m.check_coherence_invariant(a));
    }

    #[test]
    fn upgrade_on_store_to_shared_block() {
        let mut m = sys(2);
        let a = BlockAddr(11);
        m.access(CpuId(0), a, AccessKind::Read, 0);
        m.access(CpuId(1), a, AccessKind::Read, 10);
        let up = m.access(CpuId(0), a, AccessKind::Write, 20);
        assert_eq!(up.source, AccessSource::Upgrade);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Modified);
        assert_eq!(m.l2_state(CpuId(1), a), CoherenceState::Invalid);
        assert_eq!(m.stats().upgrades, 1);
    }

    #[test]
    fn store_hit_in_l1_after_write() {
        let mut m = sys(1);
        let a = BlockAddr(3);
        m.access(CpuId(0), a, AccessKind::Write, 0);
        let again = m.access(CpuId(0), a, AccessKind::Write, 10);
        assert_eq!(again.source, AccessSource::L1);
    }

    #[test]
    fn read_after_own_write_hits_l1() {
        let mut m = sys(1);
        let a = BlockAddr(3);
        m.access(CpuId(0), a, AccessKind::Write, 0);
        let r = m.access(CpuId(0), a, AccessKind::Read, 10);
        assert_eq!(r.source, AccessSource::L1);
    }

    #[test]
    fn owner_l1_loses_write_permission_on_remote_read() {
        let mut m = sys(2);
        let a = BlockAddr(5);
        m.access(CpuId(0), a, AccessKind::Write, 0);
        m.access(CpuId(1), a, AccessKind::Read, 100);
        // CPU 0 stores again: its L1 copy must no longer be writable, and the
        // store must invalidate CPU 1 (upgrade from Owned).
        let w = m.access(CpuId(0), a, AccessKind::Write, 200);
        assert_eq!(w.source, AccessSource::Upgrade);
        assert_eq!(m.l2_state(CpuId(1), a), CoherenceState::Invalid);
        assert!(m.check_coherence_invariant(a));
    }

    #[test]
    fn instruction_fetch_path() {
        let mut m = sys(2);
        let c = BlockAddr(0xC0);
        let lat = m.fetch(CpuId(0), c, 0);
        assert_eq!(lat, 180); // cold: from memory
        let lat2 = m.fetch(CpuId(0), c, 10);
        assert_eq!(lat2, 0); // L1I hit is free
        assert_eq!(m.stats().l1i_hits, 1);
        assert_eq!(m.stats().l1i_misses, 1);
    }

    #[test]
    fn bus_contention_serializes_transactions() {
        let mut m = sys(2);
        // Two misses at the same instant: the second waits for the bus.
        let a = m.access(CpuId(0), BlockAddr(1000), AccessKind::Read, 0);
        let b = m.access(CpuId(1), BlockAddr(2000), AccessKind::Read, 0);
        assert_eq!(a.latency, 180);
        assert_eq!(b.latency, 180 + m.config().bus_occupancy_ns);
        assert_eq!(m.stats().bus_wait_ns, m.config().bus_occupancy_ns);
    }

    #[test]
    fn perturbation_adds_bounded_latency_and_is_seed_deterministic() {
        let mk = |seed| {
            let mut cfg = MemoryConfig::hpca2003();
            cfg.l2 = CacheConfig::new(8192, 4, 64).unwrap();
            MemorySystem::new(cfg, 1, Perturbation::new(4, seed)).unwrap()
        };
        let mut m1 = mk(1);
        let mut m2 = mk(1);
        let mut m3 = mk(2);
        let mut same = true;
        let mut diff = false;
        for i in 0..200u64 {
            let a = BlockAddr(10_000 + i * 17);
            let l1 = m1.access(CpuId(0), a, AccessKind::Read, i * 1000).latency;
            let l2 = m2.access(CpuId(0), a, AccessKind::Read, i * 1000).latency;
            let l3 = m3.access(CpuId(0), a, AccessKind::Read, i * 1000).latency;
            assert!((180..=184).contains(&l1), "latency {l1} out of range");
            same &= l1 == l2;
            diff |= l1 != l3;
        }
        assert!(same, "same seed must give identical latencies");
        assert!(diff, "different seeds should diverge");
        assert!(m1.stats().perturbation_ns > 0);
    }

    #[test]
    fn l2_eviction_back_invalidates_l1() {
        let mut m = sys(1);
        // L2: 8192 B, 4-way, 64 B => 32 sets. Blocks k*32 collide in set 0.
        let conflicting: Vec<BlockAddr> = (0..5).map(|k| BlockAddr(k * 32)).collect();
        for &a in &conflicting {
            m.access(CpuId(0), a, AccessKind::Read, 0);
        }
        // The first block was evicted from L2; inclusion says L1 lost it too,
        // so a re-access must miss all the way to memory.
        let r = m.access(CpuId(0), conflicting[0], AccessKind::Read, 100);
        assert_eq!(r.source, AccessSource::Memory);
    }

    #[test]
    fn rejects_zero_nodes() {
        let cfg = MemoryConfig::hpca2003();
        assert!(MemorySystem::new(cfg, 0, Perturbation::disabled()).is_err());
    }

    fn sys_with(protocol: CoherenceProtocol, cpus: usize) -> MemorySystem {
        let mut cfg = MemoryConfig::hpca2003();
        cfg.l2 = CacheConfig::new(8192, 4, 64).unwrap();
        cfg.protocol = protocol;
        MemorySystem::new(cfg, cpus, Perturbation::disabled()).unwrap()
    }

    #[test]
    fn mesi_grants_exclusive_on_sole_read() {
        let mut m = sys_with(CoherenceProtocol::Mesi, 2);
        let a = BlockAddr(40);
        m.access(CpuId(0), a, AccessKind::Read, 0);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Exclusive);
        // A second reader demotes both to Shared.
        m.access(CpuId(1), a, AccessKind::Read, 100);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Shared);
        assert_eq!(m.l2_state(CpuId(1), a), CoherenceState::Shared);
        assert!(m.check_coherence_invariant(a));
    }

    #[test]
    fn mesi_silent_upgrade_needs_no_bus() {
        let mut m = sys_with(CoherenceProtocol::Mesi, 2);
        let a = BlockAddr(41);
        m.access(CpuId(0), a, AccessKind::Read, 0); // -> E
        let w = m.access(CpuId(0), a, AccessKind::Write, 100);
        assert_eq!(w.source, AccessSource::L2);
        assert_eq!(w.latency, m.config().l2_hit_ns);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Modified);
        assert_eq!(m.stats().silent_upgrades, 1);
        assert_eq!(m.stats().upgrades, 0);
    }

    #[test]
    fn mosi_never_grants_exclusive() {
        let mut m = sys_with(CoherenceProtocol::Mosi, 2);
        let a = BlockAddr(42);
        m.access(CpuId(0), a, AccessKind::Read, 0);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Shared);
        // A store from Shared pays a bus upgrade even with no other copies.
        let w = m.access(CpuId(0), a, AccessKind::Write, 100);
        assert_eq!(w.source, AccessSource::Upgrade);
        assert_eq!(m.stats().upgrades, 1);
        assert_eq!(m.stats().silent_upgrades, 0);
    }

    #[test]
    fn mesi_read_of_dirty_block_forces_writeback() {
        let mut m = sys_with(CoherenceProtocol::Mesi, 2);
        let a = BlockAddr(43);
        m.access(CpuId(0), a, AccessKind::Write, 0); // -> M on cpu0
        let before = m.stats().writebacks;
        let r = m.access(CpuId(1), a, AccessKind::Read, 100);
        assert_eq!(r.source, AccessSource::RemoteCache);
        assert_eq!(m.stats().writebacks, before + 1);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Shared);
        assert_eq!(m.l2_state(CpuId(1), a), CoherenceState::Shared);
    }

    #[test]
    fn moesi_keeps_dirty_sharing_and_exclusive() {
        let mut m = sys_with(CoherenceProtocol::Moesi, 3);
        let a = BlockAddr(44);
        // Sole read -> Exclusive.
        m.access(CpuId(0), a, AccessKind::Read, 0);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Exclusive);
        // Silent upgrade -> M; remote read -> owner keeps O (no writeback).
        m.access(CpuId(0), a, AccessKind::Write, 50);
        let before = m.stats().writebacks;
        m.access(CpuId(1), a, AccessKind::Read, 100);
        assert_eq!(m.stats().writebacks, before);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Owned);
        assert_eq!(m.l2_state(CpuId(1), a), CoherenceState::Shared);
        assert!(m.check_coherence_invariant(a));
    }

    #[test]
    fn exclusive_supplier_provides_cache_to_cache() {
        let mut m = sys_with(CoherenceProtocol::Mesi, 2);
        let a = BlockAddr(45);
        m.access(CpuId(0), a, AccessKind::Read, 0); // E on cpu0
        let r = m.access(CpuId(1), a, AccessKind::Read, 100);
        assert_eq!(r.source, AccessSource::RemoteCache);
        assert_eq!(r.latency, m.config().cache_to_cache_ns());
    }

    #[test]
    fn ratio_helpers_are_zero_on_empty_runs() {
        // A zero-access run must report 0.0 ratios, not NaN.
        let s = MemStats::default();
        assert_eq!(s.l1d_miss_ratio(), 0.0);
        assert_eq!(s.l1i_miss_ratio(), 0.0);
        assert_eq!(s.l2_miss_ratio(), 0.0);
        assert_eq!(s.data_accesses(), 0);
        assert_eq!(s.instruction_fetches(), 0);
    }

    #[test]
    fn ratio_helpers_match_counters() {
        let mut m = sys(2);
        m.access(CpuId(0), BlockAddr(1), AccessKind::Read, 0); // miss
        m.access(CpuId(0), BlockAddr(1), AccessKind::Read, 10); // hit
        m.fetch(CpuId(0), BlockAddr(0xC0), 20); // miss
        let s = m.stats();
        assert!((s.l1d_miss_ratio() - 0.5).abs() < 1e-12);
        assert!((s.l1i_miss_ratio() - 1.0).abs() < 1e-12);
        assert!(s.l2_miss_ratio() > 0.0);
    }

    #[test]
    fn probe_accessors_report_l1_and_node_count() {
        let mut m = sys(2);
        assert_eq!(m.node_count(), 2);
        let a = BlockAddr(21);
        m.access(CpuId(0), a, AccessKind::Write, 0);
        assert_eq!(m.l1d_state(CpuId(0), a), CoherenceState::Modified);
        assert_eq!(m.l1d_state(CpuId(1), a), CoherenceState::Invalid);
        assert_eq!(m.l1i_state(CpuId(0), a), CoherenceState::Invalid);
        m.fetch(CpuId(1), a, 100);
        assert_eq!(m.l1i_state(CpuId(1), a), CoherenceState::Shared);
    }

    #[test]
    fn force_l2_state_plants_arbitrary_states() {
        let mut m = sys(2);
        let a = BlockAddr(30);
        m.force_l2_state(CpuId(0), a, CoherenceState::Modified);
        m.force_l2_state(CpuId(1), a, CoherenceState::Modified);
        assert_eq!(m.l2_state(CpuId(0), a), CoherenceState::Modified);
        assert_eq!(m.l2_state(CpuId(1), a), CoherenceState::Modified);
        assert!(!m.check_coherence_invariant(a));
        m.force_l2_state(CpuId(1), a, CoherenceState::Invalid);
        assert!(m.check_coherence_invariant(a));
    }

    #[test]
    fn reset_stats_keeps_cache_contents() {
        let mut m = sys(1);
        let a = BlockAddr(77);
        m.access(CpuId(0), a, AccessKind::Read, 0);
        m.reset_stats();
        assert_eq!(m.stats().l1d_misses, 0);
        let r = m.access(CpuId(0), a, AccessKind::Read, 10);
        assert_eq!(r.source, AccessSource::L1);
    }
}
