//! Thread-local decode arena: recycled buffers for snapshot restore and
//! fork launch.
//!
//! The buffers that dominate a template decode are the dense line arrays
//! (megabytes per L2) and the resident-line seeds built alongside them.
//! Both have the same lifetime shape in a sweep: decode a template, fork
//! it N times, run the forks, drop everything, decode the next template.
//! Allocating them fresh every round puts a multi-megabyte `alloc`/`free`
//! pair on the launch path of every run.
//!
//! The arena breaks that cycle. Each worker thread keeps a small pool of
//! retired buffers; the cache's copy-on-write line store returns its
//! backing storage here on drop, and the decode / copy-on-write
//! materialization paths take a recycled buffer when one fits. Steady-state
//! sweep launches therefore hit the allocator only for the small,
//! residency-proportional state (the seed contents, scheduler queues) —
//! the line arrays circulate through the pool.
//!
//! Pools are strictly thread-local, so the parallel sectioned decode gets a
//! per-worker arena by construction: no locks, no cross-thread traffic, and
//! a worker that decodes the same node sizes every round reaches a 100%
//! hit rate. Buffers are handed out *dirty* (the decode path zeroes the
//! gaps between resident lines itself, word-at-a-time), which is what makes
//! recycling free: no memset on return, no memset on take.

use std::cell::RefCell;

use super::cache::Line;

/// Most buffers one thread will pool. 64 CPUs × 3 arrays per node plus
/// seeds fit comfortably; anything beyond this is a workload churning
/// through geometries, and fresh allocation is the right answer there.
const MAX_POOLED_BUFS: usize = 256;

/// Byte ceiling per pool per thread. A 64-CPU machine's line arrays total
/// ~100 MB; one full machine's worth of recycled buffers is the working
/// set the arena exists to serve, and the cap keeps a pathological mix of
/// geometries from pinning unbounded memory.
const MAX_POOLED_BYTES: usize = 192 << 20;

/// A free list of retired `Vec<T>` buffers, reused by capacity.
struct Pool<T> {
    bufs: Vec<Vec<T>>,
    bytes: usize,
}

impl<T: Copy> Pool<T> {
    const fn new() -> Self {
        Pool {
            bufs: Vec::new(),
            bytes: 0,
        }
    }

    /// Takes the smallest pooled buffer with `capacity >= min_capacity`
    /// (best fit keeps the big L2 buffers available for the big requests).
    /// The returned buffer is empty but its contents are otherwise dirty.
    fn take(&mut self, min_capacity: usize) -> Option<Vec<T>> {
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in self.bufs.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= min_capacity && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        let (i, _) = best?;
        let mut buf = self.bufs.swap_remove(i);
        self.bytes -= buf.capacity() * size_of::<T>();
        buf.clear();
        Some(buf)
    }

    /// Takes the largest pooled buffer, if any — for callers that cannot
    /// size the request up front (the decoder's resident seed grows as the
    /// run-length walk discovers lines).
    fn take_largest(&mut self) -> Option<Vec<T>> {
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in self.bufs.iter().enumerate() {
            let cap = buf.capacity();
            if best.is_none_or(|(_, c)| cap > c) {
                best = Some((i, cap));
            }
        }
        let (i, _) = best?;
        let mut buf = self.bufs.swap_remove(i);
        self.bytes -= buf.capacity() * size_of::<T>();
        buf.clear();
        Some(buf)
    }

    /// Accepts a retired buffer unless the pool is at capacity; returns
    /// whether it was kept. Rejected buffers just drop (a plain free).
    fn give(&mut self, buf: Vec<T>) -> bool {
        let bytes = buf.capacity() * size_of::<T>();
        if bytes == 0 || self.bufs.len() >= MAX_POOLED_BUFS || self.bytes + bytes > MAX_POOLED_BYTES
        {
            return false;
        }
        self.bytes += bytes;
        self.bufs.push(buf);
        true
    }

    fn clear(&mut self) {
        self.bufs.clear();
        self.bytes = 0;
    }
}

/// One thread's decode arena: pooled line arrays, resident seeds, and the
/// snoop filter's presence/count arrays, plus reuse counters for the
/// observability API.
struct DecodeArena {
    lines: Pool<Line>,
    resident: Pool<(u32, Line)>,
    /// Snoop-filter presence bitsets (`REGIONS x words` of `u64`).
    words: Pool<u64>,
    /// Snoop-filter residency counts (`REGIONS x cpus` of `u32`) — at 4 MB
    /// for the paper's 16-CPU machine, the single largest non-line buffer
    /// a fork clones.
    counts: Pool<u32>,
    takes: u64,
    hits: u64,
}

impl DecodeArena {
    const fn new() -> Self {
        DecodeArena {
            lines: Pool::new(),
            resident: Pool::new(),
            words: Pool::new(),
            counts: Pool::new(),
            takes: 0,
            hits: 0,
        }
    }
}

thread_local! {
    static ARENA: RefCell<DecodeArena> = const { RefCell::new(DecodeArena::new()) };
}

/// Takes a recycled line buffer with at least `min_capacity` capacity, or
/// `None` when the pool has nothing suitable (caller allocates fresh).
/// The buffer comes back empty but **dirty** — the caller must write every
/// element it exposes.
pub(crate) fn take_lines(min_capacity: usize) -> Option<Vec<Line>> {
    ARENA
        .try_with(|arena| {
            let mut arena = arena.borrow_mut();
            arena.takes += 1;
            let got = arena.lines.take(min_capacity);
            if got.is_some() {
                arena.hits += 1;
            }
            got
        })
        .ok()
        .flatten()
}

/// Retires a line buffer into this thread's pool (or frees it if the pool
/// is full / the thread is tearing down).
pub(crate) fn give_lines(buf: Vec<Line>) {
    let _kept = ARENA
        .try_with(|arena| arena.borrow_mut().lines.give(buf))
        .unwrap_or(false);
}

/// Takes the largest recycled resident-seed buffer, or an empty `Vec` when
/// the pool is dry. The seed's final size is only known after the
/// run-length walk, so "largest available" is the fit policy.
pub(crate) fn take_resident() -> Vec<(u32, Line)> {
    ARENA
        .try_with(|arena| {
            let mut arena = arena.borrow_mut();
            arena.takes += 1;
            let got = arena.resident.take_largest();
            if got.is_some() {
                arena.hits += 1;
            }
            got
        })
        .ok()
        .flatten()
        .unwrap_or_default()
}

/// Retires a resident-seed buffer into this thread's pool.
pub(crate) fn give_resident(buf: Vec<(u32, Line)>) {
    let _kept = ARENA
        .try_with(|arena| arena.borrow_mut().resident.give(buf))
        .unwrap_or(false);
}

/// Takes a recycled `u64` buffer (snoop-filter presence words) with at
/// least `min_capacity` capacity. Empty-but-dirty, like [`take_lines`].
pub(crate) fn take_u64s(min_capacity: usize) -> Option<Vec<u64>> {
    ARENA
        .try_with(|arena| {
            let mut arena = arena.borrow_mut();
            arena.takes += 1;
            let got = arena.words.take(min_capacity);
            if got.is_some() {
                arena.hits += 1;
            }
            got
        })
        .ok()
        .flatten()
}

/// Retires a `u64` buffer into this thread's pool.
pub(crate) fn give_u64s(buf: Vec<u64>) {
    let _kept = ARENA
        .try_with(|arena| arena.borrow_mut().words.give(buf))
        .unwrap_or(false);
}

/// Takes a recycled `u32` buffer (snoop-filter residency counts) with at
/// least `min_capacity` capacity. Empty-but-dirty, like [`take_lines`].
pub(crate) fn take_u32s(min_capacity: usize) -> Option<Vec<u32>> {
    ARENA
        .try_with(|arena| {
            let mut arena = arena.borrow_mut();
            arena.takes += 1;
            let got = arena.counts.take(min_capacity);
            if got.is_some() {
                arena.hits += 1;
            }
            got
        })
        .ok()
        .flatten()
}

/// Retires a `u32` buffer into this thread's pool.
pub(crate) fn give_u32s(buf: Vec<u32>) {
    let _kept = ARENA
        .try_with(|arena| arena.borrow_mut().counts.give(buf))
        .unwrap_or(false);
}

/// A point-in-time view of this thread's arena, for tests and benches that
/// assert the pools are actually being reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffer requests served by this thread's arena (hit or miss).
    pub takes: u64,
    /// Requests satisfied from the pool instead of the allocator.
    pub hits: u64,
    /// Retired buffers currently parked in the pools.
    pub pooled_buffers: usize,
    /// Total capacity (in bytes) parked in the pools.
    pub pooled_bytes: usize,
}

/// Snapshot of the calling thread's arena counters.
pub fn stats() -> ArenaStats {
    ARENA
        .try_with(|arena| {
            let arena = arena.borrow();
            ArenaStats {
                takes: arena.takes,
                hits: arena.hits,
                pooled_buffers: arena.lines.bufs.len()
                    + arena.resident.bufs.len()
                    + arena.words.bufs.len()
                    + arena.counts.bufs.len(),
                pooled_bytes: arena.lines.bytes
                    + arena.resident.bytes
                    + arena.words.bytes
                    + arena.counts.bytes,
            }
        })
        .unwrap_or_default()
}

/// Frees every buffer pooled by the calling thread and resets its
/// counters. Allocation-measuring tests call this to start from a cold
/// arena; there is never a correctness reason to call it.
pub fn clear() {
    let _ = ARENA.try_with(|arena| {
        let mut arena = arena.borrow_mut();
        arena.lines.clear();
        arena.resident.clear();
        arena.words.clear();
        arena.counts.clear();
        arena.takes = 0;
        arena.hits = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_best_fit_prefers_smallest_sufficient_buffer() {
        let mut pool: Pool<Line> = Pool::new();
        assert!(pool.give(Vec::with_capacity(64)));
        assert!(pool.give(Vec::with_capacity(16)));
        assert!(pool.give(Vec::with_capacity(32)));
        let got = pool.take(20).expect("a buffer fits");
        assert_eq!(got.capacity(), 32);
        let got = pool.take(20).expect("the 64 remains");
        assert_eq!(got.capacity(), 64);
        assert!(pool.take(20).is_none());
    }

    #[test]
    fn pool_rejects_empty_and_respects_buffer_cap() {
        let mut pool: Pool<Line> = Pool::new();
        assert!(!pool.give(Vec::new()));
        for _ in 0..MAX_POOLED_BUFS {
            assert!(pool.give(Vec::with_capacity(1)));
        }
        assert!(!pool.give(Vec::with_capacity(1)));
    }

    #[test]
    fn clear_resets_stats_and_drops_pools() {
        clear();
        give_lines(Vec::with_capacity(8));
        let before = stats();
        assert_eq!(before.pooled_buffers, 1);
        let took = take_lines(4).expect("pooled buffer fits");
        assert_eq!(took.capacity(), 8);
        let after = stats();
        assert_eq!(after.takes, 1);
        assert_eq!(after.hits, 1);
        clear();
        assert_eq!(stats(), ArenaStats::default());
    }
}
