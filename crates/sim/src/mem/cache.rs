//! Set-associative cache arrays with coherence state and LRU replacement.
//!
//! The paper's target system (§3.2.1) keeps caches coherent with a MOSI
//! invalidation-based snooping protocol; its simulator (§3.2.3) "supports a
//! broad range of coherence protocols", so the state space here covers the
//! MESI/MOSI/MOESI family. [`CoherenceState`] carries the per-block state
//! and [`CacheArray`] the tag/LRU bookkeeping shared by the L1 and L2 models.

use crate::ids::BlockAddr;
use crate::SimError;

/// Coherence state of a cache block (MOESI state space; MOSI and MESI use
/// subsets of it, selected by
/// [`CoherenceProtocol`](crate::mem::CoherenceProtocol)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CoherenceState {
    /// Modified: the only copy, dirty, readable and writable.
    Modified,
    /// Exclusive: the only copy, clean; a store upgrades to Modified without
    /// a bus transaction (MESI/MOESI only).
    Exclusive,
    /// Owned: dirty, shared with other caches; this cache answers requests
    /// (MOSI/MOESI only).
    Owned,
    /// Shared: clean read-only copy.
    Shared,
    /// Invalid: no copy.
    #[default]
    Invalid,
}

impl CoherenceState {
    /// Whether a load can be satisfied from this state.
    #[inline]
    pub fn is_readable(self) -> bool {
        !matches!(self, CoherenceState::Invalid)
    }

    /// Whether a store can be satisfied from this state *without any
    /// transition* (Exclusive needs a silent upgrade, handled by the memory
    /// system).
    #[inline]
    pub fn is_writable(self) -> bool {
        matches!(self, CoherenceState::Modified)
    }

    /// Whether this cache supplies data on a snoop (it holds the definitive
    /// copy — dirty, or clean-exclusive).
    #[inline]
    pub fn is_owner(self) -> bool {
        matches!(
            self,
            CoherenceState::Modified | CoherenceState::Owned | CoherenceState::Exclusive
        )
    }

    /// Whether eviction of a block in this state requires a writeback.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, CoherenceState::Modified | CoherenceState::Owned)
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set (1 = direct-mapped).
    pub associativity: u32,
    /// Block size in bytes (the paper uses 64).
    pub block_bytes: u32,
}

impl CacheConfig {
    /// Creates a config, validating that the geometry is consistent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any field is zero, the sizes
    /// are not powers of two, or the capacity is not divisible into at least
    /// one set.
    pub fn new(size_bytes: u64, associativity: u32, block_bytes: u32) -> Result<Self, SimError> {
        let cfg = CacheConfig {
            size_bytes,
            associativity,
            block_bytes,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks geometry consistency (see [`CacheConfig::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.size_bytes == 0 || self.associativity == 0 || self.block_bytes == 0 {
            return Err(SimError::InvalidConfig {
                what: "cache geometry fields must be nonzero".into(),
            });
        }
        if !self.size_bytes.is_power_of_two()
            || !self.block_bytes.is_power_of_two()
            || !self.associativity.is_power_of_two()
        {
            return Err(SimError::InvalidConfig {
                what: "cache size, block size and associativity must be powers of two".into(),
            });
        }
        let row = u64::from(self.associativity) * u64::from(self.block_bytes);
        if !self.size_bytes.is_multiple_of(row) || self.size_bytes / row == 0 {
            return Err(SimError::InvalidConfig {
                what: "cache size must be a positive multiple of associativity × block size".into(),
            });
        }
        Ok(())
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.associativity) * u64::from(self.block_bytes))
    }

    /// Total number of blocks the cache can hold.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.size_bytes / u64::from(self.block_bytes)
    }
}

/// One cache line's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Line {
    tag: u64,
    state: CoherenceState,
    /// Monotonic last-use stamp for LRU.
    lru: u64,
}

/// A set-associative, LRU-replacement cache tag array carrying MOSI state.
///
/// Stores metadata only (tags and states); the simulator never models data
/// values, just their movement.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheArray {
    config: CacheConfig,
    lines: Vec<Line>,
    sets: u64,
    ways: usize,
    use_clock: u64,
    /// `sets - 1`; valid because the geometry forces `sets` to a power of
    /// two. Derived (never serialized): set/tag extraction sits on the
    /// hottest simulator path, and masking beats the hardware divide the
    /// modulo form compiles to.
    set_mask: u64,
    /// `log2(sets)`, the shift pairing with `set_mask`.
    set_shift: u32,
}

/// Result of inserting a block: what had to leave to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Address of the displaced block.
    pub addr: BlockAddr,
    /// State the victim held (dirty states imply a writeback).
    pub state: CoherenceState,
}

impl CacheArray {
    /// Allocates an empty (all-Invalid) cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the geometry is inconsistent.
    pub fn new(config: CacheConfig) -> Result<Self, SimError> {
        config.validate()?;
        let sets = config.sets();
        let ways = config.associativity as usize;
        Ok(CacheArray {
            config,
            lines: vec![Line::default(); (sets as usize) * ways],
            sets,
            ways,
            use_clock: 0,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
        })
    }

    /// The geometry this array was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_of(&self, addr: BlockAddr) -> usize {
        (addr.0 & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, addr: BlockAddr) -> u64 {
        addr.0 >> self.set_shift
    }

    #[inline]
    fn addr_of(&self, set: usize, tag: u64) -> BlockAddr {
        BlockAddr((tag << self.set_shift) | set as u64)
    }

    #[inline]
    fn set_slice_mut(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.ways;
        &mut self.lines[start..start + self.ways]
    }

    #[inline]
    fn set_slice(&self, set: usize) -> &[Line] {
        let start = set * self.ways;
        &self.lines[start..start + self.ways]
    }

    /// Returns the current state of `addr` without touching LRU (a snoop
    /// probe).
    pub fn probe(&self, addr: BlockAddr) -> CoherenceState {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                return line.state;
            }
        }
        CoherenceState::Invalid
    }

    /// Looks up `addr` for an access, updating LRU on hit. Returns the state.
    pub fn touch(&mut self, addr: BlockAddr) -> CoherenceState {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.use_clock += 1;
        let clock = self.use_clock;
        for line in self.set_slice_mut(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                line.lru = clock;
                return line.state;
            }
        }
        CoherenceState::Invalid
    }

    /// Sets the state of an already-resident block; returns `false` if the
    /// block is not resident.
    pub fn set_state(&mut self, addr: BlockAddr, state: CoherenceState) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice_mut(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                if state == CoherenceState::Invalid {
                    line.state = CoherenceState::Invalid;
                } else {
                    line.state = state;
                }
                return true;
            }
        }
        false
    }

    /// Inserts `addr` with `state`, evicting the LRU victim if the set is
    /// full. Returns the eviction, if any.
    ///
    /// If the block is already resident its state and LRU are updated in
    /// place (no eviction).
    ///
    /// # Panics
    ///
    /// Panics if `state` is [`CoherenceState::Invalid`] — insert valid blocks only.
    pub fn insert(&mut self, addr: BlockAddr, state: CoherenceState) -> Option<Eviction> {
        assert!(
            state != CoherenceState::Invalid,
            "inserting an Invalid block is meaningless"
        );
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.use_clock += 1;
        let clock = self.use_clock;

        // Already resident?
        for line in self.set_slice_mut(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                line.state = state;
                line.lru = clock;
                return None;
            }
        }
        // Free way?
        for line in self.set_slice_mut(set) {
            if line.state == CoherenceState::Invalid {
                *line = Line {
                    tag,
                    state,
                    lru: clock,
                };
                return None;
            }
        }
        // Evict LRU.
        let (victim_idx, victim) = {
            let slice = self.set_slice(set);
            let (i, l) = slice
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("associativity >= 1");
            (i, *l)
        };
        let evicted = Eviction {
            addr: self.addr_of(set, victim.tag),
            state: victim.state,
        };
        self.set_slice_mut(set)[victim_idx] = Line {
            tag,
            state,
            lru: clock,
        };
        Some(evicted)
    }

    /// Invalidates `addr` if resident; returns the state it held.
    pub fn invalidate(&mut self, addr: BlockAddr) -> CoherenceState {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice_mut(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                let old = line.state;
                line.state = CoherenceState::Invalid;
                return old;
            }
        }
        CoherenceState::Invalid
    }

    /// Number of resident (non-Invalid) blocks — for tests and stats.
    pub fn resident_blocks(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.state != CoherenceState::Invalid)
            .count()
    }

    /// Calls `f` with the address and state of every resident block. Used to
    /// rebuild residency summaries (the snoop filter) after a checkpoint
    /// restore, where only the cache contents are serialized.
    pub fn for_each_resident(&self, mut f: impl FnMut(BlockAddr, CoherenceState)) {
        for (i, line) in self.lines.iter().enumerate() {
            if line.state != CoherenceState::Invalid {
                let set = i / self.ways;
                f(self.addr_of(set, line.tag), line.state);
            }
        }
    }
}

impl crate::checkpoint::Snap for CoherenceState {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        enc.put_u8(match self {
            CoherenceState::Modified => 0,
            CoherenceState::Exclusive => 1,
            CoherenceState::Owned => 2,
            CoherenceState::Shared => 3,
            CoherenceState::Invalid => 4,
        });
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(CoherenceState::Modified),
            1 => Ok(CoherenceState::Exclusive),
            2 => Ok(CoherenceState::Owned),
            3 => Ok(CoherenceState::Shared),
            4 => Ok(CoherenceState::Invalid),
            _ => Err(crate::checkpoint::CheckpointError::Corrupt {
                what: "CoherenceState tag".into(),
            }),
        }
    }
}

crate::impl_snap!(CacheConfig {
    size_bytes,
    associativity,
    block_bytes,
});
crate::impl_snap!(Line { tag, state, lru });

/// Run-length tag byte marking a run of Invalid lines in a [`CacheArray`]
/// encoding; the [`CoherenceState`] tags occupy 0–4.
const SNAP_INVALID_RUN: u8 = 5;

/// Hand-written [`Snap`](crate::checkpoint::Snap) for [`CacheArray`]: the
/// line array dominates whole-machine checkpoints (a 4 MB L2 is 65,536
/// lines), and most lines in a warmed machine are Invalid. Invalid lines are
/// encoded as run-lengths and **canonicalized** — their residual `tag`/`lru`
/// values are never consulted by any lookup or victim choice (every path
/// skips Invalid lines, and eviction only runs when no Invalid way exists) —
/// so a restored array is behaviourally identical and re-encodes to the same
/// bytes, while a fully Invalid L2 costs 6 bytes instead of a megabyte.
impl crate::checkpoint::Snap for CacheArray {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        self.config.encode_snap(enc);
        enc.put_u64(self.lines.len() as u64);
        let mut i = 0usize;
        while i < self.lines.len() {
            let line = &self.lines[i];
            if line.state == CoherenceState::Invalid {
                let run_start = i;
                while i < self.lines.len() && self.lines[i].state == CoherenceState::Invalid {
                    i += 1;
                }
                enc.put_u8(SNAP_INVALID_RUN);
                enc.put_u64((i - run_start) as u64);
            } else {
                line.state.encode_snap(enc);
                enc.put_u64(line.tag);
                enc.put_u64(line.lru);
                i += 1;
            }
        }
        self.sets.encode_snap(enc);
        self.ways.encode_snap(enc);
        self.use_clock.encode_snap(enc);
    }

    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{CheckpointError, Snap};
        let config = CacheConfig::decode_snap(dec)?;
        let len = dec.get_u64()? as usize;
        // Largest plausible array: a 16 GB cache of 64-byte lines. Anything
        // bigger is a corrupt length, not a machine we ever built — and
        // rejecting it here keeps a flipped bit from requesting a huge
        // allocation before the fingerprint check would catch it.
        if len > 1 << 28 {
            return Err(CheckpointError::Corrupt {
                what: "CacheArray line count".into(),
            });
        }
        let mut lines = Vec::with_capacity(len);
        while lines.len() < len {
            match dec.get_u8()? {
                SNAP_INVALID_RUN => {
                    let run = dec.get_u64()? as usize;
                    if run == 0 || run > len - lines.len() {
                        return Err(CheckpointError::Corrupt {
                            what: "CacheArray invalid-run length".into(),
                        });
                    }
                    lines.resize(lines.len() + run, Line::default());
                }
                tag_byte => {
                    let state = match tag_byte {
                        0 => CoherenceState::Modified,
                        1 => CoherenceState::Exclusive,
                        2 => CoherenceState::Owned,
                        3 => CoherenceState::Shared,
                        _ => {
                            return Err(CheckpointError::Corrupt {
                                what: "CacheArray line tag".into(),
                            })
                        }
                    };
                    lines.push(Line {
                        tag: dec.get_u64()?,
                        state,
                        lru: dec.get_u64()?,
                    });
                }
            }
        }
        let sets: u64 = Snap::decode_snap(dec)?;
        let ways = Snap::decode_snap(dec)?;
        let use_clock = Snap::decode_snap(dec)?;
        if !sets.is_power_of_two() {
            return Err(CheckpointError::Corrupt {
                what: "CacheArray set count must be a power of two".into(),
            });
        }
        Ok(CacheArray {
            config,
            lines,
            sets,
            ways,
            use_clock,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 4 sets x 2 ways x 64B blocks = 512 B.
        CacheArray::new(CacheConfig::new(512, 2, 64).unwrap()).unwrap()
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(4 * 1024 * 1024, 4, 64).unwrap();
        assert_eq!(c.sets(), 16384);
        assert_eq!(c.blocks(), 65536);
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(0, 1, 64).is_err());
        assert!(CacheConfig::new(512, 0, 64).is_err());
        assert!(CacheConfig::new(500, 2, 64).is_err()); // not a power of two
        assert!(CacheConfig::new(64, 2, 64).is_err()); // zero sets
        assert!(CacheConfig::new(512, 3, 64).is_err()); // non-pow2 assoc
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let a = BlockAddr(12);
        assert_eq!(c.touch(a), CoherenceState::Invalid);
        assert!(c.insert(a, CoherenceState::Shared).is_none());
        assert_eq!(c.touch(a), CoherenceState::Shared);
        assert_eq!(c.probe(a), CoherenceState::Shared);
    }

    #[test]
    fn conflicting_tags_map_to_same_set() {
        let mut c = small();
        // 4 sets: addresses 1, 5, 9 share set 1.
        assert!(c.insert(BlockAddr(1), CoherenceState::Shared).is_none());
        assert!(c.insert(BlockAddr(5), CoherenceState::Shared).is_none());
        // Third conflicting block evicts the LRU (addr 1).
        let ev = c.insert(BlockAddr(9), CoherenceState::Shared).unwrap();
        assert_eq!(ev.addr, BlockAddr(1));
        assert_eq!(ev.state, CoherenceState::Shared);
        assert_eq!(c.probe(BlockAddr(1)), CoherenceState::Invalid);
        assert_eq!(c.probe(BlockAddr(5)), CoherenceState::Shared);
    }

    #[test]
    fn lru_respects_touch_order() {
        let mut c = small();
        c.insert(BlockAddr(1), CoherenceState::Shared);
        c.insert(BlockAddr(5), CoherenceState::Shared);
        // Touch 1 so 5 becomes LRU.
        c.touch(BlockAddr(1));
        let ev = c.insert(BlockAddr(9), CoherenceState::Shared).unwrap();
        assert_eq!(ev.addr, BlockAddr(5));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.insert(BlockAddr(1), CoherenceState::Modified);
        c.insert(BlockAddr(5), CoherenceState::Shared);
        let ev = c.insert(BlockAddr(9), CoherenceState::Owned).unwrap();
        assert!(ev.state.is_dirty());
        assert_eq!(ev.addr, BlockAddr(1));
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = small();
        c.insert(BlockAddr(1), CoherenceState::Shared);
        assert!(c.insert(BlockAddr(1), CoherenceState::Modified).is_none());
        assert_eq!(c.probe(BlockAddr(1)), CoherenceState::Modified);
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn invalidate_and_set_state() {
        let mut c = small();
        c.insert(BlockAddr(7), CoherenceState::Modified);
        assert!(c.set_state(BlockAddr(7), CoherenceState::Owned));
        assert_eq!(c.probe(BlockAddr(7)), CoherenceState::Owned);
        assert_eq!(c.invalidate(BlockAddr(7)), CoherenceState::Owned);
        assert_eq!(c.probe(BlockAddr(7)), CoherenceState::Invalid);
        assert!(!c.set_state(BlockAddr(7), CoherenceState::Shared));
        assert_eq!(c.invalidate(BlockAddr(7)), CoherenceState::Invalid);
    }

    #[test]
    fn mosi_state_predicates() {
        assert!(CoherenceState::Modified.is_readable() && CoherenceState::Modified.is_writable());
        assert!(CoherenceState::Owned.is_readable() && !CoherenceState::Owned.is_writable());
        assert!(CoherenceState::Shared.is_readable() && !CoherenceState::Shared.is_writable());
        assert!(!CoherenceState::Invalid.is_readable());
        assert!(CoherenceState::Owned.is_owner() && CoherenceState::Modified.is_owner());
        assert!(!CoherenceState::Shared.is_owner());
        assert!(CoherenceState::Owned.is_dirty() && !CoherenceState::Shared.is_dirty());
    }

    #[test]
    fn direct_mapped_cache_works() {
        let mut c = CacheArray::new(CacheConfig::new(256, 1, 64).unwrap()).unwrap();
        // 4 sets, 1 way.
        c.insert(BlockAddr(0), CoherenceState::Shared);
        let ev = c.insert(BlockAddr(4), CoherenceState::Shared).unwrap();
        assert_eq!(ev.addr, BlockAddr(0));
    }
}
