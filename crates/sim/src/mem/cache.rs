//! Set-associative cache arrays with coherence state and LRU replacement.
//!
//! The paper's target system (§3.2.1) keeps caches coherent with a MOSI
//! invalidation-based snooping protocol; its simulator (§3.2.3) "supports a
//! broad range of coherence protocols", so the state space here covers the
//! MESI/MOSI/MOESI family. [`CoherenceState`] carries the per-block state
//! and [`CacheArray`] the tag/LRU bookkeeping shared by the L1 and L2 models.

use std::sync::Arc;

use super::arena;
use crate::ids::BlockAddr;
use crate::SimError;

/// Coherence state of a cache block (MOESI state space; MOSI and MESI use
/// subsets of it, selected by
/// [`CoherenceProtocol`](crate::mem::CoherenceProtocol)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum CoherenceState {
    /// Invalid: no copy. Discriminant 0 so an all-zero `Line` is a default
    /// (empty) line and zeroed allocations are valid line arrays — see
    /// `zeroed_lines`. The snapshot byte for each state is an explicit
    /// constant in the `Snap` impl below, independent of these
    /// discriminants, so checkpoint bytes do not depend on declaration
    /// order.
    #[default]
    Invalid = 0,
    /// Modified: the only copy, dirty, readable and writable.
    Modified = 1,
    /// Exclusive: the only copy, clean; a store upgrades to Modified without
    /// a bus transaction (MESI/MOESI only).
    Exclusive = 2,
    /// Owned: dirty, shared with other caches; this cache answers requests
    /// (MOSI/MOESI only).
    Owned = 3,
    /// Shared: clean read-only copy.
    Shared = 4,
}

impl CoherenceState {
    /// Whether a load can be satisfied from this state.
    #[inline]
    pub fn is_readable(self) -> bool {
        !matches!(self, CoherenceState::Invalid)
    }

    /// Whether a store can be satisfied from this state *without any
    /// transition* (Exclusive needs a silent upgrade, handled by the memory
    /// system).
    #[inline]
    pub fn is_writable(self) -> bool {
        matches!(self, CoherenceState::Modified)
    }

    /// Whether this cache supplies data on a snoop (it holds the definitive
    /// copy — dirty, or clean-exclusive).
    #[inline]
    pub fn is_owner(self) -> bool {
        matches!(
            self,
            CoherenceState::Modified | CoherenceState::Owned | CoherenceState::Exclusive
        )
    }

    /// Whether eviction of a block in this state requires a writeback.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, CoherenceState::Modified | CoherenceState::Owned)
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set (1 = direct-mapped).
    pub associativity: u32,
    /// Block size in bytes (the paper uses 64).
    pub block_bytes: u32,
}

impl CacheConfig {
    /// Creates a config, validating that the geometry is consistent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any field is zero, the sizes
    /// are not powers of two, or the capacity is not divisible into at least
    /// one set.
    pub fn new(size_bytes: u64, associativity: u32, block_bytes: u32) -> Result<Self, SimError> {
        let cfg = CacheConfig {
            size_bytes,
            associativity,
            block_bytes,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks geometry consistency (see [`CacheConfig::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.size_bytes == 0 || self.associativity == 0 || self.block_bytes == 0 {
            return Err(SimError::InvalidConfig {
                what: "cache geometry fields must be nonzero".into(),
            });
        }
        if !self.size_bytes.is_power_of_two()
            || !self.block_bytes.is_power_of_two()
            || !self.associativity.is_power_of_two()
        {
            return Err(SimError::InvalidConfig {
                what: "cache size, block size and associativity must be powers of two".into(),
            });
        }
        let row = u64::from(self.associativity) * u64::from(self.block_bytes);
        if !self.size_bytes.is_multiple_of(row) || self.size_bytes / row == 0 {
            return Err(SimError::InvalidConfig {
                what: "cache size must be a positive multiple of associativity × block size".into(),
            });
        }
        Ok(())
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.associativity) * u64::from(self.block_bytes))
    }

    /// Total number of blocks the cache can hold.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.size_bytes / u64::from(self.block_bytes)
    }
}

/// One cache line's metadata. Crate-visible so the decode arena
/// ([`super::arena`]) can pool retired line buffers by type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) struct Line {
    tag: u64,
    state: CoherenceState,
    /// Monotonic last-use stamp for LRU.
    lru: u64,
}

/// Allocates `len` default (all-Invalid) lines from zeroed memory.
///
/// `alloc_zeroed` hands back kernel-zeroed pages that are faulted in only on
/// first touch, so building a mostly-empty line array (a fresh cache, a
/// snapshot decode) costs no dense write — the scatter of resident lines
/// touches only the pages it actually lands on, and a 4 MB L2's 65,536-line
/// array skips the memset entirely.
fn zeroed_lines(len: usize) -> Vec<Line> {
    if len == 0 {
        return Vec::new();
    }
    let layout = std::alloc::Layout::array::<Line>(len).expect("line array layout");
    // SAFETY: an all-zero `Line` is a valid default line — `tag` and `lru`
    // are plain integers and `CoherenceState` is `repr(u8)` with
    // `Invalid = 0` (pinned by the `zeroed_lines_are_default_lines` test).
    // The pointer/len/capacity triple hands the exact
    // `Layout::array::<Line>` allocation to `Vec`, which frees it with the
    // same layout.
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout).cast::<Line>();
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Vec::from_raw_parts(ptr, len, len)
    }
}

/// The shareable body of a [`CacheArray`]: the dense line array plus an
/// optional resident-line seed.
///
/// Forks of one decoded machine share this behind an `Arc`; the first write
/// re-materializes a private copy via [`Clone`], and that clone is *sparse*:
/// a zeroed ([`zeroed_lines`]) dense array with only the resident lines
/// scattered in. For the mostly-Invalid arrays a warmed machine carries,
/// a fork's materialization cost is proportional to residency — like the
/// run-length decode path — not to raw geometry, which is megabytes per L2.
///
/// `resident` lists `(index, line)` for every non-Invalid line, in index
/// order. The snapshot decoder builds it as a free byproduct of its
/// run-length walk; any in-place mutation drops it (see
/// [`CacheArray::set_slice_mut`]), because a written array no longer matches
/// the list. A seeded clone canonicalizes Invalid lines to
/// `Line::default()`: their residual `tag`/`lru` values are dead state —
/// every lookup and victim choice tests `state` first, and the snapshot
/// encoding run-length-encodes Invalid lines — so the clone is
/// behaviourally identical and re-encodes to the same bytes. An unseeded
/// clone is a plain memcpy.
/// The backing buffers are recycled through the thread-local decode arena
/// (`super::arena`): `Drop` retires `dense` and the seed there, and the
/// decode / clone paths take recycled buffers when one fits — in
/// steady-state sweeps (decode a template, fork it, drop everything,
/// repeat) the multi-megabyte arrays never touch the allocator. The seed
/// stays a `Vec` (not a boxed slice) precisely so it can round-trip
/// through the pool without the shrink-to-fit realloc `into_boxed_slice`
/// would cost.
struct CowLines {
    dense: Vec<Line>,
    resident: Option<Vec<(u32, Line)>>,
}

impl Drop for CowLines {
    fn drop(&mut self) {
        if let Some(list) = self.resident.take() {
            arena::give_resident(list);
        }
        arena::give_lines(std::mem::take(&mut self.dense));
    }
}

impl Clone for CowLines {
    fn clone(&self) -> Self {
        let len = self.dense.len();
        // A recycled buffer arrives dirty, which is fine on both branches:
        // the seeded pass below writes every element before `set_len`, and
        // the unseeded branch copies over a cleared (`len == 0`) vector.
        let mut dense: Vec<Line> =
            arena::take_lines(len).unwrap_or_else(|| Vec::with_capacity(len));
        match &self.resident {
            Some(list) => {
                // One sequential pass over uninitialized memory: zero the
                // gaps between resident lines, write each resident line in
                // place. (A zeroed allocation plus scatter would traverse
                // the multi-megabyte array twice — memset, then revisit
                // every page.) This canonicalizes Invalid lines to
                // `Line::default()`, exactly as decode does: their residual
                // `tag`/`lru` values are dead state, and the run-length
                // snapshot encoding never emits them.
                let ptr = dense.as_mut_ptr();
                let mut cursor = 0usize;
                // SAFETY: the seed's indices are strictly ascending and
                // < len (the decoder builds it that way while filling the
                // array front to back), so every element of [0, len) is
                // written exactly once — gap elements with zero bytes (a
                // valid `Line`: fields are plain integers and
                // `CoherenceState` is `repr(u8)` with `Invalid = 0`),
                // resident slots with their line — before `set_len`
                // exposes them. `Line` is `Copy`, so no drops are skipped.
                unsafe {
                    for &(i, line) in list.iter() {
                        let i = i as usize;
                        debug_assert!(i >= cursor && i < len, "seed order/bounds");
                        ptr.add(cursor).write_bytes(0u8, i - cursor);
                        ptr.add(i).write(line);
                        cursor = i + 1;
                    }
                    ptr.add(cursor).write_bytes(0u8, len - cursor);
                    dense.set_len(len);
                }
            }
            // No seed (the source has been written in place): a straight
            // memcpy, byte-exact including any junk on Invalid lines.
            None => dense.extend_from_slice(&self.dense),
        }
        // The clone exists to be written (Arc::make_mut), so the seed would
        // be dropped on the next call anyway; skip copying it.
        CowLines {
            dense,
            resident: None,
        }
    }
}

impl std::fmt::Debug for CowLines {
    /// Renders exactly like the dense `Vec<Line>` it wraps. The machine
    /// fingerprint hashes `Debug` output, and the resident seed is a
    /// materialization hint, not state — it must never reach the
    /// fingerprint.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.dense.fmt(f)
    }
}

impl PartialEq for CowLines {
    fn eq(&self, other: &Self) -> bool {
        self.dense == other.dense
    }
}

/// A set-associative, LRU-replacement cache tag array carrying MOSI state.
///
/// Stores metadata only (tags and states); the simulator never models data
/// values, just their movement.
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheArray {
    config: CacheConfig,
    /// Shared copy-on-write line array. Forks of one decoded machine clone
    /// this `Arc` (a pointer copy, even for a 65,536-line L2) and only
    /// materialize a private copy on first write ([`Arc::make_mut`] in
    /// [`CacheArray::set_slice_mut`]) — and that copy is sparse, seeded
    /// from the decoder's resident-line list (see [`CowLines`]).
    /// `CowLines`'s `Debug`/`PartialEq` delegate to the dense vector, so
    /// fingerprints and comparisons are unaffected by sharing.
    lines: Arc<CowLines>,
    sets: u64,
    ways: usize,
    use_clock: u64,
    /// `sets - 1`; valid because the geometry forces `sets` to a power of
    /// two. Derived (never serialized): set/tag extraction sits on the
    /// hottest simulator path, and masking beats the hardware divide the
    /// modulo form compiles to.
    set_mask: u64,
    /// `log2(sets)`, the shift pairing with `set_mask`.
    set_shift: u32,
    /// Live count of non-Invalid lines, maintained by every state
    /// transition. Derived (never serialized; recomputed on decode) — it
    /// makes [`CacheArray::resident_blocks`], and therefore the snapshot
    /// capacity seed, O(1) instead of a dense scan of megabytes of line
    /// arrays per snapshot.
    resident_count: usize,
}

impl std::fmt::Debug for CacheArray {
    /// Prints the serialized field set only. `resident_count` (like the
    /// `CowLines` seed) is derived state and must stay out: the machine
    /// fingerprint hashes `Debug` output, and an extra field would silently
    /// reseed every checkpoint-derived run space.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheArray")
            .field("config", &self.config)
            .field("lines", &self.lines)
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("use_clock", &self.use_clock)
            .field("set_mask", &self.set_mask)
            .field("set_shift", &self.set_shift)
            .finish()
    }
}

/// Result of inserting a block: what had to leave to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Address of the displaced block.
    pub addr: BlockAddr,
    /// State the victim held (dirty states imply a writeback).
    pub state: CoherenceState,
}

impl CacheArray {
    /// Allocates an empty (all-Invalid) cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the geometry is inconsistent.
    pub fn new(config: CacheConfig) -> Result<Self, SimError> {
        config.validate()?;
        let sets = config.sets();
        let ways = config.associativity as usize;
        Ok(CacheArray {
            config,
            lines: Arc::new(CowLines {
                dense: zeroed_lines((sets as usize) * ways),
                resident: Some(Vec::new()),
            }),
            sets,
            ways,
            use_clock: 0,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            resident_count: 0,
        })
    }

    /// The geometry this array was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_of(&self, addr: BlockAddr) -> usize {
        (addr.0 & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, addr: BlockAddr) -> u64 {
        addr.0 >> self.set_shift
    }

    #[inline]
    fn addr_of(&self, set: usize, tag: u64) -> BlockAddr {
        BlockAddr((tag << self.set_shift) | set as u64)
    }

    #[inline]
    fn set_slice_mut(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.ways;
        // First mutation after a fork materializes a private copy (sparse
        // and calloc-backed — see [`CowLines`]'s `Clone`); thereafter the
        // Arc is unique and this is a plain borrow. Any in-place write
        // invalidates the decoder's resident-line seed, which describes the
        // array as it was decoded.
        let cow = Arc::make_mut(&mut self.lines);
        if let Some(list) = cow.resident.take() {
            // The seed is dead the moment the array is written; retire its
            // buffer to the decode arena instead of freeing it.
            arena::give_resident(list);
        }
        &mut cow.dense[start..start + self.ways]
    }

    #[inline]
    fn set_slice(&self, set: usize) -> &[Line] {
        let start = set * self.ways;
        &self.lines.dense[start..start + self.ways]
    }

    /// Returns the current state of `addr` without touching LRU (a snoop
    /// probe).
    pub fn probe(&self, addr: BlockAddr) -> CoherenceState {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                return line.state;
            }
        }
        CoherenceState::Invalid
    }

    /// Looks up `addr` for an access, updating LRU on hit. Returns the state.
    pub fn touch(&mut self, addr: BlockAddr) -> CoherenceState {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.use_clock += 1;
        let clock = self.use_clock;
        for line in self.set_slice_mut(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                line.lru = clock;
                return line.state;
            }
        }
        CoherenceState::Invalid
    }

    /// Sets the state of an already-resident block; returns `false` if the
    /// block is not resident.
    pub fn set_state(&mut self, addr: BlockAddr, state: CoherenceState) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let mut found = false;
        for line in self.set_slice_mut(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                line.state = state;
                found = true;
                break;
            }
        }
        if found && state == CoherenceState::Invalid {
            self.resident_count -= 1;
        }
        found
    }

    /// Inserts `addr` with `state`, evicting the LRU victim if the set is
    /// full. Returns the eviction, if any.
    ///
    /// If the block is already resident its state and LRU are updated in
    /// place (no eviction).
    ///
    /// # Panics
    ///
    /// Panics if `state` is [`CoherenceState::Invalid`] — insert valid blocks only.
    pub fn insert(&mut self, addr: BlockAddr, state: CoherenceState) -> Option<Eviction> {
        assert!(
            state != CoherenceState::Invalid,
            "inserting an Invalid block is meaningless"
        );
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.use_clock += 1;
        let clock = self.use_clock;

        // Already resident?
        for line in self.set_slice_mut(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                line.state = state;
                line.lru = clock;
                return None;
            }
        }
        // Free way?
        let filled_free_way = {
            let slice = self.set_slice_mut(set);
            match slice
                .iter_mut()
                .find(|l| l.state == CoherenceState::Invalid)
            {
                Some(line) => {
                    *line = Line {
                        tag,
                        state,
                        lru: clock,
                    };
                    true
                }
                None => false,
            }
        };
        if filled_free_way {
            self.resident_count += 1;
            return None;
        }
        // Evict LRU.
        let (victim_idx, victim) = {
            let slice = self.set_slice(set);
            let (i, l) = slice
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("associativity >= 1");
            (i, *l)
        };
        let evicted = Eviction {
            addr: self.addr_of(set, victim.tag),
            state: victim.state,
        };
        self.set_slice_mut(set)[victim_idx] = Line {
            tag,
            state,
            lru: clock,
        };
        Some(evicted)
    }

    /// Invalidates `addr` if resident; returns the state it held.
    pub fn invalidate(&mut self, addr: BlockAddr) -> CoherenceState {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let mut old = CoherenceState::Invalid;
        for line in self.set_slice_mut(set) {
            if line.state != CoherenceState::Invalid && line.tag == tag {
                old = line.state;
                line.state = CoherenceState::Invalid;
                break;
            }
        }
        if old != CoherenceState::Invalid {
            self.resident_count -= 1;
        }
        old
    }

    /// Number of resident (non-Invalid) blocks — for stats and the snapshot
    /// capacity seed. O(1): a live counter, checked against the line array
    /// in debug builds.
    pub fn resident_blocks(&self) -> usize {
        debug_assert_eq!(
            self.resident_count,
            self.lines
                .dense
                .iter()
                .filter(|l| l.state != CoherenceState::Invalid)
                .count(),
            "resident counter drifted from the line array"
        );
        self.resident_count
    }

    /// Calls `f` with the address and state of every resident block, in line
    /// index order. Used to rebuild residency summaries (the snoop filter)
    /// after a checkpoint restore, where only the cache contents are
    /// serialized.
    pub fn for_each_resident(&self, mut f: impl FnMut(BlockAddr, CoherenceState)) {
        if let Some(list) = &self.lines.resident {
            // The decoder's seed skips the dense scan entirely (the list is
            // built in index order, matching the scan below).
            for &(i, line) in list.iter() {
                let set = i as usize / self.ways;
                f(self.addr_of(set, line.tag), line.state);
            }
            return;
        }
        // No seed (the array has been written in place): skip Invalid
        // stretches with the same word-at-a-time run scan the snapshot
        // encoder uses, instead of branching on every one of a mostly
        // empty L2's lines.
        let dense = &self.lines.dense;
        let mut i = 0usize;
        while i < dense.len() {
            i += invalid_run_len(&dense[i..]);
            if i == dense.len() {
                break;
            }
            let line = &dense[i];
            let set = i / self.ways;
            f(self.addr_of(set, line.tag), line.state);
            i += 1;
        }
    }
}

impl crate::checkpoint::Snap for CoherenceState {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        enc.put_u8(match self {
            CoherenceState::Modified => 0,
            CoherenceState::Exclusive => 1,
            CoherenceState::Owned => 2,
            CoherenceState::Shared => 3,
            CoherenceState::Invalid => 4,
        });
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(CoherenceState::Modified),
            1 => Ok(CoherenceState::Exclusive),
            2 => Ok(CoherenceState::Owned),
            3 => Ok(CoherenceState::Shared),
            4 => Ok(CoherenceState::Invalid),
            _ => Err(crate::checkpoint::CheckpointError::Corrupt {
                what: "CoherenceState tag".into(),
            }),
        }
    }
    fn snap_size_hint(&self) -> usize {
        1
    }
}

crate::impl_snap!(CacheConfig {
    size_bytes,
    associativity,
    block_bytes,
});
crate::impl_snap!(Line { tag, state, lru });

/// Run-length tag byte marking a run of Invalid lines in a [`CacheArray`]
/// encoding; the [`CoherenceState`] tags occupy 0–4.
const SNAP_INVALID_RUN: u8 = 5;

/// Length of the Invalid-line run starting at `lines[0]` (zero when the
/// first line is resident). Scans eight lines per iteration, folding their
/// states into one occupancy word and using `trailing_zeros` to locate the
/// first resident line, instead of a branch per line — a mostly-empty L2 is
/// hundreds of thousands of lines, and this scan dominates snapshot encode.
#[inline]
fn invalid_run_len(lines: &[Line]) -> usize {
    let mut n = 0usize;
    let mut chunks = lines.chunks_exact(8);
    for chunk in &mut chunks {
        let mut occ = 0u32;
        for (j, line) in chunk.iter().enumerate() {
            occ |= u32::from(line.state != CoherenceState::Invalid) << j;
        }
        if occ != 0 {
            return n + occ.trailing_zeros() as usize;
        }
        n += 8;
    }
    for line in chunks.remainder() {
        if line.state != CoherenceState::Invalid {
            return n;
        }
        n += 1;
    }
    n
}

/// Hand-written [`Snap`](crate::checkpoint::Snap) for [`CacheArray`]: the
/// line array dominates whole-machine checkpoints (a 4 MB L2 is 65,536
/// lines), and most lines in a warmed machine are Invalid. Invalid lines are
/// encoded as run-lengths and **canonicalized** — their residual `tag`/`lru`
/// values are never consulted by any lookup or victim choice (every path
/// skips Invalid lines, and eviction only runs when no Invalid way exists) —
/// so a restored array is behaviourally identical and re-encodes to the same
/// bytes, while a fully Invalid L2 costs 6 bytes instead of a megabyte.
impl crate::checkpoint::Snap for CacheArray {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        let lines = &self.lines.dense;
        self.config.encode_snap(enc);
        enc.put_u64(lines.len() as u64);
        let mut i = 0usize;
        while i < lines.len() {
            let run = invalid_run_len(&lines[i..]);
            if run > 0 {
                enc.put_u8(SNAP_INVALID_RUN);
                enc.put_u64(run as u64);
                i += run;
            } else {
                let line = &lines[i];
                line.state.encode_snap(enc);
                enc.put_u64(line.tag);
                enc.put_u64(line.lru);
                i += 1;
            }
        }
        self.sets.encode_snap(enc);
        self.ways.encode_snap(enc);
        self.use_clock.encode_snap(enc);
    }

    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{CheckpointError, Snap};
        let config = CacheConfig::decode_snap(dec)?;
        let len = dec.get_u64()? as usize;
        // Largest plausible array: a 16 GB cache of 64-byte lines. Anything
        // bigger is a corrupt length, not a machine we ever built — and
        // rejecting it here keeps a flipped bit from requesting a huge
        // allocation before the fingerprint check would catch it.
        if len > 1 << 28 {
            return Err(CheckpointError::Corrupt {
                what: "CacheArray line count".into(),
            });
        }
        // The dense array comes from the thread-local decode arena when a
        // retired buffer fits, and from `zeroed_lines` otherwise. A fresh
        // zeroed allocation is all-Invalid already, so invalid runs just
        // advance the cursor; a recycled buffer is dirty, so runs are
        // zeroed in bulk (`write_bytes`, the decode-side counterpart of
        // the encoder's word-at-a-time run scan) as the run-length walk
        // passes over them. Each resident line is written in place and
        // recorded in the resident seed — which later powers both
        // `for_each_resident` (snoop-filter rebuild) and the sparse
        // copy-on-write materialization of forks (`CowLines`).
        let (mut dense, zero_gaps) = match arena::take_lines(len) {
            Some(buf) => (buf, true),
            None => (zeroed_lines(len), false),
        };
        let ptr = dense.as_mut_ptr();
        let mut resident = arena::take_resident();
        let mut filled = 0usize;
        while filled < len {
            match dec.get_u8()? {
                SNAP_INVALID_RUN => {
                    let run = dec.get_u64()? as usize;
                    if run == 0 || run > len - filled {
                        return Err(CheckpointError::Corrupt {
                            what: "CacheArray invalid-run length".into(),
                        });
                    }
                    if zero_gaps {
                        // SAFETY: `filled + run <= len`, and the arena
                        // guarantees `capacity >= len`. Zero bytes are a
                        // valid all-Invalid `Line` (see `zeroed_lines`).
                        unsafe { ptr.add(filled).write_bytes(0u8, run) };
                    }
                    filled += run;
                }
                tag_byte => {
                    let state = match tag_byte {
                        0 => CoherenceState::Modified,
                        1 => CoherenceState::Exclusive,
                        2 => CoherenceState::Owned,
                        3 => CoherenceState::Shared,
                        _ => {
                            return Err(CheckpointError::Corrupt {
                                what: "CacheArray line tag".into(),
                            })
                        }
                    };
                    let line = Line {
                        tag: dec.get_u64()?,
                        state,
                        lru: dec.get_u64()?,
                    };
                    // SAFETY: `filled < len <= capacity`; on the fresh
                    // path this overwrites an initialized zero line, on
                    // the recycled path it initializes the slot (`Line`
                    // is `Copy`, so no drop is skipped either way).
                    unsafe { ptr.add(filled).write(line) };
                    // `len` is capped at 1 << 28 above, so indices fit u32.
                    resident.push((filled as u32, line));
                    filled += 1;
                }
            }
        }
        // SAFETY: the loop above ran until `filled == len`, writing (or,
        // on the fresh path, inheriting from `zeroed_lines`) every element
        // of `[0, len)`; a recycled buffer's capacity covers `len`. Early
        // error returns leave a recycled buffer at `len == 0`, which drops
        // safely — `Line` is `Copy`.
        unsafe { dense.set_len(len) };
        let sets: u64 = Snap::decode_snap(dec)?;
        let ways = Snap::decode_snap(dec)?;
        let use_clock = Snap::decode_snap(dec)?;
        if !sets.is_power_of_two() {
            return Err(CheckpointError::Corrupt {
                what: "CacheArray set count must be a power of two".into(),
            });
        }
        let resident_count = resident.len();
        Ok(CacheArray {
            config,
            lines: Arc::new(CowLines {
                dense,
                resident: Some(resident),
            }),
            sets,
            ways,
            use_clock,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            resident_count,
        })
    }

    fn snap_size_hint(&self) -> usize {
        // Each resident line costs 17 bytes (tag byte + tag + lru); each
        // invalid run costs 9 (marker + u64), and resident lines can split
        // the array into at most `resident + 1` runs. The tail is the line
        // count plus sets/ways/use_clock.
        let resident = self.resident_blocks();
        self.config.snap_size_hint() + 8 + resident * 17 + (resident + 1) * 9 + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 4 sets x 2 ways x 64B blocks = 512 B.
        CacheArray::new(CacheConfig::new(512, 2, 64).unwrap()).unwrap()
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(4 * 1024 * 1024, 4, 64).unwrap();
        assert_eq!(c.sets(), 16384);
        assert_eq!(c.blocks(), 65536);
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(0, 1, 64).is_err());
        assert!(CacheConfig::new(512, 0, 64).is_err());
        assert!(CacheConfig::new(500, 2, 64).is_err()); // not a power of two
        assert!(CacheConfig::new(64, 2, 64).is_err()); // zero sets
        assert!(CacheConfig::new(512, 3, 64).is_err()); // non-pow2 assoc
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let a = BlockAddr(12);
        assert_eq!(c.touch(a), CoherenceState::Invalid);
        assert!(c.insert(a, CoherenceState::Shared).is_none());
        assert_eq!(c.touch(a), CoherenceState::Shared);
        assert_eq!(c.probe(a), CoherenceState::Shared);
    }

    #[test]
    fn conflicting_tags_map_to_same_set() {
        let mut c = small();
        // 4 sets: addresses 1, 5, 9 share set 1.
        assert!(c.insert(BlockAddr(1), CoherenceState::Shared).is_none());
        assert!(c.insert(BlockAddr(5), CoherenceState::Shared).is_none());
        // Third conflicting block evicts the LRU (addr 1).
        let ev = c.insert(BlockAddr(9), CoherenceState::Shared).unwrap();
        assert_eq!(ev.addr, BlockAddr(1));
        assert_eq!(ev.state, CoherenceState::Shared);
        assert_eq!(c.probe(BlockAddr(1)), CoherenceState::Invalid);
        assert_eq!(c.probe(BlockAddr(5)), CoherenceState::Shared);
    }

    #[test]
    fn lru_respects_touch_order() {
        let mut c = small();
        c.insert(BlockAddr(1), CoherenceState::Shared);
        c.insert(BlockAddr(5), CoherenceState::Shared);
        // Touch 1 so 5 becomes LRU.
        c.touch(BlockAddr(1));
        let ev = c.insert(BlockAddr(9), CoherenceState::Shared).unwrap();
        assert_eq!(ev.addr, BlockAddr(5));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.insert(BlockAddr(1), CoherenceState::Modified);
        c.insert(BlockAddr(5), CoherenceState::Shared);
        let ev = c.insert(BlockAddr(9), CoherenceState::Owned).unwrap();
        assert!(ev.state.is_dirty());
        assert_eq!(ev.addr, BlockAddr(1));
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = small();
        c.insert(BlockAddr(1), CoherenceState::Shared);
        assert!(c.insert(BlockAddr(1), CoherenceState::Modified).is_none());
        assert_eq!(c.probe(BlockAddr(1)), CoherenceState::Modified);
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn invalidate_and_set_state() {
        let mut c = small();
        c.insert(BlockAddr(7), CoherenceState::Modified);
        assert!(c.set_state(BlockAddr(7), CoherenceState::Owned));
        assert_eq!(c.probe(BlockAddr(7)), CoherenceState::Owned);
        assert_eq!(c.invalidate(BlockAddr(7)), CoherenceState::Owned);
        assert_eq!(c.probe(BlockAddr(7)), CoherenceState::Invalid);
        assert!(!c.set_state(BlockAddr(7), CoherenceState::Shared));
        assert_eq!(c.invalidate(BlockAddr(7)), CoherenceState::Invalid);
    }

    #[test]
    fn mosi_state_predicates() {
        assert!(CoherenceState::Modified.is_readable() && CoherenceState::Modified.is_writable());
        assert!(CoherenceState::Owned.is_readable() && !CoherenceState::Owned.is_writable());
        assert!(CoherenceState::Shared.is_readable() && !CoherenceState::Shared.is_writable());
        assert!(!CoherenceState::Invalid.is_readable());
        assert!(CoherenceState::Owned.is_owner() && CoherenceState::Modified.is_owner());
        assert!(!CoherenceState::Shared.is_owner());
        assert!(CoherenceState::Owned.is_dirty() && !CoherenceState::Shared.is_dirty());
    }

    #[test]
    fn invalid_run_len_matches_naive_scan() {
        // Exercise runs that end inside a chunk, at chunk boundaries, and in
        // the sub-chunk remainder, against a line-at-a-time reference.
        for total in [0usize, 1, 7, 8, 9, 16, 23, 64] {
            for first_valid in 0..=total {
                let mut lines = vec![Line::default(); total];
                if first_valid < total {
                    lines[first_valid].state = CoherenceState::Shared;
                }
                let naive = lines
                    .iter()
                    .take_while(|l| l.state == CoherenceState::Invalid)
                    .count();
                assert_eq!(
                    invalid_run_len(&lines),
                    naive,
                    "total={total} first_valid={first_valid}"
                );
            }
        }
    }

    #[test]
    fn zeroed_lines_are_default_lines() {
        // Pins the layout contract behind `zeroed_lines`: all-zero bytes
        // must be a valid default (Invalid) line. If `CoherenceState` ever
        // loses `Invalid = 0` or `Line` gains a non-zero-default field,
        // this fails before any cache misbehaves.
        for n in [0usize, 1, 7, 64] {
            let lines = zeroed_lines(n);
            assert_eq!(lines.len(), n);
            assert!(lines.iter().all(|l| *l == Line::default()));
        }
        assert_eq!(std::mem::discriminant(&CoherenceState::Invalid), {
            // An all-zero byte pattern decodes as Invalid.
            let state: CoherenceState = CoherenceState::default();
            std::mem::discriminant(&state)
        });
    }

    #[test]
    fn sparse_clone_preserves_contents_and_canonicalizes_junk() {
        use crate::checkpoint::{Decoder, Encoder, Snap};
        fn bytes_of(c: &CacheArray) -> Vec<u8> {
            let mut enc = Encoder::new();
            c.encode_snap(&mut enc);
            enc.into_bytes()
        }

        let mut a = small();
        a.insert(BlockAddr(12), CoherenceState::Modified);
        a.insert(BlockAddr(5), CoherenceState::Shared);
        a.insert(BlockAddr(9), CoherenceState::Owned);
        // Leave junk tag/lru bits on an Invalid line: invalidate keeps them.
        a.invalidate(BlockAddr(9));

        // Materialize through the scan path (a's in-place writes dropped
        // the seed). Invalidating a non-resident block calls the mutable
        // path — splitting the Arc — without changing any state.
        let mut b = a.clone();
        assert!(b.lines.resident.is_none());
        b.invalidate(BlockAddr(60));
        assert!(!Arc::ptr_eq(&a.lines, &b.lines), "clone materialized");
        for addr in 0..64u64 {
            assert_eq!(
                a.probe(BlockAddr(addr)),
                b.probe(BlockAddr(addr)),
                "probe mismatch at {addr}"
            );
        }
        assert_eq!(a.resident_blocks(), b.resident_blocks());
        // Snapshot bytes are identical: the encoding run-length-encodes
        // Invalid lines, so the junk the clone canonicalized never appears.
        assert_eq!(bytes_of(&a), bytes_of(&b));

        // Materialize through the decoder's resident seed.
        let encoded = bytes_of(&a);
        let restored = CacheArray::decode_snap(&mut Decoder::new(&encoded)).unwrap();
        assert!(restored.lines.resident.is_some());
        let mut c = restored.clone();
        c.invalidate(BlockAddr(60));
        assert!(!Arc::ptr_eq(&restored.lines, &c.lines));
        assert_eq!(bytes_of(&c), encoded);
    }

    #[test]
    fn decode_seeds_the_resident_list() {
        use crate::checkpoint::{Decoder, Encoder, Snap};
        let mut a = small();
        a.insert(BlockAddr(12), CoherenceState::Modified);
        a.insert(BlockAddr(5), CoherenceState::Shared);
        let mut enc = Encoder::new();
        a.encode_snap(&mut enc);
        let bytes = enc.into_bytes();
        let restored = CacheArray::decode_snap(&mut Decoder::new(&bytes)).unwrap();

        // The decoder records every resident line as it fills the array.
        let seed = restored.lines.resident.as_ref().expect("decode seeds");
        assert_eq!(seed.len(), 2);
        assert!(seed.windows(2).all(|w| w[0].0 < w[1].0), "index order");

        // The seeded fast paths agree with a dense scan.
        assert_eq!(restored.resident_blocks(), a.resident_blocks());
        let mut from_seed = Vec::new();
        restored.for_each_resident(|addr, state| from_seed.push((addr, state)));
        let mut from_scan = Vec::new();
        a.for_each_resident(|addr, state| from_scan.push((addr, state)));
        assert_eq!(from_seed, from_scan);

        // A write drops the seed (it no longer describes the array).
        let mut restored = restored;
        restored.insert(BlockAddr(1), CoherenceState::Exclusive);
        assert!(restored.lines.resident.is_none());
        assert_eq!(restored.resident_blocks(), 3);
    }

    #[test]
    fn forked_clone_shares_lines_until_first_write() {
        let mut a = small();
        a.insert(BlockAddr(12), CoherenceState::Modified);
        let mut b = a.clone();
        assert!(
            Arc::ptr_eq(&a.lines, &b.lines),
            "clone must share the line array"
        );
        // Reads keep sharing; the first mutation splits the Arc and leaves
        // the sibling untouched.
        assert_eq!(b.probe(BlockAddr(12)), CoherenceState::Modified);
        assert!(Arc::ptr_eq(&a.lines, &b.lines));
        b.invalidate(BlockAddr(12));
        assert!(!Arc::ptr_eq(&a.lines, &b.lines));
        assert_eq!(a.probe(BlockAddr(12)), CoherenceState::Modified);
        assert_eq!(b.probe(BlockAddr(12)), CoherenceState::Invalid);
    }

    #[test]
    fn direct_mapped_cache_works() {
        let mut c = CacheArray::new(CacheConfig::new(256, 1, 64).unwrap()).unwrap();
        // 4 sets, 1 way.
        c.insert(BlockAddr(0), CoherenceState::Shared);
        let ev = c.insert(BlockAddr(4), CoherenceState::Shared).unwrap();
        assert_eq!(ev.addr, BlockAddr(0));
    }
}
