//! The operation IR executed by simulated threads.
//!
//! Workload generators (the `mtvar-workloads` crate) emit per-thread streams
//! of [`Op`]s; the machine in [`crate::machine`] interprets them against the
//! processor, memory-system and scheduler models. An `Op` is deliberately
//! coarser than one instruction — a [`Op::Compute`] burst stands for a run of
//! ALU instructions — which keeps the event count proportional to memory and
//! synchronization activity rather than instruction count.

use crate::ids::{BlockAddr, LockId, Nanos};

/// Whether a memory access reads or writes its block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessKind {
    /// A load: needs a readable (M/O/S) copy of the block.
    Read,
    /// A store: needs an exclusive (M) copy of the block.
    Write,
}

/// Direction hint for conditional branches, produced by the workload's own
/// deterministic control-flow model and consumed by the branch predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BranchInfo {
    /// Static identity of the branch (hashes into predictor tables).
    pub pc: u32,
    /// Actual outcome.
    pub taken: bool,
}

/// One unit of work in a thread's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// Execute `instructions` ALU instructions touching the code region
    /// identified by `code_block` (drives the L1 I-cache model).
    Compute {
        /// Number of instructions in the burst (≥ 1).
        instructions: u32,
        /// Code block fetched for this burst.
        code_block: BlockAddr,
    },
    /// A data memory access.
    Memory {
        /// Block touched.
        addr: BlockAddr,
        /// Load or store.
        kind: AccessKind,
        /// Whether the access depends on the most recent in-flight load
        /// (pointer chasing): a dependent access cannot issue until that
        /// load completes, bounding memory-level parallelism no matter how
        /// large the reorder buffer is.
        dependent: bool,
    },
    /// A conditional branch (exercises the direct-branch predictor in the
    /// out-of-order model; costs one instruction slot in the simple model).
    Branch(BranchInfo),
    /// An indirect branch/call with a data-dependent target (exercises the
    /// cascaded indirect predictor).
    IndirectBranch {
        /// Static identity of the branch site.
        pc: u32,
        /// Dynamic target identity.
        target: u32,
    },
    /// A function call (pushes the return-address stack).
    Call {
        /// Token identifying the address execution returns to; the matching
        /// [`Op::Return`] carries the same value, which is what the RAS is
        /// checked against.
        return_pc: u32,
    },
    /// A function return (pops the return-address stack).
    Return {
        /// Actual return target (the matching call's `return_pc`).
        return_pc: u32,
    },
    /// Acquire the workload-level mutex `LockId`; blocks (after a bounded
    /// spin) if contended. Also performs an exclusive access to the lock's
    /// cache block, so lock handoffs generate real coherence traffic.
    Lock(LockId),
    /// Release a previously acquired mutex.
    Unlock(LockId),
    /// Mark the completion of one transaction (the unit of the paper's
    /// cycles-per-transaction metric, §3.1).
    TxnEnd,
    /// Block the thread for `Nanos` of simulated time (I/O, think time,
    /// log flush, ...). The CPU schedules another thread meanwhile.
    Io(Nanos),
    /// Voluntarily yield the processor at this point.
    Yield,
}

impl Op {
    /// Number of instruction slots the op occupies in a processor pipeline
    /// (used for ROB accounting in the out-of-order model).
    #[inline]
    pub fn instruction_count(&self) -> u32 {
        match self {
            Op::Compute { instructions, .. } => (*instructions).max(1),
            Op::Memory { .. }
            | Op::Branch(_)
            | Op::IndirectBranch { .. }
            | Op::Call { .. }
            | Op::Return { .. } => 1,
            // Synchronization/system ops correspond to short instruction
            // sequences; charge a nominal handful.
            Op::Lock(_) | Op::Unlock(_) => 4,
            Op::TxnEnd | Op::Io(_) | Op::Yield => 2,
        }
    }

    /// Whether this op can appear speculatively in an out-of-order window.
    /// Synchronization and system ops drain the pipeline instead.
    #[inline]
    pub fn is_serializing(&self) -> bool {
        matches!(
            self,
            Op::Lock(_) | Op::Unlock(_) | Op::TxnEnd | Op::Io(_) | Op::Yield
        )
    }
}

impl crate::checkpoint::Snap for AccessKind {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        enc.put_u8(match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(AccessKind::Read),
            1 => Ok(AccessKind::Write),
            _ => Err(crate::checkpoint::CheckpointError::Corrupt {
                what: "AccessKind tag".into(),
            }),
        }
    }
    fn snap_size_hint(&self) -> usize {
        1
    }
}

crate::impl_snap!(BranchInfo { pc, taken });

impl crate::checkpoint::Snap for Op {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        match self {
            Op::Compute {
                instructions,
                code_block,
            } => {
                enc.put_u8(0);
                instructions.encode_snap(enc);
                code_block.encode_snap(enc);
            }
            Op::Memory {
                addr,
                kind,
                dependent,
            } => {
                enc.put_u8(1);
                addr.encode_snap(enc);
                kind.encode_snap(enc);
                dependent.encode_snap(enc);
            }
            Op::Branch(info) => {
                enc.put_u8(2);
                info.encode_snap(enc);
            }
            Op::IndirectBranch { pc, target } => {
                enc.put_u8(3);
                pc.encode_snap(enc);
                target.encode_snap(enc);
            }
            Op::Call { return_pc } => {
                enc.put_u8(4);
                return_pc.encode_snap(enc);
            }
            Op::Return { return_pc } => {
                enc.put_u8(5);
                return_pc.encode_snap(enc);
            }
            Op::Lock(id) => {
                enc.put_u8(6);
                id.encode_snap(enc);
            }
            Op::Unlock(id) => {
                enc.put_u8(7);
                id.encode_snap(enc);
            }
            Op::TxnEnd => enc.put_u8(8),
            Op::Io(ns) => {
                enc.put_u8(9);
                ns.encode_snap(enc);
            }
            Op::Yield => enc.put_u8(10),
        }
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::Snap;
        Ok(match dec.get_u8()? {
            0 => Op::Compute {
                instructions: Snap::decode_snap(dec)?,
                code_block: Snap::decode_snap(dec)?,
            },
            1 => Op::Memory {
                addr: Snap::decode_snap(dec)?,
                kind: Snap::decode_snap(dec)?,
                dependent: Snap::decode_snap(dec)?,
            },
            2 => Op::Branch(Snap::decode_snap(dec)?),
            3 => Op::IndirectBranch {
                pc: Snap::decode_snap(dec)?,
                target: Snap::decode_snap(dec)?,
            },
            4 => Op::Call {
                return_pc: Snap::decode_snap(dec)?,
            },
            5 => Op::Return {
                return_pc: Snap::decode_snap(dec)?,
            },
            6 => Op::Lock(Snap::decode_snap(dec)?),
            7 => Op::Unlock(Snap::decode_snap(dec)?),
            8 => Op::TxnEnd,
            9 => Op::Io(Snap::decode_snap(dec)?),
            10 => Op::Yield,
            _ => {
                return Err(crate::checkpoint::CheckpointError::Corrupt {
                    what: "Op tag".into(),
                })
            }
        })
    }
    fn snap_size_hint(&self) -> usize {
        // Largest variant: tag + two u64 fields (Compute, IndirectBranch).
        17
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts() {
        let c = Op::Compute {
            instructions: 17,
            code_block: BlockAddr(1),
        };
        assert_eq!(c.instruction_count(), 17);
        assert_eq!(
            Op::Memory {
                addr: BlockAddr(2),
                kind: AccessKind::Read,
                dependent: true,
            }
            .instruction_count(),
            1
        );
        assert_eq!(Op::Lock(LockId(0)).instruction_count(), 4);
        // A zero-instruction burst still occupies one slot.
        let z = Op::Compute {
            instructions: 0,
            code_block: BlockAddr(1),
        };
        assert_eq!(z.instruction_count(), 1);
    }

    #[test]
    fn serializing_classification() {
        assert!(Op::Lock(LockId(1)).is_serializing());
        assert!(Op::Io(100).is_serializing());
        assert!(Op::TxnEnd.is_serializing());
        assert!(!Op::Branch(BranchInfo { pc: 1, taken: true }).is_serializing());
        assert!(!Op::Return { return_pc: 3 }.is_serializing());
    }
}
