//! Workload-level mutexes with direct-handoff semantics.
//!
//! Lock-acquisition *order* is one of the paper's §2.1 sources of space
//! variability ("locks may be acquired in different orders, resulting in
//! significant contention in one run, but not another"). The table tracks
//! holders and FIFO wait queues; contention timing and convoy formation then
//! emerge from the machine's interleaving.

use std::collections::VecDeque;

use crate::ids::{BlockAddr, Cycle, LockId, ThreadId};

/// First block address of the lock-word region. Workload data addresses must
/// stay below this (see `mtvar-workloads` region map); each lock's word lives
/// at `LOCK_REGION_BASE + lock_id` so lock handoffs generate real coherence
/// traffic on distinct blocks.
pub const LOCK_REGION_BASE: u64 = 1 << 40;

/// Outcome of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The lock was free; the caller now holds it.
    Acquired,
    /// The lock is held; the caller was appended to the wait queue.
    Queued,
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct LockState {
    holder: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
    /// When the current holder acquired (for hold-time stats).
    acquired_at: Cycle,
}

/// Aggregate lock counters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LockStats {
    /// Successful acquisitions (immediate or after waiting).
    pub acquisitions: u64,
    /// Acquisition attempts that found the lock held.
    pub contended: u64,
    /// Total ns threads spent blocked on lock queues.
    pub wait_ns: u64,
    /// Total ns locks were held.
    pub hold_ns: u64,
}

impl LockStats {
    /// Fraction of acquisitions that hit contention.
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

/// The lock table: one entry per `LockId`, grown on demand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LockTable {
    locks: Vec<LockState>,
    /// When each blocked thread started waiting (indexed by thread).
    wait_since: Vec<Cycle>,
    stats: LockStats,
}

impl LockTable {
    /// Creates an empty table sized for `thread_count` threads.
    pub fn new(thread_count: usize) -> Self {
        LockTable {
            locks: Vec::new(),
            wait_since: vec![0; thread_count],
            stats: LockStats::default(),
        }
    }

    /// The cache block holding `lock`'s word.
    pub fn block_of(lock: LockId) -> BlockAddr {
        BlockAddr(LOCK_REGION_BASE + u64::from(lock.0))
    }

    fn slot(&mut self, lock: LockId) -> &mut LockState {
        let idx = lock.0 as usize;
        if idx >= self.locks.len() {
            self.locks.resize_with(idx + 1, LockState::default);
        }
        &mut self.locks[idx]
    }

    /// Attempts to acquire `lock` for `thread` at `now`.
    ///
    /// On contention the thread is queued FIFO and the caller must block it.
    pub fn acquire(&mut self, lock: LockId, thread: ThreadId, now: Cycle) -> AcquireOutcome {
        let slot = self.slot(lock);
        match slot.holder {
            None => {
                slot.holder = Some(thread);
                slot.acquired_at = now;
                self.stats.acquisitions += 1;
                AcquireOutcome::Acquired
            }
            Some(holder) => {
                debug_assert_ne!(holder, thread, "recursive acquisition is a workload bug");
                slot.waiters.push_back(thread);
                self.stats.contended += 1;
                self.wait_since[thread.index()] = now;
                AcquireOutcome::Queued
            }
        }
    }

    /// Releases `lock` at `now`. With direct handoff, ownership passes to the
    /// first waiter, who is returned so the machine can wake it; the waiter's
    /// queue time is charged to [`LockStats::wait_ns`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if `thread` does not hold the lock — a workload bug.
    pub fn release(&mut self, lock: LockId, thread: ThreadId, now: Cycle) -> Option<ThreadId> {
        let idx = lock.0 as usize;
        let slot = &mut self.locks[idx];
        debug_assert_eq!(slot.holder, Some(thread), "releasing a lock not held");
        self.stats.hold_ns += now.saturating_sub(slot.acquired_at);
        match slot.waiters.pop_front() {
            Some(next) => {
                slot.holder = Some(next);
                slot.acquired_at = now;
                self.stats.acquisitions += 1;
                self.stats.wait_ns += now.saturating_sub(self.wait_since[next.index()]);
                Some(next)
            }
            None => {
                slot.holder = None;
                None
            }
        }
    }

    /// Current holder of `lock`, if any.
    pub fn holder(&self, lock: LockId) -> Option<ThreadId> {
        self.locks.get(lock.0 as usize).and_then(|s| s.holder)
    }

    /// Number of threads queued on `lock`.
    pub fn queue_len(&self, lock: LockId) -> usize {
        self.locks
            .get(lock.0 as usize)
            .map_or(0, |s| s.waiters.len())
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Resets counters (end of warmup) without touching lock states.
    pub fn reset_stats(&mut self) {
        self.stats = LockStats::default();
    }
}

crate::impl_snap!(LockState {
    holder,
    waiters,
    acquired_at,
});
crate::impl_snap!(LockStats {
    acquisitions,
    contended,
    wait_ns,
    hold_ns,
});
crate::impl_snap!(LockTable {
    locks,
    wait_since,
    stats,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_release() {
        let mut t = LockTable::new(4);
        let l = LockId(0);
        assert_eq!(t.acquire(l, ThreadId(1), 100), AcquireOutcome::Acquired);
        assert_eq!(t.holder(l), Some(ThreadId(1)));
        assert_eq!(t.release(l, ThreadId(1), 400), None);
        assert_eq!(t.holder(l), None);
        assert_eq!(t.stats().acquisitions, 1);
        assert_eq!(t.stats().hold_ns, 300);
        assert_eq!(t.stats().contention_ratio(), 0.0);
    }

    #[test]
    fn contended_acquire_queues_fifo_with_handoff() {
        let mut t = LockTable::new(4);
        let l = LockId(3);
        t.acquire(l, ThreadId(0), 0);
        assert_eq!(t.acquire(l, ThreadId(1), 10), AcquireOutcome::Queued);
        assert_eq!(t.acquire(l, ThreadId(2), 20), AcquireOutcome::Queued);
        assert_eq!(t.queue_len(l), 2);
        // Handoff to first waiter.
        assert_eq!(t.release(l, ThreadId(0), 100), Some(ThreadId(1)));
        assert_eq!(t.holder(l), Some(ThreadId(1)));
        assert_eq!(t.stats().wait_ns, 90);
        assert_eq!(t.release(l, ThreadId(1), 150), Some(ThreadId(2)));
        assert_eq!(t.stats().wait_ns, 90 + 130);
        assert_eq!(t.release(l, ThreadId(2), 160), None);
        assert_eq!(t.stats().acquisitions, 3);
        assert_eq!(t.stats().contended, 2);
    }

    #[test]
    fn lock_blocks_are_distinct_and_out_of_data_range() {
        let a = LockTable::block_of(LockId(0));
        let b = LockTable::block_of(LockId(1));
        assert_ne!(a, b);
        assert!(a.0 >= LOCK_REGION_BASE);
    }

    #[test]
    fn table_grows_on_demand() {
        let mut t = LockTable::new(2);
        assert_eq!(
            t.acquire(LockId(500), ThreadId(0), 0),
            AcquireOutcome::Acquired
        );
        assert_eq!(t.holder(LockId(500)), Some(ThreadId(0)));
        assert_eq!(t.holder(LockId(1000)), None);
    }

    #[test]
    fn reset_stats_preserves_holders() {
        let mut t = LockTable::new(2);
        t.acquire(LockId(0), ThreadId(0), 0);
        t.reset_stats();
        assert_eq!(t.stats().acquisitions, 0);
        assert_eq!(t.holder(LockId(0)), Some(ThreadId(0)));
    }
}
