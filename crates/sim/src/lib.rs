//! `mtvar-sim`: a deterministic discrete-event multiprocessor timing
//! simulator — the substrate for reproducing *Variability in Architectural
//! Simulations of Multi-Threaded Workloads* (Alameldeen & Wood, HPCA 2003).
//!
//! The simulated machine mirrors the paper's §3.2 target: 16 nodes, each
//! with split 128 KB 4-way L1 caches and a 4 MB 4-way unified L2, kept
//! coherent with a MOSI invalidation-based snooping protocol over a crossbar
//! interconnect (50 ns per traversal) and 80 ns DRAM, clocked at 1 GHz.
//! Processors run either a blocking IPC-1 model or a TFsim-like 4-wide
//! out-of-order model with a configurable reorder buffer and real branch
//! predictor structures. An OS scheduler model (quanta, priorities, blocking
//! locks, I/O sleep) makes thread interleaving a function of simulated time,
//! so the §3.3 pseudo-random perturbation of L2-miss latencies exposes the
//! workloads' inherent space variability.
//!
//! # Quick start
//!
//! ```
//! # fn main() -> Result<(), mtvar_sim::SimError> {
//! use mtvar_sim::config::MachineConfig;
//! use mtvar_sim::machine::Machine;
//! use mtvar_sim::workload::UniformWorkload;
//!
//! // The paper's 16-node target with 0–4 ns perturbation on L2 misses.
//! let cfg = MachineConfig::hpca2003().with_perturbation(4, 42);
//! let mut machine = Machine::new(cfg, UniformWorkload::new(32, 40, 25))?;
//! let run = machine.run_transactions(200)?;
//! println!("cycles/txn = {:.0}", run.cycles_per_transaction());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
pub mod checkpoint;
pub mod config;
pub mod equeue;
pub mod ids;
pub mod machine;
pub mod mem;
pub mod noise;
pub mod ops;
pub mod proc;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod sync;
pub mod workload;

use std::fmt;

/// Error type for simulator construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was inconsistent or out of range.
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// Simulation wedged: no runnable thread and no pending event before the
    /// requested work completed.
    Deadlock {
        /// Simulated time at which the machine wedged.
        at_cycle: ids::Cycle,
        /// Transactions committed in the current interval before wedging.
        committed: u64,
    },
    /// A checkpoint could not be decoded into a machine (truncated,
    /// corrupted, or produced by an incompatible encoding version).
    BadCheckpoint {
        /// Description of the rejection.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            SimError::Deadlock {
                at_cycle,
                committed,
            } => write!(
                f,
                "simulation deadlocked at cycle {at_cycle} after {committed} transaction(s)"
            ),
            SimError::BadCheckpoint { what } => write!(f, "bad checkpoint: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::InvalidConfig {
            what: "x must be y".into(),
        };
        assert!(e.to_string().contains("x must be y"));
        let d = SimError::Deadlock {
            at_cycle: 5,
            committed: 2,
        };
        assert!(d.to_string().contains("cycle 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
