//! Whole-machine configuration.

use crate::ids::Nanos;
use crate::mem::{CoherenceState, MemoryConfig};
use crate::noise::NoiseConfig;
use crate::proc::ProcessorConfig;
use crate::sched::SchedConfig;
use crate::SimError;

/// Test hook: which machine structure a [`FaultSpec`] corrupts.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultKind {
    /// Forcibly set `block` to `state` in `cpu`'s L2 (via the memory
    /// system's `force_l2_state` test hook), bypassing the protocol.
    CoherenceState {
        /// Index of the CPU whose L2 is corrupted.
        cpu: u32,
        /// Block address forced.
        block: u64,
        /// Coherence state planted.
        state: CoherenceState,
    },
    /// Forcibly record the committing thread as Running on `cpu` in the
    /// scheduler (or on the next CPU if it already runs there), so one
    /// thread appears to run on two CPUs at once — the scheduling invariant
    /// the monitor must catch.
    SchedulerDoubleRun {
        /// Index of the CPU the duplicate Running record points at.
        cpu: u32,
    },
}

impl FaultKind {
    /// The CPU index the fault targets (validated against the machine size).
    pub fn cpu(&self) -> u32 {
        match *self {
            FaultKind::CoherenceState { cpu, .. } | FaultKind::SchedulerDoubleRun { cpu } => cpu,
        }
    }
}

/// Test hook: a deterministic fault injection. When the machine's cumulative
/// commit count reaches `after_commits`, the configured [`FaultKind`] is
/// delivered (exactly once), and the invariant monitor — when one is enabled
/// — immediately re-checks the corrupted structure. Exists solely so the
/// executor-violation tests can plant an illegal state *mid-run* and verify
/// the violations channel reports it; never set it in real experiments.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultSpec {
    /// Cumulative commit count (across warmup and measurement intervals) at
    /// which the fault fires, exactly once.
    pub after_commits: u64,
    /// What gets corrupted.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Shorthand for the original coherence-corruption fault.
    pub fn coherence(after_commits: u64, cpu: u32, block: u64, state: CoherenceState) -> Self {
        FaultSpec {
            after_commits,
            kind: FaultKind::CoherenceState { cpu, block, state },
        }
    }

    /// Shorthand for the scheduler double-run fault.
    pub fn scheduler_double_run(after_commits: u64, cpu: u32) -> Self {
        FaultSpec {
            after_commits,
            kind: FaultKind::SchedulerDoubleRun { cpu },
        }
    }
}

/// Complete configuration of a simulated machine.
///
/// Construct via [`MachineConfig::hpca2003`] (the paper's 16-node E10000-like
/// target) or [`MachineConfig::e5000_like`] (the 12-CPU "real machine" of
/// §2.2), then customize with the `with_*` methods:
///
/// ```
/// use mtvar_sim::config::MachineConfig;
/// use mtvar_sim::proc::{OooConfig, ProcessorConfig};
///
/// let cfg = MachineConfig::hpca2003()
///     .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(32)))
///     .with_perturbation(4, 12345);
/// assert_eq!(cfg.cpus, 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MachineConfig {
    /// Number of processor nodes.
    pub cpus: usize,
    /// Memory-hierarchy geometry and latencies.
    pub memory: MemoryConfig,
    /// Processor timing model.
    pub processor: ProcessorConfig,
    /// Scheduler parameters.
    pub sched: SchedConfig,
    /// Maximum §3.3 perturbation added per L2 miss (ns); 0 disables.
    pub perturbation_max_ns: Nanos,
    /// Perturbation seed — *the* per-run knob for space-variability studies.
    pub perturbation_seed: u64,
    /// Environmental noise (None = the clean simulator of §3.2).
    pub noise: Option<NoiseConfig>,
    /// Record the Figure-1 scheduling-event log.
    pub record_sched_events: bool,
    /// Run the [`check::InvariantMonitor`](crate::check::InvariantMonitor)
    /// inside the event loop, re-verifying coherence/inclusion/conservation
    /// invariants after every memory operation. The monitor is read-only, so
    /// simulation results are identical either way; expect a modest
    /// slowdown.
    ///
    /// Always defaults to `false` — the `invariant-monitor` cargo feature is
    /// ORed in at machine construction instead of changing this default, so
    /// a configuration's `Debug` fingerprint (and every run seed derived
    /// from it) is identical whether or not the feature is compiled in.
    pub check_invariants: bool,
    /// Test hook: deterministic coherence-fault injection (see [`FaultSpec`]).
    /// Always `None` outside the invariant-channel test suites.
    #[doc(hidden)]
    pub fault: Option<FaultSpec>,
}

impl MachineConfig {
    /// The paper's §3.2.1 target: 16 nodes, 128 KB 4-way L1s, 4 MB 4-way L2,
    /// MOSI snooping, 50 ns hops, 80 ns DRAM, simple processor model, no
    /// perturbation, no noise.
    pub fn hpca2003() -> Self {
        MachineConfig {
            cpus: 16,
            memory: MemoryConfig::hpca2003(),
            processor: ProcessorConfig::Simple,
            sched: SchedConfig::default(),
            perturbation_max_ns: 0,
            perturbation_seed: 0,
            noise: None,
            record_sched_events: false,
            check_invariants: false,
            fault: None,
        }
    }

    /// The §2.2 "real machine": a 12-processor E5000-like system with
    /// environmental noise enabled (seeded per run).
    pub fn e5000_like(noise_seed: u64) -> Self {
        let mut cfg = MachineConfig::hpca2003();
        cfg.cpus = 12;
        // 512 KB unified L2 per the paper's E5000 description.
        cfg.memory.l2.size_bytes = 512 * 1024;
        cfg.noise = Some(NoiseConfig::default_with_seed(noise_seed));
        cfg
    }

    /// Replaces the processor model.
    pub fn with_processor(mut self, processor: ProcessorConfig) -> Self {
        self.processor = processor;
        self
    }

    /// Sets the §3.3 perturbation (magnitude in ns, per-run seed).
    pub fn with_perturbation(mut self, max_ns: Nanos, seed: u64) -> Self {
        self.perturbation_max_ns = max_ns;
        self.perturbation_seed = seed;
        self
    }

    /// Sets the number of CPUs.
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }

    /// Replaces the L2 associativity (Experiment 1's knob), keeping size and
    /// block size fixed as the paper does.
    pub fn with_l2_associativity(mut self, ways: u32) -> Self {
        self.memory.l2.associativity = ways;
        self
    }

    /// Replaces the DRAM access latency (the Figure 4 knob, swept 80–90 ns).
    pub fn with_dram_latency_ns(mut self, ns: Nanos) -> Self {
        self.memory.mem_provide_ns = ns;
        self
    }

    /// Replaces the snooping coherence protocol (the paper's target uses
    /// MOSI).
    pub fn with_protocol(mut self, protocol: crate::mem::CoherenceProtocol) -> Self {
        self.memory.protocol = protocol;
        self
    }

    /// Switches the coherence transport from the snooping bus to per-region
    /// home-node directories (see [`Directory`](crate::mem::Directory)),
    /// keeping the protocol state machine (MOSI/MESI/MOESI) as configured —
    /// the organization that scales the machine past the paper's 16 CPUs.
    /// The resulting configuration is fingerprint-distinct from every
    /// snooping configuration, so golden keys and checkpoint-cache keys
    /// never collide across transports.
    pub fn with_directory_coherence(mut self) -> Self {
        self.memory.protocol = self.memory.protocol.directory();
        self
    }

    /// Enables the Figure-1 scheduling-event log.
    pub fn with_sched_log(mut self) -> Self {
        self.record_sched_events = true;
        self
    }

    /// Enables continuous invariant checking (see
    /// [`MachineConfig::check_invariants`]).
    pub fn with_invariant_checks(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Test hook: installs a deterministic coherence-fault injection (see
    /// [`FaultSpec`]). Only the executor-violation test suites should call
    /// this.
    #[doc(hidden)]
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Replaces the environmental-noise model.
    pub fn with_noise(mut self, noise: Option<NoiseConfig>) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the scheduler parameters.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the first inconsistency.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cpus == 0 {
            return Err(SimError::InvalidConfig {
                what: "machine needs at least one CPU".into(),
            });
        }
        self.memory.validate()?;
        self.sched.validate()?;
        if let Some(noise) = &self.noise {
            noise.validate()?;
        }
        if let Some(fault) = &self.fault {
            if u64::from(fault.kind.cpu()) >= self.cpus as u64 {
                return Err(SimError::InvalidConfig {
                    what: format!(
                        "fault injection targets CPU {} but machine has {} CPUs",
                        fault.kind.cpu(),
                        self.cpus
                    ),
                });
            }
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::hpca2003()
    }
}

impl crate::checkpoint::Snap for FaultKind {
    fn encode_snap(&self, enc: &mut crate::checkpoint::Encoder) {
        match *self {
            FaultKind::CoherenceState { cpu, block, state } => {
                enc.put_u8(0);
                cpu.encode_snap(enc);
                block.encode_snap(enc);
                state.encode_snap(enc);
            }
            FaultKind::SchedulerDoubleRun { cpu } => {
                enc.put_u8(1);
                cpu.encode_snap(enc);
            }
        }
    }
    fn decode_snap(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::Snap;
        Ok(match dec.get_u8()? {
            0 => FaultKind::CoherenceState {
                cpu: Snap::decode_snap(dec)?,
                block: Snap::decode_snap(dec)?,
                state: Snap::decode_snap(dec)?,
            },
            1 => FaultKind::SchedulerDoubleRun {
                cpu: Snap::decode_snap(dec)?,
            },
            _ => {
                return Err(crate::checkpoint::CheckpointError::Corrupt {
                    what: "FaultKind tag".into(),
                })
            }
        })
    }
    fn snap_size_hint(&self) -> usize {
        // Largest variant: tag + cpu + block + state.
        14
    }
}

crate::impl_snap!(FaultSpec {
    after_commits,
    kind
});
crate::impl_snap!(MachineConfig {
    cpus,
    memory,
    processor,
    sched,
    perturbation_max_ns,
    perturbation_seed,
    noise,
    record_sched_events,
    check_invariants,
    fault,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::OooConfig;

    #[test]
    fn paper_defaults() {
        let cfg = MachineConfig::hpca2003();
        assert_eq!(cfg.cpus, 16);
        assert_eq!(cfg.memory.l2.size_bytes, 4 * 1024 * 1024);
        assert_eq!(cfg.memory.l2.associativity, 4);
        assert!(cfg.validate().is_ok());
        assert!(cfg.noise.is_none());
        assert_eq!(cfg.perturbation_max_ns, 0);
        assert!(!cfg.check_invariants);
    }

    #[test]
    fn invariant_checks_builder() {
        let cfg = MachineConfig::hpca2003().with_invariant_checks();
        assert!(cfg.check_invariants);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn e5000_has_noise_and_12_cpus() {
        let cfg = MachineConfig::e5000_like(7);
        assert_eq!(cfg.cpus, 12);
        assert!(cfg.noise.is_some());
        assert_eq!(cfg.memory.l2.size_bytes, 512 * 1024);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(4)
            .with_l2_associativity(2)
            .with_perturbation(4, 99)
            .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(16)))
            .with_sched_log();
        assert_eq!(cfg.cpus, 4);
        assert_eq!(cfg.memory.l2.associativity, 2);
        assert_eq!(cfg.perturbation_max_ns, 4);
        assert!(cfg.record_sched_events);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let cfg = MachineConfig::hpca2003().with_cpus(0);
        assert!(cfg.validate().is_err());
        let cfg = MachineConfig::hpca2003().with_l2_associativity(3);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fault_spec_validation() {
        let fault = FaultSpec::coherence(5, 3, 0x40, CoherenceState::Exclusive);
        let cfg = MachineConfig::hpca2003().with_cpus(4).with_fault(fault);
        assert_eq!(cfg.fault, Some(fault));
        assert!(cfg.validate().is_ok());

        // A fault aimed at a CPU the machine doesn't have is rejected before
        // it can panic inside the memory system's node indexing.
        let cfg = MachineConfig::hpca2003().with_cpus(2).with_fault(fault);
        assert!(cfg.validate().is_err());

        // The scheduler fault is validated the same way.
        let fault = FaultSpec::scheduler_double_run(5, 3);
        let cfg = MachineConfig::hpca2003().with_cpus(2).with_fault(fault);
        assert!(cfg.validate().is_err());
    }
}
