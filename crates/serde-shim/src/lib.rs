//! Offline stand-in for the [serde](https://serde.rs) facade.
//!
//! This workspace builds in environments with no network access, so it cannot
//! depend on crates.io. The `serde` *feature* on the mtvar crates only gates
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]`
//! annotations; nothing in-tree performs actual serialization. This crate
//! supplies just enough surface for those annotations to compile:
//!
//! * marker traits [`Serialize`] and [`Deserialize`], and
//! * no-op derive macros of the same names (via the sibling `serde_derive`
//!   shim), which emit empty token streams.
//!
//! To use real serde (e.g. to add JSON export with `serde_json`), point the
//! workspace `serde` dependency back at crates.io — the annotation sites need
//! no changes, because they already use the real serde derive syntax.

/// Marker stand-in for `serde::Serialize`.
///
/// The no-op derive does not implement this trait; it exists so downstream
/// code can name the path `serde::Serialize` in bounds if it ever needs to.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Mirrors [`Serialize`]; the lifetime parameter of real serde's
/// `Deserialize<'de>` is intentionally omitted — no in-tree code names it.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
