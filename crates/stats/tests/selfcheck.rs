//! Statistical self-validation: the inference routines against values
//! computed by hand (closed forms a textbook reader can re-derive), plus
//! empirical calibration experiments showing the procedures deliver their
//! nominal guarantees — a 95% confidence interval really covers ~95% of the
//! time, and α = 0.05 tests really reject true nulls ~5% of the time.
//!
//! Everything here is exact or seeded; no test depends on wall-clock,
//! threading, or platform floating-point quirks beyond 1e-9 tolerances on
//! closed-form values.

use mtvar_stats::describe::Summary;
use mtvar_stats::dist::{ContinuousDistribution, Normal};
use mtvar_stats::infer::{
    anova_one_way, mean_confidence_interval, sample_size_for_relative_error, two_sample_t_test,
    TTestKind,
};

const TOL: f64 = 1e-9;

/// SplitMix64, inlined so this crate's tests stay dependency-free; only used
/// to drive the seeded calibration experiments below.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform strictly inside (0, 1), safe to feed to `quantile`.
    fn next_open01(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// One N(mean, sd²) draw by inverse-transform sampling.
    fn next_normal(&mut self, z: &Normal, mean: f64, sd: f64) -> f64 {
        mean + sd * z.quantile(self.next_open01()).unwrap()
    }
}

// ---------------------------------------------------------------------------
// Hand-computed closed forms
// ---------------------------------------------------------------------------

#[test]
fn pooled_t_matches_hand_computation() {
    // a = [2,4,6,8]: mean 5, s² = 20/3.  b = [1,2,3,4]: mean 2.5, s² = 5/3.
    // Pooled s² = (3·20/3 + 3·5/3)/6 = 25/6; se = √(25/6 · 1/2) = 5/(2√3);
    // t = 2.5 / (5/(2√3)) = √3, df = 6.
    let a = Summary::from_slice(&[2.0, 4.0, 6.0, 8.0]).unwrap();
    let b = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    let t = two_sample_t_test(&a, &b, TTestKind::Pooled).unwrap();
    assert!(
        (t.statistic() - 3.0_f64.sqrt()).abs() < TOL,
        "t = {}",
        t.statistic()
    );
    assert!((t.df() - 6.0).abs() < TOL, "df = {}", t.df());
}

#[test]
fn welch_t_matches_hand_computation() {
    // Same data; Welch's se² = 20/12 + 5/12 = 25/12 gives the same √3
    // statistic, but Welch–Satterthwaite df
    //   = (25/12)² / [(20/12)²/3 + (5/12)²/3] = 625/(425/3) = 75/17.
    let a = Summary::from_slice(&[2.0, 4.0, 6.0, 8.0]).unwrap();
    let b = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    let t = two_sample_t_test(&a, &b, TTestKind::Welch).unwrap();
    assert!((t.statistic() - 3.0_f64.sqrt()).abs() < TOL);
    assert!((t.df() - 75.0 / 17.0).abs() < TOL, "df = {}", t.df());
}

#[test]
fn t_test_p_value_matches_df2_closed_form() {
    // a = [1,2], b = [3,4]: t = -2√2 with df = 2. The t CDF with two
    // degrees of freedom has the closed form
    //   F(t) = 1/2 + t / (2√2 · √(1 + t²/2)),
    // so P(|T| > 2√2) = 1 - 2/√5 ≈ 0.105572809.
    let a = Summary::from_slice(&[1.0, 2.0]).unwrap();
    let b = Summary::from_slice(&[3.0, 4.0]).unwrap();
    let t = two_sample_t_test(&a, &b, TTestKind::Pooled).unwrap();
    assert!((t.statistic() + 2.0 * 2.0_f64.sqrt()).abs() < TOL);
    assert!((t.df() - 2.0).abs() < TOL);
    let expected_p = 1.0 - 2.0 / 5.0_f64.sqrt();
    assert!(
        (t.p_two_sided() - expected_p).abs() < TOL,
        "p = {}, expected {expected_p}",
        t.p_two_sided()
    );
}

#[test]
fn anova_matches_hand_computation() {
    // Groups [0,2,4], [4,6,8], [8,10,12]: group means 2, 6, 10, grand mean
    // 6. SSB = 3·(16+0+16) = 96; each group contributes 8 within → SSW = 24;
    // df = (2, 6); F = (96/2)/(24/6) = 12. The F(2, d) survival function has
    // the closed form (1 + 2f/d)^(-d/2), so p = (1 + 4)⁻³ = 0.008 exactly.
    let anova = anova_one_way(&[&[0.0, 2.0, 4.0], &[4.0, 6.0, 8.0], &[8.0, 10.0, 12.0]]).unwrap();
    assert!(
        (anova.ss_between() - 96.0).abs() < TOL,
        "SSB = {}",
        anova.ss_between()
    );
    assert!(
        (anova.ss_within() - 24.0).abs() < TOL,
        "SSW = {}",
        anova.ss_within()
    );
    assert!((anova.df_between() - 2.0).abs() < TOL);
    assert!((anova.df_within() - 6.0).abs() < TOL);
    assert!(
        (anova.f_statistic() - 12.0).abs() < TOL,
        "F = {}",
        anova.f_statistic()
    );
    assert!(
        (anova.p_value() - 0.008).abs() < TOL,
        "p = {}",
        anova.p_value()
    );
}

// ---------------------------------------------------------------------------
// Empirical calibration
// ---------------------------------------------------------------------------

#[test]
fn confidence_interval_coverage_is_nominal() {
    // Draw 1500 samples of n = 10 from N(100, 15²), build the 95% t-based
    // interval each time, and count how often it covers the true mean. The
    // t interval is exact for normal data, so empirical coverage must sit
    // near 0.95 (binomial sd of the estimate ≈ 0.0056; ±2% is ~3.6σ).
    const EXPERIMENTS: usize = 1500;
    const N: usize = 10;
    let z = Normal::standard();
    let mut rng = SplitMix64(0x5E1F_C0DE_0000_0001);
    let mut covered = 0usize;
    for _ in 0..EXPERIMENTS {
        let sample: Vec<f64> = (0..N).map(|_| rng.next_normal(&z, 100.0, 15.0)).collect();
        let summary = Summary::from_slice(&sample).unwrap();
        let ci = mean_confidence_interval(&summary, 0.95).unwrap();
        if ci.contains(100.0) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / EXPERIMENTS as f64;
    assert!(
        (0.93..=0.97).contains(&coverage),
        "95% CI covered the true mean in {coverage:.4} of {EXPERIMENTS} experiments",
    );
}

#[test]
fn t_test_type_i_error_rate_is_nominal() {
    // Both groups drawn from the same N(0, 1): an α = 0.05 two-sided pooled
    // t-test must reject in ~5% of replications (binomial sd ≈ 0.0077).
    const REPS: usize = 800;
    const N: usize = 8;
    let z = Normal::standard();
    let mut rng = SplitMix64(0x5E1F_C0DE_0000_0002);
    let mut rejections = 0usize;
    for _ in 0..REPS {
        let a: Vec<f64> = (0..N).map(|_| rng.next_normal(&z, 0.0, 1.0)).collect();
        let b: Vec<f64> = (0..N).map(|_| rng.next_normal(&z, 0.0, 1.0)).collect();
        let sa = Summary::from_slice(&a).unwrap();
        let sb = Summary::from_slice(&b).unwrap();
        let t = two_sample_t_test(&sa, &sb, TTestKind::Pooled).unwrap();
        if t.p_two_sided() < 0.05 {
            rejections += 1;
        }
    }
    let rate = rejections as f64 / REPS as f64;
    assert!(
        (0.03..=0.075).contains(&rate),
        "t-test rejected a true null in {rate:.4} of {REPS} replications",
    );
}

#[test]
fn anova_type_i_error_rate_is_nominal() {
    // Three groups from the same N(0, 1): one-way ANOVA at α = 0.05 must
    // likewise reject in ~5% of replications.
    const REPS: usize = 600;
    const N: usize = 6;
    let z = Normal::standard();
    let mut rng = SplitMix64(0x5E1F_C0DE_0000_0003);
    let mut rejections = 0usize;
    for _ in 0..REPS {
        let g: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..N).map(|_| rng.next_normal(&z, 0.0, 1.0)).collect())
            .collect();
        let groups: Vec<&[f64]> = g.iter().map(Vec::as_slice).collect();
        let anova = anova_one_way(&groups).unwrap();
        if anova.p_value() < 0.05 {
            rejections += 1;
        }
    }
    let rate = rejections as f64 / REPS as f64;
    assert!(
        (0.025..=0.085).contains(&rate),
        "ANOVA rejected a true null in {rate:.4} of {REPS} replications",
    );
}

#[test]
fn sample_size_estimate_achieves_its_promised_power() {
    // Type-II calibration of the §5.1.1 minimum-run estimator, end to end.
    // The paper's worked example: a 9% CoV workload measured to 4% relative
    // error at 95% confidence needs n = (2·0.09/0.04)² ≈ 20 runs. The
    // type-II error of running an experiment is missing the target — the
    // sample mean landing further than r·μ from the truth — so with the
    // estimated n the miss rate must be ~5%, and with a fraction of n it
    // must be visibly worse (the error the estimator exists to prevent).
    const REPS: usize = 1500;
    const MEAN: f64 = 100.0;
    const SD: f64 = 9.0; // CoV = 9% of MEAN, the paper's OLTP figure
    const REL_ERR: f64 = 0.04;

    let n = sample_size_for_relative_error(SD / MEAN, REL_ERR, 0.95).unwrap() as usize;
    assert_eq!(n, 20, "the paper's worked example");

    let z = Normal::standard();
    let mut rng = SplitMix64(0x5E1F_C0DE_0000_0005);
    let hits = |runs: usize, rng: &mut SplitMix64| -> f64 {
        let mut within = 0usize;
        for _ in 0..REPS {
            let mean: f64 = (0..runs)
                .map(|_| rng.next_normal(&z, MEAN, SD))
                .sum::<f64>()
                / runs as f64;
            if (mean - MEAN).abs() <= REL_ERR * MEAN {
                within += 1;
            }
        }
        within as f64 / REPS as f64
    };

    // With the estimated n: achieved probability ≈ the requested confidence.
    // Closed form: P(|Z| <= 0.04·100·√20/9) = P(|Z| <= 1.988) ≈ 0.953;
    // binomial sd of the estimate ≈ 0.0056, so ±2% is comfortable.
    let achieved = hits(n, &mut rng);
    assert!(
        (0.93..=0.97).contains(&achieved),
        "n = {n} runs hit the 4% target in {achieved:.4} of {REPS} experiments",
    );

    // With a quarter of the estimated budget the experiment is underpowered:
    // P(|Z| <= 4·√5/9) ≈ 0.68, nowhere near the promised 95%.
    let underpowered = hits(n / 4, &mut rng);
    assert!(
        (0.60..=0.76).contains(&underpowered),
        "n/4 = {} runs hit the target in {underpowered:.4} — the estimator \
         would be vacuous if this were still ~0.95",
        n / 4,
    );
}

#[test]
fn ci_coverage_degrades_when_interval_is_misused() {
    // Sanity check on the coverage experiment itself: an 80% interval must
    // NOT cover 95% of the time, confirming the harness can detect
    // miscalibration and the 95% result above is not vacuous.
    const EXPERIMENTS: usize = 1000;
    const N: usize = 10;
    let z = Normal::standard();
    let mut rng = SplitMix64(0x5E1F_C0DE_0000_0004);
    let mut covered = 0usize;
    for _ in 0..EXPERIMENTS {
        let sample: Vec<f64> = (0..N).map(|_| rng.next_normal(&z, 100.0, 15.0)).collect();
        let summary = Summary::from_slice(&sample).unwrap();
        let ci = mean_confidence_interval(&summary, 0.80).unwrap();
        if ci.contains(100.0) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / EXPERIMENTS as f64;
    assert!(
        (0.76..=0.84).contains(&coverage),
        "80% CI covered in {coverage:.4} of {EXPERIMENTS} experiments",
    );
}
