//! Self-validation of the sampling estimators: on a synthetic position
//! frame with an exactly known population mean, each estimator's 95%
//! confidence interval must achieve (near-)nominal empirical coverage, and
//! its point estimates must be unbiased. Mirrors `selfcheck.rs`: everything
//! is seeded and deterministic; coverage bounds leave ~4 binomial standard
//! deviations of slack around the nominal level.

use mtvar_stats::dist::{ContinuousDistribution, Normal};
use mtvar_stats::sampling::live::{live_sample, LiveDesign};
use mtvar_stats::sampling::ranked_set::{ranked_set_sample, RankedSetDesign};
use mtvar_stats::sampling::srs::{position_sample, PositionDesign};
use mtvar_stats::sampling::{Measurement, ProxyOracle};

/// SplitMix64, inlined so this crate's tests stay dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_open01(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }
}

const POPULATION: u64 = 200;
const TRIALS: usize = 300;

/// A synthetic cycles-per-transaction frame: an upward warmup trend plus
/// position-intrinsic noise, fixed once per seed. The population mean is
/// known exactly by enumeration — the yardstick every CI is scored against.
fn synthetic_frame(seed: u64, trend: f64, noise_sd: f64) -> Vec<f64> {
    let z = Normal::standard();
    let mut rng = SplitMix64(seed);
    (0..POPULATION)
        .map(|p| 100.0 + trend * p as f64 + noise_sd * z.quantile(rng.next_open01()).unwrap())
        .collect()
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

#[test]
fn srs_coverage_is_nominal_and_unbiased() {
    let frame = synthetic_frame(0xA5, 0.05, 3.0);
    let truth = mean(&frame);
    let mut covered = 0usize;
    let mut point_sum = 0.0;
    for trial in 0..TRIALS {
        let design = PositionDesign::simple_random(POPULATION, 8, trial as u64);
        let mut oracle = |p: u64| Measurement::new(frame[p as usize], 1.0);
        let est = position_sample(&design, &mut oracle).unwrap();
        covered += usize::from(est.ci().contains(truth));
        point_sum += est.point();
    }
    let coverage = covered as f64 / TRIALS as f64;
    assert!(
        (0.90..=1.0).contains(&coverage),
        "SRS 95% CI covered the population mean in {coverage:.3} of {TRIALS} trials"
    );
    let bias = (point_sum / TRIALS as f64 - truth).abs();
    assert!(
        bias < 0.5,
        "mean of {TRIALS} SRS points drifts {bias:.3} from the population mean {truth:.3}"
    );
}

#[test]
fn stratified_coverage_is_nominal_and_beats_srs_width_on_trend() {
    // A strong position trend: exactly the regime where contiguous position
    // strata remove between-stratum variance and the CI should tighten.
    let frame = synthetic_frame(0xB7, 0.2, 2.0);
    let truth = mean(&frame);
    let mut covered = 0usize;
    let mut strat_width = 0.0;
    let mut srs_width = 0.0;
    for trial in 0..TRIALS {
        let mut oracle = |p: u64| Measurement::new(frame[p as usize], 1.0);
        let strat = position_sample(
            &PositionDesign::stratified(POPULATION, 8, 4, trial as u64),
            &mut oracle,
        )
        .unwrap();
        let srs = position_sample(
            &PositionDesign::simple_random(POPULATION, 8, trial as u64),
            &mut oracle,
        )
        .unwrap();
        covered += usize::from(strat.ci().contains(truth));
        strat_width += strat.ci().width();
        srs_width += srs.ci().width();
    }
    let coverage = covered as f64 / TRIALS as f64;
    assert!(
        (0.90..=1.0).contains(&coverage),
        "stratified 95% CI covered in {coverage:.3} of {TRIALS} trials"
    );
    assert!(
        strat_width < 0.8 * srs_width,
        "on a position trend, stratified CIs (mean width {:.2}) should be well \
         inside SRS CIs (mean width {:.2})",
        strat_width / TRIALS as f64,
        srs_width / TRIALS as f64
    );
}

#[test]
fn ranked_set_coverage_is_nominal_with_noisy_proxy() {
    let frame = synthetic_frame(0xC9, 0.05, 3.0);
    let truth = mean(&frame);
    let proxy_noise = synthetic_frame(0xDD, 0.0, 1.0); // mean ~100, sd 1
    let mut covered = 0usize;
    let mut point_sum = 0.0;
    for trial in 0..TRIALS {
        // Proxy: the true value plus independent noise — order-informative
        // but wrong in absolute terms, like a short probe run.
        let mut oracle = ProxyOracle::new(
            |p: u64| Measurement::new(frame[p as usize], 10.0),
            |p: u64| Measurement::new(frame[p as usize] + proxy_noise[p as usize] - 100.0, 1.0),
        );
        let design = RankedSetDesign::new(POPULATION, 4, 2, trial as u64);
        let est = ranked_set_sample(&design, &mut oracle).unwrap();
        covered += usize::from(est.ci().contains(truth));
        point_sum += est.point();
    }
    let coverage = covered as f64 / TRIALS as f64;
    assert!(
        (0.88..=1.0).contains(&coverage),
        "ranked-set 95% CI covered in {coverage:.3} of {TRIALS} trials"
    );
    let bias = (point_sum / TRIALS as f64 - truth).abs();
    assert!(
        bias < 0.5,
        "mean of {TRIALS} ranked-set points drifts {bias:.3} from {truth:.3}"
    );
}

#[test]
fn live_coverage_is_near_nominal_and_adapts_to_variability() {
    let calm = synthetic_frame(0xE1, 0.0, 1.0);
    let noisy = synthetic_frame(0xE2, 0.0, 8.0);
    let truth_noisy = mean(&noisy);
    let mut covered = 0usize;
    let mut calm_cost = 0u64;
    let mut noisy_cost = 0u64;
    for trial in 0..TRIALS {
        let design = LiveDesign::new(POPULATION, 0.02, 60, trial as u64);
        let mut noisy_oracle = |p: u64| Measurement::new(noisy[p as usize], 1.0);
        let out = live_sample(&design, &mut noisy_oracle).unwrap();
        covered += usize::from(out.estimate.ci().contains(truth_noisy));
        noisy_cost += out.estimate.cost().measurements;
        let mut calm_oracle = |p: u64| Measurement::new(calm[p as usize], 1.0);
        let calm_out = live_sample(&design, &mut calm_oracle).unwrap();
        assert!(
            calm_out.converged,
            "trial {trial}: ±2% on sd≈1 must converge"
        );
        calm_cost += calm_out.estimate.cost().measurements;
    }
    // Sequential stopping makes the final interval slightly anti-conservative
    // (the stopping rule peeks at the data), so the floor is looser than the
    // fixed-n estimators' — that degradation is exactly what this guards.
    let coverage = covered as f64 / TRIALS as f64;
    assert!(
        (0.85..=1.0).contains(&coverage),
        "live 95% CI covered in {coverage:.3} of {TRIALS} trials"
    );
    assert!(
        noisy_cost > 2 * calm_cost,
        "an 8x-noisier population must buy measurements: {noisy_cost} vs {calm_cost}"
    );
}

#[test]
fn census_recovers_population_mean_exactly() {
    // Degenerate check: sampling the whole frame is a census, and the point
    // estimate must equal the enumerated mean to float precision.
    let frame = synthetic_frame(0xF3, 0.1, 2.0);
    let truth = mean(&frame);
    let mut oracle = |p: u64| Measurement::new(frame[p as usize], 1.0);
    let est = position_sample(
        &PositionDesign::simple_random(POPULATION, POPULATION as usize, 1),
        &mut oracle,
    )
    .unwrap();
    assert!((est.point() - truth).abs() < 1e-9);
    assert_eq!(est.cost().measurements, POPULATION);
}
