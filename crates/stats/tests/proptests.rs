//! Property-based tests of the statistics substrate's invariants.

use proptest::prelude::*;

use mtvar_stats::describe::{quantile, Summary};
use mtvar_stats::dist::{ChiSquare, ContinuousDistribution, FisherF, Normal, StudentT};
use mtvar_stats::infer::{
    anova_one_way, anova_two_way, jarque_bera, mean_confidence_interval, two_sample_t_test,
    TTestKind,
};
use mtvar_stats::special::{erf, erfc, reg_inc_beta, reg_lower_gamma};

fn finite_sample(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, min_len..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn erf_is_odd_and_bounded(x in -30.0..30.0f64) {
        let e = erf(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((erf(-x) + e).abs() < 1e-12);
        prop_assert!((e + erfc(x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn erf_is_monotone(a in -5.0..5.0f64, d in 1e-6..1.0f64) {
        prop_assert!(erf(a + d) >= erf(a));
    }

    #[test]
    fn incomplete_gamma_in_unit_interval(a in 0.05..50.0f64, x in 0.0..200.0f64) {
        let p = reg_lower_gamma(a, x).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    #[test]
    fn incomplete_beta_symmetry(a in 0.1..30.0f64, b in 0.1..30.0f64, x in 0.0..1.0f64) {
        let lhs = reg_inc_beta(a, b, x).unwrap();
        let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&lhs));
    }

    #[test]
    fn incomplete_beta_monotone_in_x(a in 0.2..20.0f64, b in 0.2..20.0f64,
                                     x in 0.0..0.98f64, d in 1e-4..0.02f64) {
        let lo = reg_inc_beta(a, b, x).unwrap();
        let hi = reg_inc_beta(a, b, (x + d).min(1.0)).unwrap();
        prop_assert!(hi >= lo - 1e-12);
    }

    #[test]
    fn normal_quantile_round_trip(p in 0.0001..0.9999f64, mean in -100.0..100.0f64, sd in 0.01..50.0f64) {
        let d = Normal::new(mean, sd).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn t_quantile_round_trip(p in 0.001..0.999f64, df in 1.0..200.0f64) {
        let d = StudentT::new(df).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn f_cdf_monotone(d1 in 0.5..40.0f64, d2 in 0.5..40.0f64, x in 0.0..20.0f64, dx in 0.001..2.0f64) {
        let d = FisherF::new(d1, d2).unwrap();
        prop_assert!(d.cdf(x + dx) >= d.cdf(x));
    }

    #[test]
    fn summary_matches_naive_moments(values in finite_sample(2)) {
        let s = Summary::from_slice(&values).unwrap();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn summary_merge_is_order_independent(a in finite_sample(1), b in finite_sample(1)) {
        let sa = Summary::from_slice(&a).unwrap();
        let sb = Summary::from_slice(&b).unwrap();
        let mut ab = sa; ab.merge(&sb);
        let mut ba = sb; ba.merge(&sa);
        prop_assert_eq!(ab.n(), ba.n());
        prop_assert!((ab.mean() - ba.mean()).abs() <= 1e-6 * (1.0 + ab.mean().abs()));
        prop_assert!((ab.m2_equivalent() - ba.m2_equivalent()).abs()
                     <= 1e-4 * (1.0 + ab.m2_equivalent().abs()));
    }

    #[test]
    fn ci_tightens_with_confidence_and_contains_mean(values in finite_sample(3)) {
        let s = Summary::from_slice(&values).unwrap();
        prop_assume!(s.sd().is_finite() && s.sd() > 0.0);
        let ci90 = mean_confidence_interval(&s, 0.90).unwrap();
        let ci99 = mean_confidence_interval(&s, 0.99).unwrap();
        prop_assert!(ci90.contains(s.mean()));
        prop_assert!(ci99.width() >= ci90.width());
    }

    #[test]
    fn t_test_is_antisymmetric(a in finite_sample(2), b in finite_sample(2)) {
        let sa = Summary::from_slice(&a).unwrap();
        let sb = Summary::from_slice(&b).unwrap();
        prop_assume!(sa.variance() > 0.0 || sb.variance() > 0.0);
        let ab = two_sample_t_test(&sa, &sb, TTestKind::Welch).unwrap();
        let ba = two_sample_t_test(&sb, &sa, TTestKind::Welch).unwrap();
        prop_assert!((ab.statistic() + ba.statistic()).abs() < 1e-9);
        prop_assert!((ab.p_two_sided() - ba.p_two_sided()).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab.p_one_sided()));
    }

    #[test]
    fn anova_p_value_in_unit_interval(
        g1 in finite_sample(2),
        g2 in finite_sample(2),
        g3 in finite_sample(2),
    ) {
        let groups = [g1.as_slice(), g2.as_slice(), g3.as_slice()];
        if let Ok(a) = anova_one_way(&groups) {
            prop_assert!((0.0..=1.0).contains(&a.p_value()));
            prop_assert!(a.f_statistic() >= 0.0);
            prop_assert!(a.ss_between() >= -1e-6);
            prop_assert!(a.ss_within() >= -1e-6);
        }
    }

    #[test]
    fn chi_square_quantile_round_trip(p in 0.001..0.999f64, df in 0.5..100.0f64) {
        let d = ChiSquare::new(df).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!(x >= 0.0);
        prop_assert!((d.cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn jarque_bera_outputs_are_coherent(values in finite_sample(4)) {
        prop_assume!(values.iter().any(|&v| (v - values[0]).abs() > 1e-9));
        let jb = jarque_bera(&values).unwrap();
        prop_assert!(jb.statistic() >= 0.0);
        prop_assert!((0.0..=1.0).contains(&jb.p_value()));
        // Shifting and positively scaling a sample must not change JB.
        let transformed: Vec<f64> = values.iter().map(|v| 3.0 * v / 1e3 + 7.0).collect();
        let jb2 = jarque_bera(&transformed).unwrap();
        prop_assert!((jb.statistic() - jb2.statistic()).abs() < 1e-6 * (1.0 + jb.statistic()));
    }

    #[test]
    fn two_way_anova_p_values_are_probabilities(
        c00 in prop::collection::vec(0.0..100.0f64, 3..6),
        seed in any::<u64>(),
    ) {
        // Build a 2x2 equal-replication design from one cell plus simple
        // deterministic transforms (keeps the strategy cheap).
        let r = c00.len();
        let shift = (seed % 17) as f64;
        let c01: Vec<f64> = c00.iter().map(|v| v + shift).collect();
        let c10: Vec<f64> = c00.iter().map(|v| v * 1.5 + 1.0).collect();
        let c11: Vec<f64> = c00.iter().map(|v| v * 0.5 + 2.0).collect();
        let cells = vec![vec![c00.clone(), c01], vec![c10, c11]];
        match anova_two_way(&cells) {
            Ok(a) => {
                for (f, p) in [a.factor_a, a.factor_b, a.interaction] {
                    prop_assert!(f >= 0.0);
                    prop_assert!((0.0..=1.0).contains(&p));
                }
                prop_assert!(a.ms_error >= 0.0);
            }
            Err(_) => {
                // Only possible when the constructed data is constant.
                prop_assert!(c00.iter().all(|&v| (v - c00[0]).abs() < 1e-12) && r >= 2);
            }
        }
    }

    #[test]
    fn quantile_is_monotone_in_q(values in finite_sample(1), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }
}

/// Test-only helper: expose the accumulated sum of squared deviations so the
/// merge property can compare second moments.
trait M2Equivalent {
    fn m2_equivalent(&self) -> f64;
}

impl M2Equivalent for Summary {
    fn m2_equivalent(&self) -> f64 {
        if self.n() < 2 {
            0.0
        } else {
            self.variance() * (self.n() - 1) as f64
        }
    }
}
