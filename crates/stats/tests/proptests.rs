//! Randomized property tests of the statistics substrate's invariants.
//!
//! Formerly written against the `proptest` crate; rewritten as deterministic
//! seeded sweeps so the suite builds with no network access. Every case is a
//! pure function of the fixed seeds below, so failures reproduce exactly.

use mtvar_stats::describe::{quantile, Summary};
use mtvar_stats::dist::{ChiSquare, ContinuousDistribution, FisherF, Normal, StudentT};
use mtvar_stats::infer::{
    anova_one_way, anova_two_way, jarque_bera, mean_confidence_interval, two_sample_t_test,
    TTestKind,
};
use mtvar_stats::special::{erf, erfc, reg_inc_beta, reg_lower_gamma};

/// SplitMix64 — the same tiny generator the simulator uses for seeding,
/// duplicated here because `mtvar-stats` depends on no other crate.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in [lo, hi).
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform usize in [lo, hi).
    fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A vector of finite values in ±1e6, length in [min_len, 40).
    fn finite_sample(&mut self, min_len: usize) -> Vec<f64> {
        let n = self.index(min_len, 40);
        (0..n).map(|_| self.range(-1.0e6, 1.0e6)).collect()
    }
}

const CASES: usize = 200;

#[test]
fn erf_is_odd_bounded_and_monotone() {
    let mut g = Gen(0xE5F_0001);
    for _ in 0..CASES {
        let x = g.range(-30.0, 30.0);
        let e = erf(x);
        assert!((-1.0..=1.0).contains(&e));
        assert!((erf(-x) + e).abs() < 1e-12);
        assert!((e + erfc(x) - 1.0).abs() < 1e-10);
        let a = g.range(-5.0, 5.0);
        let d = g.range(1e-6, 1.0);
        assert!(erf(a + d) >= erf(a));
    }
}

#[test]
fn incomplete_gamma_in_unit_interval() {
    let mut g = Gen(0xE5F_0002);
    for _ in 0..CASES {
        let a = g.range(0.05, 50.0);
        let x = g.range(0.0, 200.0);
        let p = reg_lower_gamma(a, x).unwrap();
        assert!((0.0..=1.0 + 1e-12).contains(&p), "P({a}, {x}) = {p}");
    }
}

#[test]
fn incomplete_beta_symmetry_and_monotonicity() {
    let mut g = Gen(0xE5F_0003);
    for _ in 0..CASES {
        let a = g.range(0.1, 30.0);
        let b = g.range(0.1, 30.0);
        let x = g.unit();
        let lhs = reg_inc_beta(a, b, x).unwrap();
        let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        assert!((0.0..=1.0 + 1e-12).contains(&lhs));

        let a = g.range(0.2, 20.0);
        let b = g.range(0.2, 20.0);
        let x = g.range(0.0, 0.98);
        let d = g.range(1e-4, 0.02);
        let lo = reg_inc_beta(a, b, x).unwrap();
        let hi = reg_inc_beta(a, b, (x + d).min(1.0)).unwrap();
        assert!(hi >= lo - 1e-12);
    }
}

#[test]
fn normal_t_and_chi_square_quantiles_round_trip() {
    let mut g = Gen(0xE5F_0004);
    for _ in 0..CASES {
        let p = g.range(0.0001, 0.9999);
        let mean = g.range(-100.0, 100.0);
        let sd = g.range(0.01, 50.0);
        let d = Normal::new(mean, sd).unwrap();
        let x = d.quantile(p).unwrap();
        assert!((d.cdf(x) - p).abs() < 1e-9);

        let p = g.range(0.001, 0.999);
        let df = g.range(1.0, 200.0);
        let t = StudentT::new(df).unwrap();
        let x = t.quantile(p).unwrap();
        assert!((t.cdf(x) - p).abs() < 1e-8);

        let df = g.range(0.5, 100.0);
        let c = ChiSquare::new(df).unwrap();
        let x = c.quantile(p).unwrap();
        assert!(x >= 0.0);
        assert!((c.cdf(x) - p).abs() < 1e-8);
    }
}

#[test]
fn f_cdf_monotone() {
    let mut g = Gen(0xE5F_0005);
    for _ in 0..CASES {
        let d1 = g.range(0.5, 40.0);
        let d2 = g.range(0.5, 40.0);
        let x = g.range(0.0, 20.0);
        let dx = g.range(0.001, 2.0);
        let d = FisherF::new(d1, d2).unwrap();
        assert!(d.cdf(x + dx) >= d.cdf(x));
    }
}

#[test]
fn summary_matches_naive_moments() {
    let mut g = Gen(0xE5F_0006);
    for _ in 0..CASES {
        let values = g.finite_sample(2);
        let s = Summary::from_slice(&values).unwrap();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }
}

#[test]
fn summary_merge_is_order_independent() {
    let mut g = Gen(0xE5F_0007);
    for _ in 0..CASES {
        let a = g.finite_sample(1);
        let b = g.finite_sample(1);
        let sa = Summary::from_slice(&a).unwrap();
        let sb = Summary::from_slice(&b).unwrap();
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        assert_eq!(ab.n(), ba.n());
        assert!((ab.mean() - ba.mean()).abs() <= 1e-6 * (1.0 + ab.mean().abs()));
        assert!(
            (ab.m2_equivalent() - ba.m2_equivalent()).abs()
                <= 1e-4 * (1.0 + ab.m2_equivalent().abs())
        );
    }
}

#[test]
fn ci_tightens_with_confidence_and_contains_mean() {
    let mut g = Gen(0xE5F_0008);
    for _ in 0..CASES {
        let values = g.finite_sample(3);
        let s = Summary::from_slice(&values).unwrap();
        if !(s.sd().is_finite() && s.sd() > 0.0) {
            continue;
        }
        let ci90 = mean_confidence_interval(&s, 0.90).unwrap();
        let ci99 = mean_confidence_interval(&s, 0.99).unwrap();
        assert!(ci90.contains(s.mean()));
        assert!(ci99.width() >= ci90.width());
    }
}

#[test]
fn t_test_is_antisymmetric() {
    let mut g = Gen(0xE5F_0009);
    for _ in 0..CASES {
        let a = g.finite_sample(2);
        let b = g.finite_sample(2);
        let sa = Summary::from_slice(&a).unwrap();
        let sb = Summary::from_slice(&b).unwrap();
        if !(sa.variance() > 0.0 || sb.variance() > 0.0) {
            continue;
        }
        let ab = two_sample_t_test(&sa, &sb, TTestKind::Welch).unwrap();
        let ba = two_sample_t_test(&sb, &sa, TTestKind::Welch).unwrap();
        assert!((ab.statistic() + ba.statistic()).abs() < 1e-9);
        assert!((ab.p_two_sided() - ba.p_two_sided()).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&ab.p_one_sided()));
    }
}

#[test]
fn anova_p_value_in_unit_interval() {
    let mut g = Gen(0xE5F_000A);
    for _ in 0..CASES {
        let g1 = g.finite_sample(2);
        let g2 = g.finite_sample(2);
        let g3 = g.finite_sample(2);
        let groups = [g1.as_slice(), g2.as_slice(), g3.as_slice()];
        if let Ok(a) = anova_one_way(&groups) {
            assert!((0.0..=1.0).contains(&a.p_value()));
            assert!(a.f_statistic() >= 0.0);
            assert!(a.ss_between() >= -1e-6);
            assert!(a.ss_within() >= -1e-6);
        }
    }
}

#[test]
fn jarque_bera_outputs_are_coherent() {
    let mut g = Gen(0xE5F_000B);
    for _ in 0..CASES {
        let values = g.finite_sample(4);
        if !values.iter().any(|&v| (v - values[0]).abs() > 1e-9) {
            continue;
        }
        let jb = jarque_bera(&values).unwrap();
        assert!(jb.statistic() >= 0.0);
        assert!((0.0..=1.0).contains(&jb.p_value()));
        // Shifting and positively scaling a sample must not change JB.
        let transformed: Vec<f64> = values.iter().map(|v| 3.0 * v / 1e3 + 7.0).collect();
        let jb2 = jarque_bera(&transformed).unwrap();
        assert!((jb.statistic() - jb2.statistic()).abs() < 1e-6 * (1.0 + jb.statistic()));
    }
}

#[test]
fn two_way_anova_p_values_are_probabilities() {
    let mut g = Gen(0xE5F_000C);
    for _ in 0..CASES {
        let r = g.index(3, 6);
        let c00: Vec<f64> = (0..r).map(|_| g.range(0.0, 100.0)).collect();
        let seed = g.next_u64();
        // Build a 2x2 equal-replication design from one cell plus simple
        // deterministic transforms (keeps the generator cheap).
        let shift = (seed % 17) as f64;
        let c01: Vec<f64> = c00.iter().map(|v| v + shift).collect();
        let c10: Vec<f64> = c00.iter().map(|v| v * 1.5 + 1.0).collect();
        let c11: Vec<f64> = c00.iter().map(|v| v * 0.5 + 2.0).collect();
        let cells = vec![vec![c00.clone(), c01], vec![c10, c11]];
        match anova_two_way(&cells) {
            Ok(a) => {
                for (f, p) in [a.factor_a, a.factor_b, a.interaction] {
                    assert!(f >= 0.0);
                    assert!((0.0..=1.0).contains(&p));
                }
                assert!(a.ms_error >= 0.0);
            }
            Err(_) => {
                // Only possible when the constructed data is constant.
                assert!(c00.iter().all(|&v| (v - c00[0]).abs() < 1e-12) && r >= 2);
            }
        }
    }
}

#[test]
fn quantile_is_monotone_in_q() {
    let mut g = Gen(0xE5F_000D);
    for _ in 0..CASES {
        let values = g.finite_sample(1);
        let q1 = g.unit();
        let q2 = g.unit();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        assert!(a <= b + 1e-9);
    }
}

/// Test-only helper: expose the accumulated sum of squared deviations so the
/// merge property can compare second moments.
trait M2Equivalent {
    fn m2_equivalent(&self) -> f64;
}

impl M2Equivalent for Summary {
    fn m2_equivalent(&self) -> f64 {
        if self.n() < 2 {
            0.0
        } else {
            self.variance() * (self.n() - 1) as f64
        }
    }
}
