//! Special functions: log-gamma, error function, and the regularized
//! incomplete gamma and beta functions.
//!
//! These are the numerical kernels beneath every distribution in [`crate::dist`].
//! All routines are accurate to roughly 1e-12 over the domains exercised by the
//! methodology (degrees of freedom up to a few thousand, probabilities in
//! `[1e-10, 1 - 1e-10]`), which is far tighter than the experiment noise they
//! are used to analyze.

use crate::{Result, StatsError};

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), giving ~15
/// significant digits over the positive reals.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `x <= 0` or `x` is not finite.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// let lg = mtvar_stats::special::ln_gamma(5.0)?;
/// assert!((lg - (24.0f64).ln()).abs() < 1e-12); // Γ(5) = 4! = 24
/// # Ok(())
/// # }
/// ```
pub fn ln_gamma(x: f64) -> Result<f64> {
    if !x.is_finite() {
        return Err(StatsError::NonFiniteInput);
    }
    if x <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            expected: "must be > 0",
        });
    }
    Ok(ln_gamma_unchecked(x))
}

/// Lanczos coefficients for g = 7.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

pub(crate) fn ln_gamma_unchecked(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma_unchecked(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS_COEF[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The error function `erf(x)`.
///
/// Computed through the regularized lower incomplete gamma function,
/// `erf(x) = sign(x) · P(1/2, x²)`.
///
/// # Example
///
/// ```
/// let e = mtvar_stats::special::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let p = reg_lower_gamma_unchecked(0.5, x * x);
    if x >= 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// For large positive `x` this is computed from the continued-fraction form of
/// the upper incomplete gamma function, avoiding the catastrophic cancellation
/// of `1 - erf(x)`.
///
/// # Example
///
/// ```
/// let e = mtvar_stats::special::erfc(3.0);
/// assert!((e - 2.209049699858544e-5).abs() < 1e-16);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    reg_upper_gamma_unchecked(0.5, x * x)
}

/// Regularized lower incomplete gamma function `P(a, x)`, for `a > 0`,
/// `x >= 0`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `a <= 0` or `x < 0`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// // P(1, x) = 1 - exp(-x)
/// let p = mtvar_stats::special::reg_lower_gamma(1.0, 2.0)?;
/// assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn reg_lower_gamma(a: f64, x: f64) -> Result<f64> {
    if !a.is_finite() || !x.is_finite() {
        return Err(StatsError::NonFiniteInput);
    }
    if a <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            expected: "must be > 0",
        });
    }
    if x < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            expected: "must be >= 0",
        });
    }
    Ok(reg_lower_gamma_unchecked(a, x))
}

fn reg_lower_gamma_unchecked(a: f64, x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

fn reg_upper_gamma_unchecked(a: f64, x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;

/// Series representation of P(a, x); converges fast for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma_unchecked(a)).exp()
}

/// Continued-fraction representation of Q(a, x); converges fast for x >= a + 1.
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma_unchecked(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`, for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// This is the kernel of the Student-t and F distribution CDFs. Computed with
/// the Lentz continued fraction, using the symmetry
/// `I_x(a, b) = 1 − I_{1−x}(b, a)` to stay in the rapidly converging regime.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `a <= 0`, `b <= 0`, or `x` is
/// outside `[0, 1]`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// // I_x(1, 1) = x (uniform CDF)
/// let v = mtvar_stats::special::reg_inc_beta(1.0, 1.0, 0.42)?;
/// assert!((v - 0.42).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() || !x.is_finite() {
        return Err(StatsError::NonFiniteInput);
    }
    if a <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            expected: "must be > 0",
        });
    }
    if b <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "b",
            value: b,
            expected: "must be > 0",
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            expected: "must lie in [0, 1]",
        });
    }
    Ok(reg_inc_beta_unchecked(a, b, x))
}

pub(crate) fn reg_inc_beta_unchecked(a: f64, b: f64, x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front = (x.ln() * a + (1.0 - x).ln() * b - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        // Symmetry I_x(a, b) = 1 − I_{1−x}(b, a) keeps the continued fraction
        // in its rapidly converging regime.
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a + b)`.
pub(crate) fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma_unchecked(a) + ln_gamma_unchecked(b) - ln_gamma_unchecked(a + b)
}

/// Lentz's continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close(
                ln_gamma(n as f64).unwrap(),
                fact.ln(),
                1e-10 * (1.0 + fact.ln().abs()),
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert_close(
            ln_gamma(0.5).unwrap(),
            std::f64::consts::PI.sqrt().ln(),
            1e-12,
        );
        // Γ(3/2) = √π / 2
        assert_close(
            ln_gamma(1.5).unwrap(),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_rejects_bad_input() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-3.0).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
        assert!(ln_gamma(f64::INFINITY).is_err());
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun, Table 7.1.
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(0.5), 0.5204998778130465, 1e-12);
        assert_close(erf(1.0), 0.8427007929497149, 1e-12);
        assert_close(erf(2.0), 0.9953222650189527, 1e-12);
        assert_close(erf(-1.0), -0.8427007929497149, 1e-12);
    }

    #[test]
    fn erfc_is_complement_and_accurate_in_tail() {
        for x in [0.0, 0.3, 1.0, 2.0] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
        assert_close(erfc(3.0), 2.209049699858544e-5, 1e-16);
        assert_close(erfc(5.0), 1.5374597944280351e-12, 1e-22);
        assert_close(erfc(-2.0), 2.0 - erfc(2.0), 1e-14);
    }

    #[test]
    fn reg_lower_gamma_exponential_identity() {
        // P(1, x) = 1 - e^{-x}
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert_close(reg_lower_gamma(1.0, x).unwrap(), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn reg_lower_gamma_chi_square_reference() {
        // χ²(k=4) CDF at x=4 is P(2, 2) = 1 - 3e^{-2} ≈ 0.59399415...
        assert_close(
            reg_lower_gamma(2.0, 2.0).unwrap(),
            1.0 - 3.0 * (-2.0f64).exp(),
            1e-12,
        );
    }

    #[test]
    fn reg_lower_gamma_bounds_and_errors() {
        assert_eq!(reg_lower_gamma(2.5, 0.0).unwrap(), 0.0);
        assert!(reg_lower_gamma(0.0, 1.0).is_err());
        assert!(reg_lower_gamma(1.0, -1.0).is_err());
        assert!(reg_lower_gamma(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn inc_beta_uniform_identity() {
        for x in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_close(reg_inc_beta(1.0, 1.0, x).unwrap(), x, 1e-12);
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (10.0, 2.0, 0.9)] {
            let lhs = reg_inc_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
            assert_close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn inc_beta_closed_forms() {
        // I_x(2, 1) = x², I_x(1, 2) = 1 - (1-x)² = 2x - x².
        for x in [0.2, 0.5, 0.8] {
            assert_close(reg_inc_beta(2.0, 1.0, x).unwrap(), x * x, 1e-12);
            assert_close(reg_inc_beta(1.0, 2.0, x).unwrap(), 2.0 * x - x * x, 1e-12);
        }
        // I_{1/2}(a, a) = 1/2 by symmetry.
        for a in [0.5, 1.0, 4.0, 25.0] {
            assert_close(reg_inc_beta(a, a, 0.5).unwrap(), 0.5, 1e-12);
        }
    }

    #[test]
    fn inc_beta_rejects_bad_input() {
        assert!(reg_inc_beta(-1.0, 1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, 0.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, 1.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, -0.1).is_err());
        assert!(reg_inc_beta(1.0, 1.0, f64::NAN).is_err());
    }
}
