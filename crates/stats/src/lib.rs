//! Statistics substrate for the `mtvar` workspace.
//!
//! This crate implements, from scratch, every piece of classical statistics
//! the HPCA 2003 variability methodology needs:
//!
//! * [`special`] — log-gamma, error function, regularized incomplete beta and
//!   gamma functions (the numerical kernels everything else is built on).
//! * [`dist`] — the [`Normal`](dist::Normal), [`StudentT`](dist::StudentT)
//!   and [`FisherF`](dist::FisherF) distributions with pdf/cdf/quantile.
//! * [`describe`] — descriptive statistics: [`Summary`](describe::Summary),
//!   coefficient of variation, and the paper's *range of variability*.
//! * [`infer`] — confidence intervals for means, two-sample t-tests (pooled
//!   and Welch), one-way ANOVA, and the paper's sample-size estimate
//!   `n = (t·S / (r·Ȳ))²`.
//! * [`sampling`] — sampling methodologies as first-class estimators:
//!   simple-random/stratified position sampling, ranked-set sampling, and
//!   live (adaptive) sampling, each returning a point estimate, a CI, and
//!   its simulated-cycle cost.
//!
//! # Example
//!
//! Compute a 95% confidence interval for a sample mean, as §5.1.1 of the
//! paper does for cycles-per-transaction measurements:
//!
//! ```
//! # fn main() -> Result<(), mtvar_stats::StatsError> {
//! use mtvar_stats::{describe::Summary, infer::mean_confidence_interval};
//!
//! let runs = [4.61, 4.49, 4.55, 4.70, 4.52, 4.58, 4.66, 4.47];
//! let summary = Summary::from_slice(&runs)?;
//! let ci = mean_confidence_interval(&summary, 0.95)?;
//! assert!(ci.lower() < summary.mean() && summary.mean() < ci.upper());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod describe;
pub mod dist;
pub mod infer;
pub mod sampling;
pub mod special;

mod error;

pub use error::StatsError;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
