//! Probability distributions: [`Normal`], [`StudentT`] and [`FisherF`].
//!
//! Each distribution offers `pdf`, `cdf` and `quantile` (inverse CDF). The
//! Student-t quantile is what turns a desired confidence probability into the
//! *t value* of the paper's confidence-interval formula (§5.1.1), and the F
//! quantile drives the ANOVA decision of §5.2.

use crate::special::{erfc, ln_beta, ln_gamma_unchecked, reg_inc_beta_unchecked};
use crate::{Result, StatsError};

/// A continuous probability distribution.
///
/// This trait is sealed-by-convention: it exists so experiment code can be
/// generic over the three distributions the methodology uses, not as an
/// extension point.
pub trait ContinuousDistribution: std::fmt::Debug {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative probability `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;
    /// Inverse CDF: the `x` with `cdf(x) = p`, for `p ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> Result<f64>;
}

fn check_probability(p: f64) -> Result<()> {
    if !p.is_finite() || p <= 0.0 || p >= 1.0 {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
            expected: "must lie in the open interval (0, 1)",
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------------

/// The normal (Gaussian) distribution `N(mean, sd²)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// use mtvar_stats::dist::{ContinuousDistribution, Normal};
///
/// let z = Normal::standard();
/// // The 97.5% normal deviate used for 95% two-sided intervals.
/// let d = z.quantile(0.975)?;
/// assert!((d - 1.959964).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sd <= 0` or either
    /// argument is not finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !mean.is_finite() || !sd.is_finite() {
            return Err(StatsError::NonFiniteInput);
        }
        if sd <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sd",
                value: sd,
                expected: "must be > 0",
            });
        }
        Ok(Normal { mean, sd })
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        let z = standard_normal_quantile(p);
        Ok(self.mean + self.sd * z)
    }
}

/// Acklam's rational approximation to the standard normal quantile, refined
/// with one Halley step against the exact CDF (good to ~1e-15).
fn standard_normal_quantile(p: f64) -> f64 {
    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

// ---------------------------------------------------------------------------
// Student's t
// ---------------------------------------------------------------------------

/// Student's t distribution with `df` degrees of freedom.
///
/// This supplies the *t values* of the paper's §5.1.1 confidence-interval
/// formula (`t` from the Student t-distribution with `n − 1` degrees of
/// freedom for `n < 50`).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// use mtvar_stats::dist::{ContinuousDistribution, StudentT};
///
/// // t_{0.975, 19}: the critical value for a 95% CI over 20 runs.
/// let t = StudentT::new(19.0)?.quantile(0.975)?;
/// assert!((t - 2.093024).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates the distribution with `df > 0` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `df <= 0` or non-finite.
    pub fn new(df: f64) -> Result<Self> {
        if !df.is_finite() {
            return Err(StatsError::NonFiniteInput);
        }
        if df <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "df",
                value: df,
                expected: "must be > 0",
            });
        }
        Ok(StudentT { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }
}

impl ContinuousDistribution for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        let v = self.df;
        let ln_coef = ln_gamma_unchecked((v + 1.0) / 2.0)
            - ln_gamma_unchecked(v / 2.0)
            - 0.5 * (v * std::f64::consts::PI).ln();
        (ln_coef - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x == 0.0 {
            return 0.5;
        }
        let v = self.df;
        let ib = reg_inc_beta_unchecked(v / 2.0, 0.5, v / (v + x * x));
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        if (p - 0.5).abs() < 1e-16 {
            return Ok(0.0);
        }
        // Symmetry: solve for the upper half only.
        if p < 0.5 {
            return Ok(-self.quantile(1.0 - p)?);
        }
        // Bracket then bisect/Newton on the CDF. The normal quantile is a
        // good starting bracket seed for all df.
        let target = p;
        let mut lo = 0.0f64;
        let mut hi = standard_normal_quantile(p).max(1.0);
        while self.cdf(hi) < target {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(StatsError::NoConvergence {
                    routine: "StudentT::quantile bracket",
                });
            }
        }
        // 200 bisection steps are overkill (we need ~60), but cheap.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-14 * hi.max(1.0) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

// ---------------------------------------------------------------------------
// Fisher's F
// ---------------------------------------------------------------------------

/// Fisher's F distribution with `(df1, df2)` degrees of freedom.
///
/// Used by the one-way ANOVA of §5.2 to decide whether between-checkpoint
/// (time) variability is statistically distinguishable from within-checkpoint
/// (space) variability.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// use mtvar_stats::dist::{ContinuousDistribution, FisherF};
///
/// let f = FisherF::new(4.0, 20.0)?;
/// // F_{0.95; 4, 20} ≈ 2.866
/// let crit = f.quantile(0.95)?;
/// assert!((crit - 2.8661).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    df1: f64,
    df2: f64,
}

impl FisherF {
    /// Creates the distribution with numerator df `df1 > 0` and denominator
    /// df `df2 > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if either df is
    /// non-positive or non-finite.
    pub fn new(df1: f64, df2: f64) -> Result<Self> {
        for (name, v) in [("df1", df1), ("df2", df2)] {
            if !v.is_finite() {
                return Err(StatsError::NonFiniteInput);
            }
            if v <= 0.0 {
                return Err(StatsError::InvalidParameter {
                    name,
                    value: v,
                    expected: "must be > 0",
                });
            }
        }
        Ok(FisherF { df1, df2 })
    }

    /// Numerator degrees of freedom.
    pub fn df1(&self) -> f64 {
        self.df1
    }

    /// Denominator degrees of freedom.
    pub fn df2(&self) -> f64 {
        self.df2
    }
}

impl ContinuousDistribution for FisherF {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.df1, self.df2);
        let ln_num = (d1 / 2.0) * (d1 / d2).ln() + (d1 / 2.0 - 1.0) * x.ln()
            - ((d1 + d2) / 2.0) * (1.0 + d1 * x / d2).ln();
        (ln_num - ln_beta(d1 / 2.0, d2 / 2.0)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.df1, self.df2);
        reg_inc_beta_unchecked(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2))
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(StatsError::NoConvergence {
                    routine: "FisherF::quantile bracket",
                });
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-14 * hi.max(1.0) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

// ---------------------------------------------------------------------------
// Chi-square
// ---------------------------------------------------------------------------

/// The chi-square distribution with `df` degrees of freedom.
///
/// Used as the reference distribution of the Jarque–Bera normality statistic
/// (`df = 2`), which guards the t-test's normality assumption.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// use mtvar_stats::dist::{ChiSquare, ContinuousDistribution};
///
/// let c = ChiSquare::new(2.0)?;
/// // chi²(2) is Exp(1/2): cdf(x) = 1 − e^{−x/2}.
/// assert!((c.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    df: f64,
}

impl ChiSquare {
    /// Creates the distribution with `df > 0` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `df <= 0` or non-finite.
    pub fn new(df: f64) -> Result<Self> {
        if !df.is_finite() {
            return Err(StatsError::NonFiniteInput);
        }
        if df <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "df",
                value: df,
                expected: "must be > 0",
            });
        }
        Ok(ChiSquare { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }
}

impl ContinuousDistribution for ChiSquare {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.df / 2.0;
        ((k - 1.0) * x.ln() - x / 2.0 - k * std::f64::consts::LN_2 - ln_gamma_unchecked(k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        crate::special::reg_lower_gamma(self.df / 2.0, x / 2.0)
            .expect("parameters validated at construction")
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        let mut lo = 0.0f64;
        let mut hi = (self.df + 10.0) * 2.0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(StatsError::NoConvergence {
                    routine: "ChiSquare::quantile bracket",
                });
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-14 * hi.max(1.0) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

/// Standard-normal CDF, exposed for the `n >= 50` branch of the paper's
/// confidence-interval rule.
pub fn standard_normal_cdf(x: f64) -> f64 {
    Normal::standard().cdf(x)
}

/// `erf`-based standard-normal survival function `1 − Φ(x)`, accurate in the
/// far tail.
pub fn standard_normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Two-sided standard normal tail probability `P(|Z| > |x|)`.
pub fn standard_normal_two_sided_p(x: f64) -> f64 {
    erfc(x.abs() / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn normal_cdf_reference_values() {
        let z = Normal::standard();
        assert_close(z.cdf(0.0), 0.5, 1e-15);
        assert_close(z.cdf(1.0), 0.8413447460685429, 1e-12);
        assert_close(z.cdf(-1.0), 0.15865525393145707, 1e-12);
        assert_close(z.cdf(1.959963984540054), 0.975, 1e-12);
        assert_close(z.cdf(3.0), 0.9986501019683699, 1e-12);
    }

    #[test]
    fn normal_quantile_round_trip() {
        let z = Normal::standard();
        for p in [1e-8, 0.001, 0.025, 0.3, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-8] {
            let x = z.quantile(p).unwrap();
            assert_close(z.cdf(x), p, 1e-12);
        }
    }

    #[test]
    fn normal_with_location_scale() {
        let d = Normal::new(10.0, 2.0).unwrap();
        assert_close(d.cdf(10.0), 0.5, 1e-14);
        assert_close(
            d.quantile(0.975).unwrap(),
            10.0 + 2.0 * 1.959963984540054,
            1e-9,
        );
        assert_close(
            d.pdf(10.0),
            1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt()),
            1e-14,
        );
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::standard().quantile(0.0).is_err());
        assert!(Normal::standard().quantile(1.0).is_err());
    }

    #[test]
    fn t_cdf_reference_values() {
        // Values cross-checked against R's pt().
        let t1 = StudentT::new(1.0).unwrap(); // Cauchy
        assert_close(t1.cdf(1.0), 0.75, 1e-12);
        let t5 = StudentT::new(5.0).unwrap();
        assert_close(t5.cdf(2.015048372669157), 0.95, 1e-9);
        let t19 = StudentT::new(19.0).unwrap();
        assert_close(t19.cdf(2.093024054408263), 0.975, 1e-9);
        let t100 = StudentT::new(100.0).unwrap();
        assert_close(t100.cdf(0.0), 0.5, 1e-15);
    }

    #[test]
    fn t_critical_values_match_tables() {
        // Standard t-table values (two-sided 95% -> p = 0.975).
        let cases = [
            (1.0, 12.706),
            (2.0, 4.303),
            (5.0, 2.571),
            (10.0, 2.228),
            (19.0, 2.093),
            (30.0, 2.042),
            (38.0, 2.024),
        ];
        for (df, expected) in cases {
            let t = StudentT::new(df).unwrap().quantile(0.975).unwrap();
            assert_close(t, expected, 5e-4);
        }
    }

    #[test]
    fn t_quantile_symmetry_and_round_trip() {
        let t = StudentT::new(7.0).unwrap();
        for p in [0.01, 0.1, 0.25, 0.5, 0.6, 0.9, 0.995] {
            let x = t.quantile(p).unwrap();
            assert_close(t.cdf(x), p, 1e-10);
            assert_close(t.quantile(1.0 - p).unwrap(), -x, 1e-9);
        }
    }

    #[test]
    fn t_approaches_normal_for_large_df() {
        let t = StudentT::new(10_000.0).unwrap();
        let z = Normal::standard();
        for p in [0.9, 0.95, 0.975, 0.99] {
            let tq = t.quantile(p).unwrap();
            let zq = z.quantile(p).unwrap();
            assert!((tq - zq).abs() < 5e-4, "df=1e4 p={p}: {tq} vs {zq}");
        }
    }

    #[test]
    fn t_pdf_integrates_to_cdf() {
        // Crude trapezoid check that pdf and cdf are consistent.
        let t = StudentT::new(6.0).unwrap();
        let mut acc = 0.0;
        let (a, b, n) = (-8.0, 1.5, 20_000);
        let h = (b - a) / n as f64;
        for i in 0..n {
            let x0 = a + i as f64 * h;
            acc += 0.5 * (t.pdf(x0) + t.pdf(x0 + h)) * h;
        }
        assert_close(acc, t.cdf(1.5) - t.cdf(-8.0), 1e-6);
    }

    #[test]
    fn f_cdf_reference_values() {
        // F(1, 1) at x = 1 is 0.5.
        let f11 = FisherF::new(1.0, 1.0).unwrap();
        assert_close(f11.cdf(1.0), 0.5, 1e-12);
        // Consistent with the tabulated F_{0.95;4,20} = 2.866 (so the CDF at
        // 3.0 must sit just above 0.95) and with the exact incomplete-beta
        // form I_{12/17}(2, 10).
        let f = FisherF::new(4.0, 20.0).unwrap();
        assert_close(f.cdf(3.0), 0.9567990016657861, 1e-10);
        assert!(f.cdf(2.866) < f.cdf(3.0) && f.cdf(2.866) > 0.9495);
        assert_eq!(f.cdf(0.0), 0.0);
        assert_eq!(f.cdf(-1.0), 0.0);
    }

    #[test]
    fn f_critical_values_match_tables() {
        // Standard ANOVA table values, F_{0.95}.
        let cases = [
            ((1.0, 10.0), 4.965),
            ((4.0, 20.0), 2.866),
            ((9.0, 190.0), 1.93),
            ((2.0, 30.0), 3.316),
        ];
        for ((d1, d2), expected) in cases {
            let q = FisherF::new(d1, d2).unwrap().quantile(0.95).unwrap();
            assert_close(q, expected, 5e-3);
        }
    }

    #[test]
    fn f_quantile_round_trip() {
        let f = FisherF::new(3.0, 17.0).unwrap();
        for p in [0.05, 0.5, 0.9, 0.95, 0.99] {
            let x = f.quantile(p).unwrap();
            assert_close(f.cdf(x), p, 1e-10);
        }
    }

    #[test]
    fn f_relation_to_t() {
        // If T ~ t(v) then T² ~ F(1, v): F-quantile(p) == t-quantile((1+p)/2)².
        let v = 12.0;
        let t = StudentT::new(v).unwrap();
        let f = FisherF::new(1.0, v).unwrap();
        for p in [0.8, 0.9, 0.95, 0.99] {
            let tq = t.quantile((1.0 + p) / 2.0).unwrap();
            let fq = f.quantile(p).unwrap();
            assert_close(fq, tq * tq, 1e-6 * fq.max(1.0));
        }
    }

    #[test]
    fn distributions_reject_bad_probabilities() {
        let t = StudentT::new(5.0).unwrap();
        assert!(t.quantile(-0.1).is_err());
        assert!(t.quantile(1.0).is_err());
        assert!(t.quantile(f64::NAN).is_err());
        let f = FisherF::new(2.0, 2.0).unwrap();
        assert!(f.quantile(0.0).is_err());
    }

    #[test]
    fn distributions_reject_bad_dfs() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-2.0).is_err());
        assert!(FisherF::new(0.0, 5.0).is_err());
        assert!(FisherF::new(5.0, f64::INFINITY).is_err());
    }

    #[test]
    fn chi_square_reference_values() {
        // chi²(2) is exponential with rate 1/2.
        let c2 = ChiSquare::new(2.0).unwrap();
        for x in [0.5, 1.0, 3.0, 8.0] {
            assert_close(c2.cdf(x), 1.0 - (-x / 2.0f64).exp(), 1e-12);
        }
        // Tabulated critical value: chi²_{0.95, 2} = 5.991.
        assert_close(c2.quantile(0.95).unwrap(), 5.991, 5e-3);
        // chi²_{0.95, 5} = 11.070.
        let c5 = ChiSquare::new(5.0).unwrap();
        assert_close(c5.quantile(0.95).unwrap(), 11.070, 5e-3);
        assert_eq!(c5.cdf(0.0), 0.0);
        assert_eq!(c5.pdf(-1.0), 0.0);
    }

    #[test]
    fn chi_square_quantile_round_trip() {
        let c = ChiSquare::new(7.0).unwrap();
        for p in [0.05, 0.5, 0.9, 0.99] {
            let x = c.quantile(p).unwrap();
            assert_close(c.cdf(x), p, 1e-10);
        }
        assert!(ChiSquare::new(0.0).is_err());
        assert!(ChiSquare::new(f64::NAN).is_err());
    }

    #[test]
    fn chi_square_is_squared_normal_for_df_1() {
        // If Z ~ N(0,1), Z² ~ chi²(1): cdf_chi(x) = 2Φ(√x) − 1.
        let c = ChiSquare::new(1.0).unwrap();
        let z = Normal::standard();
        for x in [0.3, 1.0, 2.5, 4.0] {
            assert_close(c.cdf(x), 2.0 * z.cdf(x.sqrt()) - 1.0, 1e-10);
        }
    }

    #[test]
    fn tail_helpers_are_consistent() {
        for x in [0.0, 0.5, 2.0, 4.0] {
            assert_close(standard_normal_cdf(x) + standard_normal_sf(x), 1.0, 1e-12);
            assert_close(
                standard_normal_two_sided_p(x),
                2.0 * standard_normal_sf(x.abs()),
                1e-12,
            );
        }
    }
}
