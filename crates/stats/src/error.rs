use std::fmt;

/// Error type returned by all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// An operation required a non-empty sample but received none.
    EmptySample,
    /// A sample was too small for the requested operation (e.g. a variance
    /// needs at least two observations).
    SampleTooSmall {
        /// Minimum number of observations the operation requires.
        required: usize,
        /// Number of observations actually supplied.
        actual: usize,
    },
    /// A distribution or test parameter was out of its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected.
        value: f64,
        /// Human-readable domain description, e.g. `"must be > 0"`.
        expected: &'static str,
    },
    /// The input contained a NaN or infinite value.
    NonFiniteInput,
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "sample is empty"),
            StatsError::SampleTooSmall { required, actual } => write!(
                f,
                "sample of {actual} observation(s) is too small; at least {required} required"
            ),
            StatsError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(f, "invalid parameter {name} = {value}: {expected}"),
            StatsError::NonFiniteInput => write!(f, "input contains a non-finite value"),
            StatsError::NoConvergence { routine } => {
                write!(f, "numerical routine {routine} failed to converge")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            StatsError::EmptySample,
            StatsError::SampleTooSmall {
                required: 2,
                actual: 1,
            },
            StatsError::InvalidParameter {
                name: "df",
                value: -1.0,
                expected: "must be > 0",
            },
            StatsError::NonFiniteInput,
            StatsError::NoConvergence { routine: "betacf" },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
