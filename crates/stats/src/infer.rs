//! Classical inference: confidence intervals, two-sample t-tests, one-way
//! ANOVA, and the paper's sample-size estimate.
//!
//! These are the §5 tools of the paper:
//!
//! * [`mean_confidence_interval`] — §5.1.1, using the Student-t critical
//!   value for `n < 50` and the normal deviate otherwise (the paper's rule).
//! * [`two_sample_t_test`] — §5.1.2, the hypothesis test that upper-bounds
//!   the wrong-conclusion probability of a comparison experiment.
//! * [`sample_size_for_relative_error`] — §5.1.1, `n = (t·S / (r·Ȳ))²`.
//! * [`anova_one_way`] — §5.2, deciding whether between-checkpoint (time)
//!   variability is distinguishable from within-checkpoint (space)
//!   variability.

use crate::describe::Summary;
use crate::dist::{ContinuousDistribution, Normal, StudentT};
use crate::special::reg_inc_beta_unchecked;
use crate::{Result, StatsError};

/// Sample size at and above which the paper's §5.1.1 rule switches from the
/// Student-t to the normal critical value.
pub const NORMAL_APPROX_THRESHOLD: u64 = 50;

fn check_level(level: f64) -> Result<()> {
    if !level.is_finite() || level <= 0.0 || level >= 1.0 {
        return Err(StatsError::InvalidParameter {
            name: "level",
            value: level,
            expected: "confidence level must lie in (0, 1)",
        });
    }
    Ok(())
}

/// A two-sided confidence interval for a population parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfidenceInterval {
    lower: f64,
    upper: f64,
    level: f64,
}

impl ConfidenceInterval {
    /// Creates an interval from explicit bounds.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `lower > upper` or the
    /// level is outside `(0, 1)`.
    pub fn new(lower: f64, upper: f64, level: f64) -> Result<Self> {
        check_level(level)?;
        if !(lower.is_finite() && upper.is_finite()) {
            return Err(StatsError::NonFiniteInput);
        }
        if lower > upper {
            return Err(StatsError::InvalidParameter {
                name: "lower",
                value: lower,
                expected: "must be <= upper",
            });
        }
        Ok(ConfidenceInterval {
            lower,
            upper,
            level,
        })
    }

    /// Lower bound.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Confidence level (e.g. `0.95`).
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Interval width, `upper − lower`.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Interval midpoint.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }

    /// Whether this interval overlaps `other`.
    ///
    /// Per §5.1.1: if the confidence intervals of two alternatives do *not*
    /// overlap, the probability of a wrong comparison conclusion is at most
    /// `1 − level`.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] ({:.1}% CI)",
            self.lower,
            self.upper,
            self.level * 100.0
        )
    }
}

/// Two-sided critical value for a mean CI over `n` observations at the given
/// confidence level, following the paper's rule: Student-t with `n − 1`
/// degrees of freedom for `n < 50`, the normal deviate otherwise.
///
/// # Errors
///
/// Returns [`StatsError::SampleTooSmall`] if `n < 2` and
/// [`StatsError::InvalidParameter`] for a level outside `(0, 1)`.
pub fn critical_value(n: u64, level: f64) -> Result<f64> {
    check_level(level)?;
    if n < 2 {
        return Err(StatsError::SampleTooSmall {
            required: 2,
            actual: n as usize,
        });
    }
    let p = 0.5 + level / 2.0;
    if n < NORMAL_APPROX_THRESHOLD {
        StudentT::new((n - 1) as f64)?.quantile(p)
    } else {
        Normal::standard().quantile(p)
    }
}

/// The §5.1.1 confidence interval for a population mean:
/// `x̄ ± t·s/√n`.
///
/// # Errors
///
/// Returns [`StatsError::SampleTooSmall`] for fewer than two observations
/// and [`StatsError::InvalidParameter`] for a level outside `(0, 1)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// use mtvar_stats::{describe::Summary, infer::mean_confidence_interval};
///
/// let s = Summary::from_slice(&[4.2, 4.5, 4.3, 4.6, 4.4])?;
/// let ci = mean_confidence_interval(&s, 0.95)?;
/// assert!(ci.contains(s.mean()));
/// # Ok(())
/// # }
/// ```
pub fn mean_confidence_interval(summary: &Summary, level: f64) -> Result<ConfidenceInterval> {
    let t = critical_value(summary.n(), level)?;
    let half = t * summary.standard_error();
    ConfidenceInterval::new(summary.mean() - half, summary.mean() + half, level)
}

/// Which two-sample t-test to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TTestKind {
    /// Pooled-variance test (the paper's §5.1.2 formulation, `2n − 2`
    /// degrees of freedom for equal group sizes).
    #[default]
    Pooled,
    /// Welch's test (unequal variances, Welch–Satterthwaite df).
    Welch,
}

/// Result of a two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TTest {
    statistic: f64,
    df: f64,
    kind: TTestKind,
}

impl TTest {
    /// The t statistic (positive when the first sample's mean is larger).
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Degrees of freedom of the reference t distribution.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Which test variant produced this result.
    pub fn kind(&self) -> TTestKind {
        self.kind
    }

    /// One-sided p-value for the alternative "first mean > second mean".
    ///
    /// In the paper's setting this is the upper bound on the probability of a
    /// wrong conclusion when the sample means already rank the first
    /// configuration above the second.
    pub fn p_one_sided(&self) -> f64 {
        let t = StudentT::new(self.df).expect("df > 0 by construction");
        1.0 - t.cdf(self.statistic)
    }

    /// Two-sided p-value for the alternative "the means differ".
    pub fn p_two_sided(&self) -> f64 {
        let t = StudentT::new(self.df).expect("df > 0 by construction");
        2.0 * (1.0 - t.cdf(self.statistic.abs()))
    }

    /// Whether the one-sided test rejects the null hypothesis of equal means
    /// at significance level `alpha` (i.e. the conclusion "first mean is
    /// larger" carries at most probability `alpha` of being wrong).
    pub fn rejects_one_sided(&self, alpha: f64) -> bool {
        self.p_one_sided() <= alpha
    }
}

/// Runs a two-sample t-test of `H₀: μ_a = μ_b` from two sample summaries.
///
/// With [`TTestKind::Pooled`] and equal sample sizes this is exactly the §5.1.2
/// statistic `t = (ȳ_a − ȳ_b) / √((s_a² + s_b²)/n)` with `2n − 2` degrees of
/// freedom.
///
/// # Errors
///
/// Returns [`StatsError::SampleTooSmall`] if either sample has fewer than two
/// observations, and [`StatsError::InvalidParameter`] if both sample
/// variances are zero (the statistic is undefined).
pub fn two_sample_t_test(a: &Summary, b: &Summary, kind: TTestKind) -> Result<TTest> {
    for s in [a, b] {
        if s.n() < 2 {
            return Err(StatsError::SampleTooSmall {
                required: 2,
                actual: s.n() as usize,
            });
        }
    }
    let (na, nb) = (a.n() as f64, b.n() as f64);
    let (va, vb) = (a.variance(), b.variance());
    if va == 0.0 && vb == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "variance",
            value: 0.0,
            expected: "at least one sample must have nonzero variance",
        });
    }
    let diff = a.mean() - b.mean();
    let (statistic, df) = match kind {
        TTestKind::Pooled => {
            let sp2 = ((na - 1.0) * va + (nb - 1.0) * vb) / (na + nb - 2.0);
            let se = (sp2 * (1.0 / na + 1.0 / nb)).sqrt();
            (diff / se, na + nb - 2.0)
        }
        TTestKind::Welch => {
            let se2 = va / na + vb / nb;
            let se = se2.sqrt();
            let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
            (diff / se, df)
        }
    };
    Ok(TTest {
        statistic,
        df,
        kind,
    })
}

/// The paper's §5.1.1 sample-size estimate:
///
/// `n = (t · S / (r · Ȳ))² = (t · CoV / r)²`
///
/// where `cov` is the coefficient of variation `S/Ȳ` **as a fraction** (not
/// percent), `relative_error` is the maximum allowed relative error `r`, and
/// `t` is the normal deviate for the desired confidence probability.
/// Returns the estimate rounded up to a whole number of runs.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `cov <= 0`,
/// `relative_error <= 0`, or the confidence level is outside `(0, 1)`.
///
/// # Example
///
/// The paper's worked example: 4% relative error, 95% confidence, 9% CoV
/// gives `(2·0.09/0.04)² ≈ 20` runs.
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// let n = mtvar_stats::infer::sample_size_for_relative_error(0.09, 0.04, 0.95)?;
/// assert_eq!(n, 20);
/// # Ok(())
/// # }
/// ```
pub fn sample_size_for_relative_error(
    cov: f64,
    relative_error: f64,
    confidence: f64,
) -> Result<u64> {
    check_level(confidence)?;
    for (name, v) in [("cov", cov), ("relative_error", relative_error)] {
        if !v.is_finite() || v <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name,
                value: v,
                expected: "must be > 0",
            });
        }
    }
    let z = Normal::standard().quantile(0.5 + confidence / 2.0)?;
    let n = (z * cov / relative_error).powi(2);
    Ok(n.ceil() as u64)
}

/// Result of a one-way analysis of variance.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Anova {
    ss_between: f64,
    ss_within: f64,
    df_between: f64,
    df_within: f64,
    f_statistic: f64,
    p_value: f64,
}

impl Anova {
    /// Between-group sum of squares.
    pub fn ss_between(&self) -> f64 {
        self.ss_between
    }

    /// Within-group sum of squares.
    pub fn ss_within(&self) -> f64 {
        self.ss_within
    }

    /// Between-group degrees of freedom (`k − 1`).
    pub fn df_between(&self) -> f64 {
        self.df_between
    }

    /// Within-group degrees of freedom (`N − k`).
    pub fn df_within(&self) -> f64 {
        self.df_within
    }

    /// Between-group mean square.
    pub fn ms_between(&self) -> f64 {
        self.ss_between / self.df_between
    }

    /// Within-group mean square.
    pub fn ms_within(&self) -> f64 {
        self.ss_within / self.df_within
    }

    /// The F statistic, `MS_between / MS_within`.
    pub fn f_statistic(&self) -> f64 {
        self.f_statistic
    }

    /// The p-value of the F test.
    pub fn p_value(&self) -> f64 {
        self.p_value
    }

    /// Whether between-group variability is significant at level `alpha` —
    /// in the paper's §5.2 reading: whether **time variability** is present
    /// and runs must be sampled from multiple starting points.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// One-way ANOVA over `groups` (§5.2).
///
/// Each group is one checkpoint's set of perturbed-run measurements; a
/// significant F statistic means between-group (time) variability cannot be
/// attributed to within-group (space) variability.
///
/// # Errors
///
/// Returns [`StatsError::SampleTooSmall`] if fewer than two groups are
/// supplied or any group is empty, [`StatsError::NonFiniteInput`] for
/// non-finite data, and [`StatsError::InvalidParameter`] if all observations
/// are identical (the F statistic is undefined).
pub fn anova_one_way(groups: &[&[f64]]) -> Result<Anova> {
    if groups.len() < 2 {
        return Err(StatsError::SampleTooSmall {
            required: 2,
            actual: groups.len(),
        });
    }
    let mut total = Summary::new();
    let mut group_summaries = Vec::with_capacity(groups.len());
    for g in groups {
        if g.is_empty() {
            return Err(StatsError::EmptySample);
        }
        let s = Summary::from_slice(g)?;
        total.merge(&s);
        group_summaries.push(s);
    }
    let grand_mean = total.mean();
    let n_total = total.n() as f64;
    let k = groups.len() as f64;
    if n_total - k < 1.0 {
        return Err(StatsError::SampleTooSmall {
            required: groups.len() + 1,
            actual: total.n() as usize,
        });
    }

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for s in &group_summaries {
        let d = s.mean() - grand_mean;
        ss_between += s.n() as f64 * d * d;
        // m2 is n * population variance = Σ (x - x̄_g)².
        ss_within += s.population_variance() * s.n() as f64;
    }

    let df_between = k - 1.0;
    let df_within = n_total - k;
    if ss_within == 0.0 && ss_between == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "data",
            value: 0.0,
            expected: "observations must not all be identical",
        });
    }
    let f_statistic = if ss_within == 0.0 {
        f64::INFINITY
    } else {
        (ss_between / df_between) / (ss_within / df_within)
    };
    let p_value = if f_statistic.is_infinite() {
        0.0
    } else {
        // Survival function of F(df_between, df_within).
        1.0 - reg_inc_beta_unchecked(
            df_between / 2.0,
            df_within / 2.0,
            df_between * f_statistic / (df_between * f_statistic + df_within),
        )
    };
    Ok(Anova {
        ss_between,
        ss_within,
        df_between,
        df_within,
        f_statistic,
        p_value,
    })
}

/// Result of a Jarque–Bera normality test.
///
/// The §5.1 machinery (t-tests, CIs) assumes approximately normal runtimes;
/// this diagnostic flags samples where that assumption is shaky (e.g. a
/// bimodal run space caused by a lock convoy that forms in some runs only).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JarqueBera {
    statistic: f64,
    skewness: f64,
    excess_kurtosis: f64,
    p_value: f64,
}

impl JarqueBera {
    /// The JB statistic `n/6 · (S² + K²/4)`.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Sample skewness.
    pub fn skewness(&self) -> f64 {
        self.skewness
    }

    /// Sample excess kurtosis.
    pub fn excess_kurtosis(&self) -> f64 {
        self.excess_kurtosis
    }

    /// Asymptotic p-value against χ²(2). Treat small-sample values as rough
    /// guidance only (JB is asymptotic).
    pub fn p_value(&self) -> f64 {
        self.p_value
    }

    /// Whether normality is rejected at level `alpha`.
    pub fn rejects_normality(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Runs the Jarque–Bera normality test on a sample.
///
/// # Errors
///
/// Returns [`StatsError::SampleTooSmall`] for fewer than four observations,
/// [`StatsError::NonFiniteInput`] for non-finite data, and
/// [`StatsError::InvalidParameter`] for a constant sample.
pub fn jarque_bera(values: &[f64]) -> Result<JarqueBera> {
    if values.len() < 4 {
        return Err(StatsError::SampleTooSmall {
            required: 4,
            actual: values.len(),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let m2 = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    if m2 == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "variance",
            value: 0.0,
            expected: "sample must not be constant",
        });
    }
    let m3 = values.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / n;
    let m4 = values.iter().map(|v| (v - mean).powi(4)).sum::<f64>() / n;
    let skewness = m3 / m2.powf(1.5);
    let excess_kurtosis = m4 / (m2 * m2) - 3.0;
    let statistic = n / 6.0 * (skewness * skewness + excess_kurtosis * excess_kurtosis / 4.0);
    // χ²(2) survival function is exp(−x/2).
    let p_value = (-statistic / 2.0).exp();
    Ok(JarqueBera {
        statistic,
        skewness,
        excess_kurtosis,
        p_value,
    })
}

/// Result of a two-way (two-factor, with replication) analysis of variance.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoWayAnova {
    /// F statistic and p-value for factor A (rows).
    pub factor_a: (f64, f64),
    /// F statistic and p-value for factor B (columns).
    pub factor_b: (f64, f64),
    /// F statistic and p-value for the A×B interaction.
    pub interaction: (f64, f64),
    /// Error (within-cell) mean square.
    pub ms_error: f64,
}

impl TwoWayAnova {
    /// Whether the A×B interaction is significant at `alpha` — in the
    /// paper's §5.2 reading: whether a configuration change *changes the
    /// variability structure* of a workload, so per-combination analyses are
    /// needed.
    pub fn interaction_significant(&self, alpha: f64) -> bool {
        self.interaction.1 <= alpha
    }
}

/// Two-way ANOVA over a full factorial design with equal replication:
/// `cells[a][b]` holds the `r >= 2` replicates of factor levels `(a, b)` —
/// e.g. workloads × system configurations, the combination analysis the
/// paper suggests when "the simulated system configuration has an impact on
/// variability" (§5.2).
///
/// # Errors
///
/// Returns [`StatsError::SampleTooSmall`] unless there are at least two
/// levels per factor and two replicates per cell, and
/// [`StatsError::InvalidParameter`] if cells are ragged or the data is
/// entirely constant.
pub fn anova_two_way(cells: &[Vec<Vec<f64>>]) -> Result<TwoWayAnova> {
    let a_levels = cells.len();
    if a_levels < 2 {
        return Err(StatsError::SampleTooSmall {
            required: 2,
            actual: a_levels,
        });
    }
    let b_levels = cells[0].len();
    if b_levels < 2 {
        return Err(StatsError::SampleTooSmall {
            required: 2,
            actual: b_levels,
        });
    }
    let reps = cells[0].first().map_or(0, Vec::len);
    if reps < 2 {
        return Err(StatsError::SampleTooSmall {
            required: 2,
            actual: reps,
        });
    }
    for row in cells {
        if row.len() != b_levels || row.iter().any(|c| c.len() != reps) {
            return Err(StatsError::InvalidParameter {
                name: "cells",
                value: 0.0,
                expected: "design must be a full factorial with equal replication",
            });
        }
        for cell in row {
            if cell.iter().any(|v| !v.is_finite()) {
                return Err(StatsError::NonFiniteInput);
            }
        }
    }

    let (a, b, r) = (a_levels as f64, b_levels as f64, reps as f64);
    let n = a * b * r;
    let grand: f64 = cells
        .iter()
        .flat_map(|row| row.iter().flat_map(|c| c.iter()))
        .sum::<f64>()
        / n;

    let mut ss_a = 0.0;
    for row in cells {
        let mean_a: f64 = row.iter().flat_map(|c| c.iter()).sum::<f64>() / (b * r);
        ss_a += b * r * (mean_a - grand).powi(2);
    }
    let mut ss_b = 0.0;
    for j in 0..b_levels {
        let mean_b: f64 = cells.iter().flat_map(|row| row[j].iter()).sum::<f64>() / (a * r);
        ss_b += a * r * (mean_b - grand).powi(2);
    }
    let mut ss_error = 0.0;
    let mut ss_cells = 0.0;
    for row in cells {
        for cell in row {
            let mean_c: f64 = cell.iter().sum::<f64>() / r;
            ss_cells += r * (mean_c - grand).powi(2);
            ss_error += cell.iter().map(|v| (v - mean_c).powi(2)).sum::<f64>();
        }
    }
    let ss_ab = (ss_cells - ss_a - ss_b).max(0.0);

    let df_a = a - 1.0;
    let df_b = b - 1.0;
    let df_ab = df_a * df_b;
    let df_e = a * b * (r - 1.0);
    if ss_error == 0.0 && ss_cells == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "data",
            value: 0.0,
            expected: "observations must not all be identical",
        });
    }
    let ms_e = ss_error / df_e;
    let f_of = |ss: f64, df: f64| -> (f64, f64) {
        if ms_e == 0.0 {
            return (f64::INFINITY, 0.0);
        }
        let f = (ss / df) / ms_e;
        let p = 1.0 - reg_inc_beta_unchecked(df / 2.0, df_e / 2.0, df * f / (df * f + df_e));
        (f, p)
    };
    Ok(TwoWayAnova {
        factor_a: f_of(ss_a, df_a),
        factor_b: f_of(ss_b, df_b),
        interaction: f_of(ss_ab, df_ab),
        ms_error: ms_e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(v: &[f64]) -> Summary {
        Summary::from_slice(v).unwrap()
    }

    #[test]
    fn ci_basic_properties() {
        let s = summary(&[4.0, 5.0, 6.0, 5.0, 4.5, 5.5]);
        let ci = mean_confidence_interval(&s, 0.95).unwrap();
        assert!(ci.contains(s.mean()));
        assert!((ci.midpoint() - s.mean()).abs() < 1e-12);
        assert!(ci.width() > 0.0);
        // Higher confidence => wider interval.
        let ci99 = mean_confidence_interval(&s, 0.99).unwrap();
        assert!(ci99.width() > ci.width());
    }

    #[test]
    fn ci_matches_hand_computation() {
        // n = 4, mean = 10, s = 2 => 95% CI = 10 ± t_{.975,3} * 2/2
        let s = summary(&[8.0, 9.0, 11.0, 12.0]);
        assert!((s.mean() - 10.0).abs() < 1e-12);
        let sd = s.sd();
        let t = StudentT::new(3.0).unwrap().quantile(0.975).unwrap();
        let ci = mean_confidence_interval(&s, 0.95).unwrap();
        let half = t * sd / 2.0;
        assert!((ci.lower() - (10.0 - half)).abs() < 1e-9);
        assert!((ci.upper() - (10.0 + half)).abs() < 1e-9);
    }

    #[test]
    fn critical_value_switches_to_normal_at_50() {
        let t49 = critical_value(49, 0.95).unwrap();
        let t50 = critical_value(50, 0.95).unwrap();
        let z = Normal::standard().quantile(0.975).unwrap();
        assert!((t50 - z).abs() < 1e-12);
        assert!(t49 > t50); // t distribution has fatter tails
    }

    #[test]
    fn ci_overlap_detection() {
        let a = ConfidenceInterval::new(1.0, 2.0, 0.95).unwrap();
        let b = ConfidenceInterval::new(1.5, 3.0, 0.95).unwrap();
        let c = ConfidenceInterval::new(2.5, 3.0, 0.95).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        // Touching endpoints count as overlap.
        let d = ConfidenceInterval::new(2.0, 2.2, 0.95).unwrap();
        assert!(a.overlaps(&d));
    }

    #[test]
    fn ci_validation() {
        assert!(ConfidenceInterval::new(2.0, 1.0, 0.95).is_err());
        assert!(ConfidenceInterval::new(1.0, 2.0, 0.0).is_err());
        assert!(ConfidenceInterval::new(1.0, 2.0, 1.0).is_err());
        assert!(ConfidenceInterval::new(f64::NAN, 2.0, 0.5).is_err());
        let s = summary(&[1.0]);
        assert!(mean_confidence_interval(&s, 0.95).is_err());
    }

    #[test]
    fn pooled_t_test_reference() {
        // Classic textbook example: equal n, hand-computed statistic.
        let a = summary(&[30.02, 29.99, 30.11, 29.97, 30.01, 29.99]);
        let b = summary(&[29.89, 29.93, 29.72, 29.98, 30.02, 29.98]);
        let t = two_sample_t_test(&a, &b, TTestKind::Pooled).unwrap();
        assert!((t.df() - 10.0).abs() < 1e-12);
        assert!((t.statistic() - 1.959).abs() < 2e-3);
        // Welch df must be <= pooled df and > min(n)-1.
        let w = two_sample_t_test(&a, &b, TTestKind::Welch).unwrap();
        assert!(w.df() <= 10.0 + 1e-9);
        assert!(w.df() > 5.0);
    }

    #[test]
    fn t_test_p_values_sensible() {
        let a = summary(&[10.0, 10.1, 9.9, 10.2, 9.8]);
        let b = summary(&[12.0, 12.1, 11.9, 12.2, 11.8]);
        // b is clearly larger: one-sided p for "a > b" near 1, for "b > a" near 0.
        let ab = two_sample_t_test(&a, &b, TTestKind::Pooled).unwrap();
        assert!(ab.p_one_sided() > 0.999);
        let ba = two_sample_t_test(&b, &a, TTestKind::Pooled).unwrap();
        assert!(ba.p_one_sided() < 1e-6);
        assert!(ba.rejects_one_sided(0.01));
        assert!((ab.p_two_sided() - ba.p_two_sided()).abs() < 1e-12);
    }

    #[test]
    fn t_test_symmetry() {
        let a = summary(&[1.0, 2.0, 3.0]);
        let b = summary(&[2.0, 3.0, 4.0]);
        let ab = two_sample_t_test(&a, &b, TTestKind::Pooled).unwrap();
        let ba = two_sample_t_test(&b, &a, TTestKind::Pooled).unwrap();
        assert!((ab.statistic() + ba.statistic()).abs() < 1e-12);
        assert_eq!(ab.df(), ba.df());
    }

    #[test]
    fn t_test_validation() {
        let tiny = summary(&[1.0]);
        let ok = summary(&[1.0, 2.0]);
        assert!(two_sample_t_test(&tiny, &ok, TTestKind::Pooled).is_err());
        let const_a = summary(&[2.0, 2.0]);
        let const_b = summary(&[3.0, 3.0]);
        assert!(two_sample_t_test(&const_a, &const_b, TTestKind::Welch).is_err());
    }

    #[test]
    fn sample_size_paper_worked_example() {
        // §5.1.1: r = 4%, 95% confidence, CoV ≈ 9% => ≈ 20 runs.
        let n = sample_size_for_relative_error(0.09, 0.04, 0.95).unwrap();
        assert_eq!(n, 20);
    }

    #[test]
    fn sample_size_scales_sensibly() {
        // Halving the allowed error quadruples the runs.
        let n1 = sample_size_for_relative_error(0.10, 0.04, 0.95).unwrap();
        let n2 = sample_size_for_relative_error(0.10, 0.02, 0.95).unwrap();
        assert!(n2 >= 4 * n1 - 4 && n2 <= 4 * n1 + 4);
        // Higher confidence needs more runs.
        let n3 = sample_size_for_relative_error(0.10, 0.04, 0.99).unwrap();
        assert!(n3 > n1);
    }

    #[test]
    fn sample_size_validation() {
        assert!(sample_size_for_relative_error(0.0, 0.04, 0.95).is_err());
        assert!(sample_size_for_relative_error(0.09, -0.1, 0.95).is_err());
        assert!(sample_size_for_relative_error(0.09, 0.04, 1.0).is_err());
    }

    #[test]
    fn anova_reference_example() {
        // Hand-checked one-way ANOVA:
        // groups (1,2,3), (2,3,4), (5,6,7): SSB = 26, SSW = 6, F = 13.
        let g1 = [1.0, 2.0, 3.0];
        let g2 = [2.0, 3.0, 4.0];
        let g3 = [5.0, 6.0, 7.0];
        let a = anova_one_way(&[&g1, &g2, &g3]).unwrap();
        assert!((a.ss_between() - 26.0).abs() < 1e-9);
        assert!((a.ss_within() - 6.0).abs() < 1e-9);
        assert!((a.df_between() - 2.0).abs() < 1e-12);
        assert!((a.df_within() - 6.0).abs() < 1e-12);
        assert!((a.f_statistic() - 13.0).abs() < 1e-9);
        assert!(a.p_value() < 0.01);
        assert!(a.is_significant(0.05));
    }

    #[test]
    fn anova_no_group_effect() {
        // Identical group means: F ≈ 0, not significant.
        let g1 = [1.0, 2.0, 3.0];
        let g2 = [2.0, 1.0, 3.0];
        let a = anova_one_way(&[&g1, &g2]).unwrap();
        assert!(a.f_statistic() < 1e-9);
        assert!(!a.is_significant(0.05));
        assert!(a.p_value() > 0.9);
    }

    #[test]
    fn anova_f_matches_squared_t_for_two_groups() {
        // For k = 2, F = t² (pooled).
        let g1 = [4.0, 5.0, 6.0, 5.5];
        let g2 = [6.0, 7.0, 8.0, 6.5];
        let a = anova_one_way(&[&g1, &g2]).unwrap();
        let t = two_sample_t_test(&summary(&g1), &summary(&g2), TTestKind::Pooled).unwrap();
        assert!((a.f_statistic() - t.statistic().powi(2)).abs() < 1e-9);
        assert!((a.p_value() - t.p_two_sided()).abs() < 1e-9);
    }

    #[test]
    fn anova_validation() {
        let g = [1.0, 2.0];
        assert!(anova_one_way(&[&g]).is_err());
        assert!(anova_one_way(&[&g, &[]]).is_err());
        let c = [3.0, 3.0];
        assert!(anova_one_way(&[&c, &c]).is_err());
    }

    #[test]
    fn anova_handles_zero_within_variance() {
        let g1 = [1.0, 1.0];
        let g2 = [2.0, 2.0];
        let a = anova_one_way(&[&g1, &g2]).unwrap();
        assert!(a.f_statistic().is_infinite());
        assert_eq!(a.p_value(), 0.0);
        assert!(a.is_significant(0.001));
    }

    #[test]
    fn jarque_bera_accepts_near_normal_symmetric_data() {
        // Symmetric, light-tailed sample: skewness ~ 0, kurtosis mild.
        let vals: Vec<f64> = (-20..=20).map(f64::from).collect();
        let jb = jarque_bera(&vals).unwrap();
        assert!(jb.skewness().abs() < 1e-9);
        // Uniform data is platykurtic but with n = 41 JB stays moderate.
        assert!(jb.statistic() < 10.0);
        assert!((0.0..=1.0).contains(&jb.p_value()));
    }

    #[test]
    fn jarque_bera_rejects_heavy_skew() {
        // Strongly right-skewed: a spike plus a far outlier cluster.
        let mut vals = vec![1.0; 50];
        vals.extend_from_slice(&[40.0, 45.0, 50.0, 55.0]);
        let jb = jarque_bera(&vals).unwrap();
        assert!(jb.skewness() > 1.0);
        assert!(jb.rejects_normality(0.01), "p = {}", jb.p_value());
    }

    #[test]
    fn jarque_bera_validation() {
        assert!(jarque_bera(&[1.0, 2.0, 3.0]).is_err());
        assert!(jarque_bera(&[5.0; 10]).is_err());
        assert!(jarque_bera(&[1.0, 2.0, f64::NAN, 3.0]).is_err());
    }

    #[test]
    fn two_way_anova_textbook_example() {
        // 2x2 with 3 replicates; strong A effect, weak B, no interaction.
        let cells = vec![
            vec![vec![10.0, 11.0, 9.0], vec![10.5, 11.5, 9.5]],
            vec![vec![20.0, 21.0, 19.0], vec![20.5, 21.5, 19.5]],
        ];
        let a = anova_two_way(&cells).unwrap();
        assert!(
            a.factor_a.0 > 50.0,
            "A should dominate: F = {}",
            a.factor_a.0
        );
        assert!(a.factor_a.1 < 0.001);
        assert!(a.factor_b.1 > 0.3, "B is weak: p = {}", a.factor_b.1);
        assert!(
            a.interaction.1 > 0.5,
            "no interaction: p = {}",
            a.interaction.1
        );
        assert!(!a.interaction_significant(0.05));
        assert!(a.ms_error > 0.0);
    }

    #[test]
    fn two_way_anova_detects_interaction() {
        // Crossed means: the effect of B reverses with A — pure interaction.
        let cells = vec![
            vec![vec![10.0, 10.2, 9.8], vec![20.0, 20.2, 19.8]],
            vec![vec![20.0, 20.2, 19.8], vec![10.0, 10.2, 9.8]],
        ];
        let a = anova_two_way(&cells).unwrap();
        assert!(a.interaction_significant(0.001));
        assert!(a.factor_a.1 > 0.5 && a.factor_b.1 > 0.5);
    }

    #[test]
    fn two_way_anova_validation() {
        assert!(anova_two_way(&[]).is_err());
        assert!(anova_two_way(&[vec![vec![1.0, 2.0]]]).is_err());
        // Ragged design.
        let ragged = vec![vec![vec![1.0, 2.0], vec![1.0, 2.0]], vec![vec![1.0, 2.0]]];
        assert!(anova_two_way(&ragged).is_err());
        // Single replicate.
        let single = vec![vec![vec![1.0], vec![2.0]], vec![vec![3.0], vec![4.0]]];
        assert!(anova_two_way(&single).is_err());
        // Constant data.
        let constant = vec![
            vec![vec![2.0, 2.0], vec![2.0, 2.0]],
            vec![vec![2.0, 2.0], vec![2.0, 2.0]],
        ];
        assert!(anova_two_way(&constant).is_err());
    }
}
