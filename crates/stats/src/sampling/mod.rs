//! Sampling methodologies as first-class estimators of a population mean.
//!
//! The HPCA 2003 paper estimates cycles-per-transaction from *full*
//! multi-run experiments: measure every starting point of interest, several
//! perturbed runs each. Modern practice samples instead — measure a
//! *subset* of positions and attach a confidence interval to the resulting
//! estimate. This module implements three such estimators over an abstract
//! **position frame** `0..population`:
//!
//! * [`srs::position_sample`] — simple-random and stratified position
//!   sampling (one knob, [`srs::PositionDesign::strata`], selects between
//!   them).
//! * [`ranked_set::ranked_set_sample`] — ranked-set sampling (Ekman-style):
//!   rank cheap proxies of candidate positions, pay the expensive
//!   measurement only for one position per rank.
//! * [`live::live_sample`] — live sampling (Pac-Sim-style): adaptively
//!   extend measurement until a target confidence-interval half-width is
//!   met.
//!
//! Every estimator consumes a [`PositionOracle`] — the bridge to whatever
//! produces a position's value (an architectural simulator forking runs
//! from a warmup checkpoint, in `mtvar-core`; a closure over synthetic data
//! in the tests below) — and returns an [`Estimate`]: a point estimate, a
//! [`ConfidenceInterval`], and the [`SamplingCost`] paid to obtain it.
//!
//! The estimand throughout is the **population mean** of the frame: the
//! average of the oracle's value over all `population` positions. That is
//! exactly the quantity a full time-sampling study (every position
//! measured) computes, which is what makes these estimators directly
//! comparable to the paper's own methodology: `mtvar-core`'s evaluation
//! harness scores each estimator's wrong-conclusion ratio and empirical CI
//! coverage against that full-run ground truth.
//!
//! # Example
//!
//! A synthetic population with a known mean, sampled three ways:
//!
//! ```
//! use mtvar_stats::sampling::srs::{position_sample, PositionDesign};
//! use mtvar_stats::sampling::Measurement;
//!
//! // Population value at position p is 100 + a deterministic wobble.
//! let mut oracle = |p: u64| Measurement::new(100.0 + (p % 7) as f64, 1.0);
//! let design = PositionDesign {
//!     population: 700,
//!     samples: 14,
//!     strata: 1, // 1 = simple random sampling
//!     seed: 9,
//!     level: 0.95,
//! };
//! let est = position_sample(&design, &mut oracle).unwrap();
//! assert_eq!(est.cost().measurements, 14);
//! assert!(est.ci().contains(103.0)); // true mean of the wobble is 103
//! ```

pub mod live;
pub mod ranked_set;
pub mod srs;

use std::convert::Infallible;
use std::fmt;

use crate::infer::ConfidenceInterval;
use crate::StatsError;

/// One evaluation of a position: the value observed and the cost paid.
///
/// `cost` is in whatever unit the oracle accounts in — `mtvar-core` uses
/// simulated cycles, so an estimator's total cost is directly comparable to
/// the simulated-cycle cost of the full-run methodology it replaces.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Measurement {
    /// The observed value (cycles-per-transaction in the simulator setting).
    pub value: f64,
    /// Cost of obtaining it (simulated cycles in the simulator setting).
    pub cost: f64,
}

impl Measurement {
    /// Bundles a value with its cost.
    pub fn new(value: f64, cost: f64) -> Self {
        Measurement { value, cost }
    }
}

/// Source of position values for the estimators: maps a position index in
/// `0..population` to a [`Measurement`].
///
/// Two channels, with very different costs in the simulator setting:
///
/// * [`PositionOracle::measure`] — the expensive, full-fidelity evaluation
///   (fork perturbed runs from the position's warmup checkpoint and measure
///   cycles-per-transaction).
/// * [`PositionOracle::proxy`] — a cheap stand-in whose *ordering* roughly
///   tracks the real value (a short probe run). Only ranked-set sampling
///   uses it; the default forwards to `measure`, which makes ranking exact
///   but forfeits the cost advantage.
///
/// Any `FnMut(u64) -> Measurement` closure is an oracle (with `Error =
/// Infallible`); use [`ProxyOracle`] to pair distinct measure/proxy
/// closures, or implement the trait directly for fallible sources.
pub trait PositionOracle {
    /// Error produced by a failed evaluation (`Infallible` for closures).
    type Error;

    /// Evaluates a position at full fidelity.
    ///
    /// # Errors
    ///
    /// Whatever the underlying source reports — e.g. a simulator deadlock.
    fn measure(&mut self, position: u64) -> std::result::Result<Measurement, Self::Error>;

    /// Evaluates a cheap ranking proxy for a position. Defaults to
    /// [`PositionOracle::measure`].
    ///
    /// # Errors
    ///
    /// Whatever the underlying source reports.
    fn proxy(&mut self, position: u64) -> std::result::Result<Measurement, Self::Error> {
        self.measure(position)
    }
}

impl<F> PositionOracle for F
where
    F: FnMut(u64) -> Measurement,
{
    type Error = Infallible;

    fn measure(&mut self, position: u64) -> std::result::Result<Measurement, Infallible> {
        Ok(self(position))
    }
}

/// A [`PositionOracle`] built from two closures: an expensive `measure` and
/// a cheap `proxy` — the shape ranked-set sampling wants.
///
/// # Example
///
/// ```
/// use mtvar_stats::sampling::{Measurement, PositionOracle, ProxyOracle};
///
/// let mut oracle = ProxyOracle::new(
///     |p: u64| Measurement::new(p as f64, 100.0), // expensive
///     |p: u64| Measurement::new(p as f64, 1.0),   // cheap, same ordering
/// );
/// assert_eq!(oracle.measure(3).unwrap().cost, 100.0);
/// assert_eq!(oracle.proxy(3).unwrap().cost, 1.0);
/// ```
pub struct ProxyOracle<M, P> {
    measure: M,
    proxy: P,
}

impl<M, P> ProxyOracle<M, P>
where
    M: FnMut(u64) -> Measurement,
    P: FnMut(u64) -> Measurement,
{
    /// Pairs an expensive measurement closure with a cheap proxy closure.
    pub fn new(measure: M, proxy: P) -> Self {
        ProxyOracle { measure, proxy }
    }
}

impl<M, P> fmt::Debug for ProxyOracle<M, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyOracle").finish_non_exhaustive()
    }
}

impl<M, P> PositionOracle for ProxyOracle<M, P>
where
    M: FnMut(u64) -> Measurement,
    P: FnMut(u64) -> Measurement,
{
    type Error = Infallible;

    fn measure(&mut self, position: u64) -> std::result::Result<Measurement, Infallible> {
        Ok((self.measure)(position))
    }

    fn proxy(&mut self, position: u64) -> std::result::Result<Measurement, Infallible> {
        Ok((self.proxy)(position))
    }
}

/// What an estimator spent to produce its estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SamplingCost {
    /// Full-fidelity measurements taken.
    pub measurements: u64,
    /// Cheap proxy evaluations taken (ranked-set sampling only).
    pub proxy_probes: u64,
    /// Total cost in the oracle's unit, summed over both channels
    /// (simulated cycles in the simulator setting).
    pub simulated: f64,
}

impl SamplingCost {
    fn add_measure(&mut self, m: &Measurement) {
        self.measurements += 1;
        self.simulated += m.cost;
    }

    fn add_proxy(&mut self, m: &Measurement) {
        self.proxy_probes += 1;
        self.simulated += m.cost;
    }
}

/// An estimator's output: point estimate, confidence interval, and cost.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Estimate {
    point: f64,
    ci: ConfidenceInterval,
    cost: SamplingCost,
}

impl Estimate {
    /// The point estimate of the population mean.
    pub fn point(&self) -> f64 {
        self.point
    }

    /// The confidence interval around the point estimate.
    pub fn ci(&self) -> &ConfidenceInterval {
        &self.ci
    }

    /// What producing the estimate cost.
    pub fn cost(&self) -> &SamplingCost {
        &self.cost
    }

    /// CI half-width as a fraction of the absolute point estimate — the
    /// quantity live sampling drives below its target. Infinite for a zero
    /// point estimate.
    pub fn relative_half_width(&self) -> f64 {
        if self.point == 0.0 {
            f64::INFINITY
        } else {
            0.5 * self.ci.width() / self.point.abs()
        }
    }
}

/// Why an estimator could not produce an estimate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SamplingError<E> {
    /// The sampling design itself is unusable (too few samples, empty
    /// population, samples exceeding population, ...).
    Design {
        /// Description of the violated constraint.
        what: String,
    },
    /// A statistical computation on the collected sample failed (e.g. a
    /// non-finite oracle value).
    Stats(StatsError),
    /// The oracle failed to evaluate a position.
    Oracle(E),
}

impl<E: fmt::Display> fmt::Display for SamplingError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::Design { what } => write!(f, "invalid sampling design: {what}"),
            SamplingError::Stats(e) => write!(f, "sampling statistics error: {e}"),
            SamplingError::Oracle(e) => write!(f, "sampling oracle error: {e}"),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for SamplingError<E> {}

impl<E> From<StatsError> for SamplingError<E> {
    fn from(e: StatsError) -> Self {
        SamplingError::Stats(e)
    }
}

/// Shorthand for estimator results over an oracle with error `E`.
pub type SamplingResult<T, E> = std::result::Result<T, SamplingError<E>>;

pub(crate) fn design_err<T, E>(what: impl Into<String>) -> SamplingResult<T, E> {
    Err(SamplingError::Design { what: what.into() })
}

// ---------------------------------------------------------------------------
// Seeded randomness (self-contained; this crate has no dependencies)
// ---------------------------------------------------------------------------

/// SplitMix64: the crate-local seeded generator behind position draws.
/// Deterministic for a given seed, so every estimator is reproducible.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` by rejection (unbiased).
    pub(crate) fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Draws `count` distinct positions uniformly from `range` (a contiguous
/// span `[start, start + len)`) by partial Fisher–Yates, in draw order.
pub(crate) fn sample_without_replacement(
    rng: &mut SplitMix64,
    start: u64,
    len: u64,
    count: usize,
) -> Vec<u64> {
    debug_assert!(count as u64 <= len);
    let mut pool: Vec<u64> = (start..start + len).collect();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let j = i as u64 + rng.next_below(len - i as u64);
        pool.swap(i, j as usize);
        out.push(pool[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_without_replacement_is_distinct_and_in_range() {
        let mut rng = SplitMix64::new(7);
        let s = sample_without_replacement(&mut rng, 10, 20, 12);
        assert_eq!(s.len(), 12);
        let set: std::collections::HashSet<u64> = s.iter().copied().collect();
        assert_eq!(set.len(), 12, "draws must be distinct: {s:?}");
        assert!(s.iter().all(|&p| (10..30).contains(&p)));
        // Exhaustive draw returns the whole range.
        let mut rng2 = SplitMix64::new(7);
        let all = sample_without_replacement(&mut rng2, 0, 5, 5);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn splitmix_reproduces_for_a_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for bound in [1, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn closure_oracle_and_proxy_oracle() {
        let mut plain = |p: u64| Measurement::new(p as f64 * 2.0, 5.0);
        assert_eq!(PositionOracle::measure(&mut plain, 4).unwrap().value, 8.0);
        // Default proxy forwards to measure.
        assert_eq!(PositionOracle::proxy(&mut plain, 4).unwrap().value, 8.0);

        let mut split = ProxyOracle::new(
            |p: u64| Measurement::new(p as f64, 100.0),
            |p: u64| Measurement::new(p as f64 + 0.5, 1.0),
        );
        assert_eq!(split.measure(2).unwrap().cost, 100.0);
        assert_eq!(split.proxy(2).unwrap().value, 2.5);
        assert!(format!("{split:?}").contains("ProxyOracle"));
    }

    #[test]
    fn estimate_relative_half_width() {
        let ci = ConfidenceInterval::new(90.0, 110.0, 0.95).unwrap();
        let est = Estimate {
            point: 100.0,
            ci,
            cost: SamplingCost::default(),
        };
        assert!((est.relative_half_width() - 0.1).abs() < 1e-12);
        let zero = Estimate {
            point: 0.0,
            ci,
            cost: SamplingCost::default(),
        };
        assert!(zero.relative_half_width().is_infinite());
    }

    #[test]
    fn sampling_error_display_and_conversion() {
        let e: SamplingError<Infallible> = StatsError::EmptySample.into();
        assert!(e.to_string().contains("statistics"));
        let d: SamplingError<Infallible> = SamplingError::Design { what: "bad".into() };
        assert!(d.to_string().contains("bad"));
    }
}
