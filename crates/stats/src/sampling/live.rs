//! Live sampling: adaptively extend measurement until the estimate is good
//! enough.
//!
//! Pac-Sim's central idea, restated for position sampling: fix the
//! *precision target* instead of the *budget*. Measure a small initial
//! batch of random positions, compute the confidence interval, and keep
//! adding batches until the CI half-width falls below a target fraction of
//! the point estimate (or the budget runs out). Low-variability workloads
//! stop almost immediately; high-variability ones automatically buy the
//! extra measurements they need — the same runs-vs-precision trade the
//! paper's §5.1.1 sample-size formula `n = (t·CoV/r)²` makes statically,
//! but driven by the *observed* variability instead of a pilot estimate.

use crate::describe::Summary;
use crate::infer::mean_confidence_interval;

use super::{
    design_err, sample_without_replacement, Estimate, PositionOracle, SamplingCost, SamplingError,
    SamplingResult, SplitMix64,
};

/// Design of a live (adaptive) position sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LiveDesign {
    /// Size of the position frame; positions are `0..population`.
    pub population: u64,
    /// Measurements in the first batch (at least 2 — a CI needs variance).
    pub initial: usize,
    /// Measurements added per extension round (at least 1).
    pub batch: usize,
    /// Stop once the CI half-width is at most this fraction of the absolute
    /// point estimate (e.g. `0.02` for ±2%).
    pub target_half_width: f64,
    /// Hard ceiling on measurements (clamped to the population size).
    pub max_samples: usize,
    /// Seed of the position draw; a design is reproducible per seed.
    pub seed: u64,
    /// Confidence level of the interval (e.g. `0.95`).
    pub level: f64,
}

impl LiveDesign {
    /// A design targeting `target_half_width` relative precision at the 95%
    /// confidence level, starting from 4 measurements and extending by 2.
    pub fn new(population: u64, target_half_width: f64, max_samples: usize, seed: u64) -> Self {
        LiveDesign {
            population,
            initial: 4,
            batch: 2,
            target_half_width,
            max_samples,
            seed,
            level: 0.95,
        }
    }

    fn validate<E>(&self) -> SamplingResult<(), E> {
        if self.population == 0 {
            return design_err("position frame is empty");
        }
        if self.initial < 2 {
            return design_err("live sampling needs an initial batch of at least 2");
        }
        if self.batch == 0 {
            return design_err("live sampling needs a positive extension batch");
        }
        if self.max_samples < self.initial {
            return design_err(format!(
                "max_samples ({}) is below the initial batch ({})",
                self.max_samples, self.initial
            ));
        }
        if (self.initial as u64) > self.population {
            return design_err(format!(
                "initial batch of {} exceeds the {}-position frame",
                self.initial, self.population
            ));
        }
        if !self.target_half_width.is_finite() || self.target_half_width <= 0.0 {
            return design_err("target_half_width must be a positive fraction");
        }
        Ok(())
    }
}

/// Outcome of a live sample: the estimate plus how the adaptation ended.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LiveOutcome {
    /// The estimate at the point the loop stopped.
    pub estimate: Estimate,
    /// Whether the precision target was met (`false`: the budget or the
    /// population ran out first — the CI is honest but wider than asked).
    pub converged: bool,
    /// Extension rounds taken after the initial batch.
    pub rounds: usize,
}

/// Estimates the population mean by live sampling, per `design`.
///
/// Positions are drawn without replacement from a seeded permutation of
/// the frame, so the adaptive extension never re-measures a position and
/// exhausting the frame degrades gracefully into a census. After the
/// initial batch, each round appends `batch` measurements and re-tests
/// `half_width(CI) ≤ target_half_width · |mean|`; the loop stops on
/// success, on reaching `max_samples`, or on exhausting the population.
///
/// The repeated looks at the data make the final interval slightly
/// anti-conservative in the strict sequential-analysis sense (the stopping
/// rule is data-dependent); the evaluation harness in `mtvar-core` measures
/// the realized coverage empirically rather than assuming it.
///
/// # Errors
///
/// [`SamplingError::Design`] for an infeasible design,
/// [`SamplingError::Oracle`] if a measurement fails, and
/// [`SamplingError::Stats`] for degenerate samples.
///
/// # Example
///
/// A low-variability frame converges on the initial batch; a spread one
/// needs extension rounds:
///
/// ```
/// use mtvar_stats::sampling::live::{live_sample, LiveDesign};
/// use mtvar_stats::sampling::Measurement;
///
/// let mut calm = |p: u64| Measurement::new(100.0 + 0.001 * (p % 3) as f64, 1.0);
/// let out = live_sample(&LiveDesign::new(1000, 0.01, 50, 7), &mut calm).unwrap();
/// assert!(out.converged);
/// assert_eq!(out.rounds, 0);
/// assert_eq!(out.estimate.cost().measurements, 4);
///
/// let mut spread = |p: u64| Measurement::new(100.0 + (p % 40) as f64, 1.0);
/// let out = live_sample(&LiveDesign::new(1000, 0.02, 50, 7), &mut spread).unwrap();
/// assert!(out.rounds > 0, "a spread population must need extension");
/// ```
pub fn live_sample<O: PositionOracle>(
    design: &LiveDesign,
    oracle: &mut O,
) -> SamplingResult<LiveOutcome, O::Error> {
    design.validate()?;
    let cap = (design.max_samples as u64).min(design.population) as usize;
    let mut rng = SplitMix64::new(design.seed ^ 0x90D4_4CB3_5EF0_187A);
    // One draw up front of every position the loop could ever need keeps
    // the sequence independent of when the stopping rule fires.
    let order = sample_without_replacement(&mut rng, 0, design.population, cap);

    let mut cost = SamplingCost::default();
    let mut summary = Summary::new();
    let mut taken = 0usize;
    let take = |n: usize,
                taken: &mut usize,
                summary: &mut Summary,
                cost: &mut SamplingCost,
                oracle: &mut O|
     -> SamplingResult<(), O::Error> {
        for _ in 0..n {
            let m = oracle
                .measure(order[*taken])
                .map_err(SamplingError::Oracle)?;
            cost.add_measure(&m);
            summary.try_push(m.value)?;
            *taken += 1;
        }
        Ok(())
    };

    take(
        design.initial.min(cap),
        &mut taken,
        &mut summary,
        &mut cost,
        oracle,
    )?;
    let mut rounds = 0usize;
    loop {
        let ci = mean_confidence_interval(&summary, design.level)?;
        let half = 0.5 * ci.width();
        let converged =
            summary.mean() != 0.0 && half <= design.target_half_width * summary.mean().abs();
        if converged || taken >= cap {
            return Ok(LiveOutcome {
                estimate: Estimate {
                    point: summary.mean(),
                    ci,
                    cost,
                },
                converged,
                rounds,
            });
        }
        let n = design.batch.min(cap - taken);
        take(n, &mut taken, &mut summary, &mut cost, oracle)?;
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::Measurement;

    #[test]
    fn tight_population_converges_immediately() {
        let mut oracle = |_p: u64| Measurement::new(50.0, 2.0);
        let out = live_sample(&LiveDesign::new(100, 0.05, 20, 1), &mut oracle).unwrap();
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.estimate.cost().measurements, 4);
        assert!((out.estimate.cost().simulated - 8.0).abs() < 1e-12);
        assert_eq!(out.estimate.point(), 50.0);
    }

    #[test]
    fn budget_exhaustion_reports_unconverged() {
        // Huge spread, tiny budget: cannot reach ±0.1%.
        let mut oracle = |p: u64| Measurement::new(100.0 + (p % 50) as f64, 1.0);
        let d = LiveDesign::new(1000, 0.001, 8, 3);
        let out = live_sample(&d, &mut oracle).unwrap();
        assert!(!out.converged);
        assert_eq!(out.estimate.cost().measurements, 8);
        assert_eq!(out.rounds, 2); // 4 initial + 2 + 2
    }

    #[test]
    fn population_exhaustion_degrades_to_census() {
        let mut oracle = |p: u64| Measurement::new((p % 5) as f64 * 10.0, 1.0);
        let d = LiveDesign::new(6, 0.0001, 100, 5);
        let out = live_sample(&d, &mut oracle).unwrap();
        assert_eq!(out.estimate.cost().measurements, 6, "census of the frame");
        assert!(!out.converged);
    }

    #[test]
    fn reproducible_per_seed_and_monotone_in_target() {
        let mk = |seed| LiveDesign::new(500, 0.03, 60, seed);
        let mut o1 = |p: u64| Measurement::new(100.0 + (p % 20) as f64, 1.0);
        let a = live_sample(&mk(9), &mut o1).unwrap();
        let b = live_sample(&mk(9), &mut o1).unwrap();
        assert_eq!(a, b);
        // A looser target can never need more measurements.
        let loose = LiveDesign {
            target_half_width: 0.3,
            ..mk(9)
        };
        let c = live_sample(&loose, &mut o1).unwrap();
        assert!(c.estimate.cost().measurements <= a.estimate.cost().measurements);
    }

    #[test]
    fn design_validation() {
        let bad = |d: LiveDesign| {
            matches!(
                live_sample(&d, &mut |_p: u64| Measurement::new(1.0, 1.0)),
                Err(SamplingError::Design { .. })
            )
        };
        assert!(bad(LiveDesign::new(0, 0.05, 10, 0)));
        assert!(bad(LiveDesign {
            initial: 1,
            ..LiveDesign::new(100, 0.05, 10, 0)
        }));
        assert!(bad(LiveDesign {
            batch: 0,
            ..LiveDesign::new(100, 0.05, 10, 0)
        }));
        assert!(bad(LiveDesign::new(100, 0.05, 3, 0))); // max < initial
        assert!(bad(LiveDesign::new(2, 0.05, 10, 0))); // initial > frame
        assert!(bad(LiveDesign::new(100, 0.0, 10, 0)));
        assert!(bad(LiveDesign::new(100, f64::NAN, 10, 0)));
    }
}
