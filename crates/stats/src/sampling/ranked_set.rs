//! Ranked-set sampling: spend cheap proxies to decide where to spend
//! expensive measurements.
//!
//! Ekman's observation, transplanted to simulation sampling: when a cheap
//! *ranking* of candidate positions is available — a short probe run whose
//! cycles-per-transaction roughly orders positions, even if its absolute
//! value is noisy — a balanced ranked-set sample beats a simple random
//! sample of the same measurement budget. The mechanism: draw `m` candidate
//! positions, rank them by proxy, and measure only the candidate of rank
//! `i`; repeating for each rank `i = 1..m` (one *cycle*) yields `m`
//! measurements deliberately spread across the value distribution, so the
//! sample mean's variance drops below the SRS variance whenever the
//! ranking is better than random.
//!
//! Cost structure per cycle: `m` expensive measurements plus `m²` cheap
//! proxy probes. The method pays off exactly when
//! `proxy_cost × m² ≪ measure_cost × m` — which is why the simulator-side
//! proxy is a few-transaction probe forked from the same warmup checkpoint
//! the real measurement uses.

use crate::describe::Summary;
use crate::infer::{critical_value, mean_confidence_interval, ConfidenceInterval};

use super::{
    design_err, sample_without_replacement, Estimate, PositionOracle, SamplingCost, SamplingError,
    SamplingResult, SplitMix64,
};

/// Design of a balanced ranked-set sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RankedSetDesign {
    /// Size of the position frame; positions are `0..population`.
    pub population: u64,
    /// Set size `m`: candidates ranked per set, and measurements per cycle.
    pub set_size: usize,
    /// Cycles `r`: full rank rotations. Total measurements are `r·m`,
    /// total proxy probes `r·m²`.
    pub cycles: usize,
    /// Seed of the candidate draws; a design is reproducible per seed.
    pub seed: u64,
    /// Confidence level of the returned interval (e.g. `0.95`).
    pub level: f64,
}

impl RankedSetDesign {
    /// A balanced design with set size `m` and `cycles` rotations at the
    /// 95% confidence level.
    pub fn new(population: u64, set_size: usize, cycles: usize, seed: u64) -> Self {
        RankedSetDesign {
            population,
            set_size,
            cycles,
            seed,
            level: 0.95,
        }
    }

    fn validate<E>(&self) -> SamplingResult<(), E> {
        if self.population == 0 {
            return design_err("position frame is empty");
        }
        if self.set_size < 2 {
            return design_err("ranked-set sampling needs set size >= 2");
        }
        if self.cycles == 0 {
            return design_err("ranked-set sampling needs at least one cycle");
        }
        if (self.set_size as u64) > self.population {
            return design_err(format!(
                "a ranking set of {} candidates exceeds the {}-position frame",
                self.set_size, self.population
            ));
        }
        if self.set_size * self.cycles < 2 {
            return design_err("need at least two measurements overall");
        }
        Ok(())
    }
}

/// Estimates the population mean by balanced ranked-set sampling, per
/// `design`.
///
/// For each cycle and each rank `i`, a fresh set of `m` candidate
/// positions is drawn without replacement, every candidate's
/// [`PositionOracle::proxy`] is evaluated, the set is sorted by proxy
/// value (stable, so proxy ties resolve by draw order — deterministic),
/// and the `i`-th ranked candidate is passed to
/// [`PositionOracle::measure`]. The point estimate is the mean of the
/// `r·m` measurements.
///
/// The interval uses the rank-stratified variance estimator
/// `Var(ȳ) = (1/m²) Σᵢ sᵢ²/r` (each rank is a stratum of `r`
/// measurements), with `m·(r−1)` degrees of freedom — this is what
/// captures ranked-set sampling's variance advantage. It needs `r ≥ 2`;
/// with a single cycle the estimator falls back to the plain SRS interval
/// over the `m` measurements, which is conservative (it ignores the
/// rank stratification).
///
/// # Errors
///
/// [`SamplingError::Design`] for an infeasible design,
/// [`SamplingError::Oracle`] if a probe or measurement fails, and
/// [`SamplingError::Stats`] for degenerate samples.
///
/// # Example
///
/// A noisy-but-informative proxy: ranking by it concentrates measurements
/// across the spread, and the estimate lands on the true mean:
///
/// ```
/// use mtvar_stats::sampling::ranked_set::{ranked_set_sample, RankedSetDesign};
/// use mtvar_stats::sampling::{Measurement, ProxyOracle};
///
/// let value = |p: u64| (p % 10) as f64;
/// let mut oracle = ProxyOracle::new(
///     move |p: u64| Measurement::new(value(p), 50.0),       // expensive truth
///     move |p: u64| Measurement::new(value(p) + 0.1, 1.0),  // cheap, order-true
/// );
/// let est = ranked_set_sample(&RankedSetDesign::new(1000, 4, 3, 7), &mut oracle).unwrap();
/// assert_eq!(est.cost().measurements, 12);  // r·m
/// assert_eq!(est.cost().proxy_probes, 48);  // r·m²
/// assert!(est.ci().contains(4.5)); // true mean of p % 10
/// ```
pub fn ranked_set_sample<O: PositionOracle>(
    design: &RankedSetDesign,
    oracle: &mut O,
) -> SamplingResult<Estimate, O::Error> {
    design.validate()?;
    let m = design.set_size;
    let r = design.cycles;
    let mut rng = SplitMix64::new(design.seed ^ 0xC13F_A98D_2270_6E51);
    let mut cost = SamplingCost::default();
    // by_rank[i] collects the r measurements assigned to rank i.
    let mut by_rank: Vec<Vec<f64>> = vec![Vec::with_capacity(r); m];

    for _cycle in 0..r {
        for rank in 0..m {
            let candidates = sample_without_replacement(&mut rng, 0, design.population, m);
            let mut proxied: Vec<(f64, u64)> = Vec::with_capacity(m);
            for p in candidates {
                let probe = oracle.proxy(p).map_err(SamplingError::Oracle)?;
                cost.add_proxy(&probe);
                if !probe.value.is_finite() {
                    return Err(SamplingError::Stats(crate::StatsError::NonFiniteInput));
                }
                proxied.push((probe.value, p));
            }
            // Stable sort: ties keep draw order, so the pick is
            // deterministic even for a constant (useless) proxy.
            proxied.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite proxies"));
            let chosen = proxied[rank].1;
            let measured = oracle.measure(chosen).map_err(SamplingError::Oracle)?;
            cost.add_measure(&measured);
            by_rank[rank].push(measured.value);
        }
    }

    let mut all = Summary::new();
    for rank in &by_rank {
        for &v in rank {
            all.try_push(v)?;
        }
    }
    let point = all.mean();

    if r < 2 {
        // Single cycle: no within-rank replication, fall back to the plain
        // (conservative) SRS interval over the m measurements.
        let ci = mean_confidence_interval(&all, design.level)?;
        return Ok(Estimate { point, ci, cost });
    }

    // Rank-stratified variance: Var(ȳ_rss) = (1/m²) Σᵢ sᵢ²/r.
    let mut var = 0.0;
    for rank in &by_rank {
        let s = Summary::from_slice(rank)?;
        var += s.variance() / r as f64;
    }
    var /= (m * m) as f64;
    let df = (m * (r - 1)) as u64;
    let t = critical_value(df + 1, design.level)?;
    let half = t * var.sqrt();
    let ci = ConfidenceInterval::new(point - half, point + half, design.level)?;
    Ok(Estimate { point, ci, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{Measurement, ProxyOracle};

    #[test]
    fn perfect_ranking_beats_srs_variance_on_spread_population() {
        // With an order-true proxy, the rank-stratified variance is far
        // below the plain sample variance of the same measurements.
        let mut oracle = ProxyOracle::new(
            |p: u64| Measurement::new((p % 100) as f64, 10.0),
            |p: u64| Measurement::new((p % 100) as f64, 1.0),
        );
        let d = RankedSetDesign::new(10_000, 5, 4, 13);
        let e = ranked_set_sample(&d, &mut oracle).unwrap();
        assert!(e.ci().contains(49.5) || (e.point() - 49.5).abs() < 15.0);
        assert_eq!(e.cost().measurements, 20);
        assert_eq!(e.cost().proxy_probes, 100);
        assert!((e.cost().simulated - (20.0 * 10.0 + 100.0 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn single_cycle_falls_back_to_plain_interval() {
        let mut oracle = |p: u64| Measurement::new((p % 7) as f64, 1.0);
        let d = RankedSetDesign::new(700, 4, 1, 3);
        let e = ranked_set_sample(&d, &mut oracle).unwrap();
        assert_eq!(e.cost().measurements, 4);
        assert_eq!(e.cost().proxy_probes, 16);
        assert!(e.ci().width() > 0.0 || e.point().fract() == 0.0);
    }

    #[test]
    fn reproducible_per_seed() {
        let mk = || {
            ProxyOracle::new(
                |p: u64| Measurement::new((p % 31) as f64, 5.0),
                |p: u64| Measurement::new((p % 31) as f64 * 0.5, 1.0),
            )
        };
        let d = RankedSetDesign::new(310, 3, 3, 21);
        let a = ranked_set_sample(&d, &mut mk()).unwrap();
        let b = ranked_set_sample(&d, &mut mk()).unwrap();
        assert_eq!(a, b);
        let c = ranked_set_sample(&RankedSetDesign { seed: 22, ..d }, &mut mk()).unwrap();
        assert_ne!(a.point(), c.point());
    }

    #[test]
    fn constant_proxy_is_deterministic_and_unbiased_like_srs() {
        // A useless (constant) proxy degrades RSS to SRS; it must still
        // produce a valid, deterministic estimate.
        let mk = || {
            ProxyOracle::new(
                |p: u64| Measurement::new((p % 11) as f64, 5.0),
                |_p: u64| Measurement::new(0.0, 1.0),
            )
        };
        let d = RankedSetDesign::new(1100, 3, 4, 8);
        let a = ranked_set_sample(&d, &mut mk()).unwrap();
        let b = ranked_set_sample(&d, &mut mk()).unwrap();
        assert_eq!(a, b);
        assert!(a.point() >= 0.0 && a.point() <= 10.0);
    }

    #[test]
    fn design_validation() {
        let bad = |d: RankedSetDesign| {
            matches!(
                ranked_set_sample(&d, &mut |_p: u64| Measurement::new(1.0, 1.0)),
                Err(SamplingError::Design { .. })
            )
        };
        assert!(bad(RankedSetDesign::new(0, 3, 2, 0)));
        assert!(bad(RankedSetDesign::new(100, 1, 2, 0)));
        assert!(bad(RankedSetDesign::new(100, 3, 0, 0)));
        assert!(bad(RankedSetDesign::new(2, 3, 2, 0)));
    }

    #[test]
    fn non_finite_proxy_is_a_stats_error() {
        let mut oracle = ProxyOracle::new(
            |_p: u64| Measurement::new(1.0, 1.0),
            |_p: u64| Measurement::new(f64::NAN, 1.0),
        );
        assert!(matches!(
            ranked_set_sample(&RankedSetDesign::new(100, 3, 2, 0), &mut oracle),
            Err(SamplingError::Stats(_))
        ));
    }
}
