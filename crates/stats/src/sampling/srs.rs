//! Simple-random and stratified position sampling.
//!
//! The classical baseline pair. Simple random sampling (SRS) draws `n`
//! positions uniformly without replacement and uses the plain sample mean;
//! stratified sampling first partitions the frame into `H` contiguous,
//! equal-width strata — early / middle / late execution, in the warmup
//! timeline reading — and draws equally from each, so no region of the
//! lifetime can be missed by an unlucky draw. When position values drift
//! with warmup depth (the common case: caches fill, heaps grow, lock
//! convoys form late), stratification removes the between-stratum component
//! from the estimator's variance and the CI tightens at no extra cost.
//!
//! Caveat (see `EXPERIMENTS.md`, *Sampling methodologies*): strata here are
//! **position** strata, contiguous in warmup depth. If the workload's
//! phases are not aligned with position — e.g. a phase that recurs
//! periodically — position strata are internally heterogeneous and the
//! advantage over SRS evaporates, though correctness (coverage) is
//! unaffected.

use crate::describe::Summary;
use crate::infer::{critical_value, mean_confidence_interval, ConfidenceInterval};

use super::{
    design_err, sample_without_replacement, Estimate, PositionOracle, SamplingCost, SamplingError,
    SamplingResult, SplitMix64,
};

/// Design of a simple-random (`strata == 1`) or stratified (`strata > 1`)
/// position sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PositionDesign {
    /// Size of the position frame; positions are `0..population`.
    pub population: u64,
    /// Number of positions to measure. Must be a multiple of `strata`, with
    /// at least two measurements per stratum.
    pub samples: usize,
    /// Number of contiguous equal-width strata (`1` = simple random
    /// sampling).
    pub strata: usize,
    /// Seed of the position draw; a design is reproducible per seed.
    pub seed: u64,
    /// Confidence level of the returned interval (e.g. `0.95`).
    pub level: f64,
}

impl PositionDesign {
    /// A simple-random design: `samples` positions from `0..population` at
    /// the 95% confidence level.
    pub fn simple_random(population: u64, samples: usize, seed: u64) -> Self {
        PositionDesign {
            population,
            samples,
            strata: 1,
            seed,
            level: 0.95,
        }
    }

    /// A stratified design: `samples` positions split equally over `strata`
    /// contiguous strata, at the 95% confidence level.
    pub fn stratified(population: u64, samples: usize, strata: usize, seed: u64) -> Self {
        PositionDesign {
            population,
            samples,
            strata,
            seed,
            level: 0.95,
        }
    }

    fn validate<E>(&self) -> SamplingResult<(), E> {
        if self.population == 0 {
            return design_err("position frame is empty");
        }
        if self.strata == 0 {
            return design_err("need at least one stratum");
        }
        if !self.samples.is_multiple_of(self.strata) || self.samples / self.strata < 2 {
            return design_err(format!(
                "samples ({}) must be a multiple of strata ({}) with at least 2 per stratum",
                self.samples, self.strata
            ));
        }
        if self.strata as u64 > self.population {
            return design_err(format!(
                "{} strata cannot partition a {}-position frame",
                self.strata, self.population
            ));
        }
        // Every stratum must be able to host its allocation without
        // replacement; the narrowest stratum has floor(N/H) positions.
        let narrowest = self.population / self.strata as u64;
        if (self.samples / self.strata) as u64 > narrowest {
            return design_err(format!(
                "{} samples per stratum exceed the narrowest stratum ({} positions)",
                self.samples / self.strata,
                narrowest
            ));
        }
        Ok(())
    }
}

/// Estimates the population mean by simple-random or stratified position
/// sampling, per `design`.
///
/// With `strata == 1` this is SRS: sample mean, §5.1.1-style t interval
/// with `n − 1` degrees of freedom. With `strata > 1` the frame is split
/// into contiguous equal-width strata (stratum `h` covers
/// `[h·N/H, (h+1)·N/H)`), `n/H` positions are drawn from each, and the
/// estimator is the stratum-weighted mean with standard error
/// `√(Σ_h W_h² s_h²/n_h)` and `n − H` degrees of freedom.
///
/// Both variants sample **without replacement** but apply no finite
/// population correction, which makes the intervals slightly conservative
/// (wider) at large sampling fractions — the safe direction for a
/// methodology whose failure mode is unwarranted confidence.
///
/// # Errors
///
/// [`SamplingError::Design`] for an infeasible design,
/// [`SamplingError::Oracle`] if a measurement fails, and
/// [`SamplingError::Stats`] for degenerate samples (e.g. non-finite
/// values).
///
/// # Example
///
/// A frame whose values trend upward with position — stratification
/// tightens the interval relative to SRS on the same budget:
///
/// ```
/// use mtvar_stats::sampling::srs::{position_sample, PositionDesign};
/// use mtvar_stats::sampling::Measurement;
///
/// let mut oracle = |p: u64| Measurement::new(p as f64, 1.0);
/// let srs = position_sample(&PositionDesign::simple_random(1000, 12, 5), &mut oracle).unwrap();
/// let strat =
///     position_sample(&PositionDesign::stratified(1000, 12, 4, 5), &mut oracle).unwrap();
/// assert!(strat.ci().width() < srs.ci().width());
/// assert!(strat.ci().contains(499.5)); // true frame mean
/// ```
pub fn position_sample<O: PositionOracle>(
    design: &PositionDesign,
    oracle: &mut O,
) -> SamplingResult<Estimate, O::Error> {
    design.validate()?;
    let mut rng = SplitMix64::new(design.seed ^ 0x5A3D_9E0B_11C7_F642);
    let mut cost = SamplingCost::default();

    if design.strata == 1 {
        let positions = sample_without_replacement(&mut rng, 0, design.population, design.samples);
        let mut summary = Summary::new();
        for p in positions {
            let m = oracle.measure(p).map_err(SamplingError::Oracle)?;
            cost.add_measure(&m);
            summary.try_push(m.value)?;
        }
        let ci = mean_confidence_interval(&summary, design.level)?;
        return Ok(Estimate {
            point: summary.mean(),
            ci,
            cost,
        });
    }

    let h = design.strata as u64;
    let per = design.samples / design.strata;
    let mut point = 0.0;
    let mut se2 = 0.0;
    for s in 0..h {
        let lo = s * design.population / h;
        let hi = (s + 1) * design.population / h;
        let weight = (hi - lo) as f64 / design.population as f64;
        let positions = sample_without_replacement(&mut rng, lo, hi - lo, per);
        let mut summary = Summary::new();
        for p in positions {
            let m = oracle.measure(p).map_err(SamplingError::Oracle)?;
            cost.add_measure(&m);
            summary.try_push(m.value)?;
        }
        point += weight * summary.mean();
        se2 += weight * weight * summary.variance() / per as f64;
    }
    let df = (design.samples - design.strata) as u64;
    // critical_value takes the sample count whose n−1 is the wanted df.
    let t = critical_value(df + 1, design.level)?;
    let half = t * se2.sqrt();
    let ci = ConfidenceInterval::new(point - half, point + half, design.level)?;
    Ok(Estimate { point, ci, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::Measurement;

    #[test]
    fn srs_recovers_constant_population_cost_and_count() {
        let mut oracle = |_p: u64| Measurement::new(7.0, 3.0);
        let d = PositionDesign::simple_random(100, 10, 1);
        let e = position_sample(&d, &mut oracle);
        // A constant sample has zero variance; the CI collapses to a point.
        let e = e.unwrap();
        assert_eq!(e.point(), 7.0);
        assert_eq!(e.ci().width(), 0.0);
        assert_eq!(e.cost().measurements, 10);
        assert_eq!(e.cost().proxy_probes, 0);
        assert!((e.cost().simulated - 30.0).abs() < 1e-12);
    }

    #[test]
    fn srs_is_reproducible_per_seed() {
        let mut oracle = |p: u64| Measurement::new(p as f64, 1.0);
        let d = PositionDesign::simple_random(500, 8, 11);
        let a = position_sample(&d, &mut oracle).unwrap();
        let b = position_sample(&d, &mut oracle).unwrap();
        assert_eq!(a, b);
        let other = PositionDesign { seed: 12, ..d };
        let c = position_sample(&other, &mut oracle).unwrap();
        assert_ne!(a.point(), c.point());
    }

    #[test]
    fn stratified_point_is_unbiased_on_linear_trend() {
        // Linear trend: every stratum mean is its midpoint, so the weighted
        // stratified estimate with full-stratum enumeration is exact.
        let mut oracle = |p: u64| Measurement::new(p as f64, 1.0);
        let d = PositionDesign::stratified(40, 40, 4, 3); // exhaustive draw
        let e = position_sample(&d, &mut oracle).unwrap();
        assert!((e.point() - 19.5).abs() < 1e-12);
        assert_eq!(e.cost().measurements, 40);
    }

    #[test]
    fn stratified_handles_uneven_stratum_widths() {
        // population 10, 3 strata -> widths 3, 3, 4; weights must follow.
        let mut oracle = |p: u64| Measurement::new(p as f64, 1.0);
        let d = PositionDesign::stratified(10, 6, 3, 2);
        let e = position_sample(&d, &mut oracle).unwrap();
        assert!(e.point() >= 0.0 && e.point() <= 9.0);
        assert_eq!(e.cost().measurements, 6);
    }

    #[test]
    fn design_validation() {
        let mut o = |_p: u64| Measurement::new(1.0, 1.0);
        let bad = |d: PositionDesign| {
            matches!(
                position_sample(&d, &mut |_p: u64| Measurement::new(1.0, 1.0)),
                Err(SamplingError::Design { .. })
            )
        };
        assert!(bad(PositionDesign::simple_random(0, 4, 0)));
        assert!(bad(PositionDesign::simple_random(100, 1, 0)));
        assert!(bad(PositionDesign::stratified(100, 10, 3, 0))); // 10 % 3 != 0
        assert!(bad(PositionDesign::stratified(100, 3, 3, 0))); // 1 per stratum
        assert!(bad(PositionDesign::stratified(4, 8, 8, 0))); // strata > frame
        assert!(bad(PositionDesign::simple_random(4, 8, 0))); // n > N per stratum
        assert!(bad(PositionDesign {
            strata: 0,
            ..PositionDesign::simple_random(10, 4, 0)
        }));
        // A feasible design still works with the same oracle.
        assert!(position_sample(&PositionDesign::simple_random(10, 4, 0), &mut o).is_ok());
    }

    #[test]
    fn invalid_level_is_a_stats_error() {
        let mut o = |_p: u64| Measurement::new(1.5, 1.0);
        let d = PositionDesign {
            level: 1.5,
            ..PositionDesign::simple_random(10, 4, 0)
        };
        assert!(matches!(
            position_sample(&d, &mut o),
            Err(SamplingError::Stats(_))
        ));
    }
}
