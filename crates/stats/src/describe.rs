//! Descriptive statistics: sample summaries, the coefficient of variation,
//! and the paper's *range of variability* metric.
//!
//! §3.3 of the paper defines the **coefficient of variation** as "100 times
//! the ratio of the standard deviation to the mean", and §4.2 defines the
//! **range of variability** as "the difference between the maximum and the
//! minimum runtimes, taken as a percentage of the mean". Both are implemented
//! on [`Summary`].

use crate::{Result, StatsError};

/// A numerically stable summary of a sample of `f64` observations.
///
/// Accumulates with Welford's online algorithm, so it can be built
/// incrementally via [`Summary::push`] / [`Extend`] or in one shot via
/// [`Summary::from_slice`] / [`FromIterator`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// use mtvar_stats::describe::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])?;
/// assert_eq!(s.n(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_sd() - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice of observations.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] for an empty slice and
    /// [`StatsError::NonFiniteInput`] if any value is NaN or infinite.
    pub fn from_slice(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(StatsError::EmptySample);
        }
        let mut s = Summary::new();
        for &v in values {
            s.try_push(v)?;
        }
        Ok(s)
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite; use [`Summary::try_push`] for a
    /// fallible variant.
    pub fn push(&mut self, value: f64) {
        self.try_push(value)
            .expect("Summary::push requires a finite value");
    }

    /// Adds one observation, rejecting non-finite values.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFiniteInput`] if `value` is NaN or infinite.
    pub fn try_push(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(StatsError::NonFiniteInput);
        }
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        Ok(())
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Whether the summary holds no observations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean.
    ///
    /// Returns NaN for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n − 1` denominator).
    ///
    /// Returns NaN for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population variance (`n` denominator).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_sd(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Standard error of the mean, `s / √n`.
    pub fn standard_error(&self) -> f64 {
        self.sd() / (self.n as f64).sqrt()
    }

    /// The paper's **coefficient of variation** (§3.3): `100 · s / x̄`,
    /// in percent.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::SampleTooSmall`] for fewer than two
    /// observations and [`StatsError::InvalidParameter`] if the mean is zero.
    pub fn coefficient_of_variation(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(StatsError::SampleTooSmall {
                required: 2,
                actual: self.n as usize,
            });
        }
        if self.mean == 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: 0.0,
                expected: "must be nonzero for a coefficient of variation",
            });
        }
        Ok(100.0 * self.sd() / self.mean.abs())
    }

    /// The paper's **range of variability** (§4.2): `100 · (max − min) / x̄`,
    /// in percent. "The higher the range of variability, the more likely one
    /// is to make an incorrect conclusion."
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] for an empty summary and
    /// [`StatsError::InvalidParameter`] if the mean is zero.
    pub fn range_of_variability(&self) -> Result<f64> {
        if self.n == 0 {
            return Err(StatsError::EmptySample);
        }
        if self.mean == 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: 0.0,
                expected: "must be nonzero for a range of variability",
            });
        }
        Ok(100.0 * (self.max - self.min) / self.mean.abs())
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Returns the `q`-quantile (`0 <= q <= 1`) of a sample using linear
/// interpolation between order statistics (R type-7, the common default).
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for an empty slice,
/// [`StatsError::NonFiniteInput`] for non-finite data, and
/// [`StatsError::InvalidParameter`] if `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_stats::StatsError> {
/// let med = mtvar_stats::describe::quantile(&[1.0, 2.0, 3.0, 4.0], 0.5)?;
/// assert!((med - 2.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn quantile(values: &[f64], q: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            value: q,
            expected: "must lie in [0, 1]",
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Returns the sample median (the 0.5-[`quantile`]).
///
/// # Errors
///
/// Same as [`quantile`].
pub fn median(values: &[f64]) -> Result<f64> {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert!((s.population_variance() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.standard_error() - (2.5f64 / 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_slice(&[42.0]).unwrap();
        assert_eq!(s.n(), 1);
        assert_eq!(s.mean(), 42.0);
        assert!(s.variance().is_nan());
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(matches!(
            Summary::from_slice(&[]),
            Err(StatsError::EmptySample)
        ));
        assert!(s.range_of_variability().is_err());
    }

    #[test]
    fn summary_rejects_non_finite() {
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
        assert!(Summary::from_slice(&[f64::INFINITY]).is_err());
        let mut s = Summary::new();
        assert!(s.try_push(f64::NEG_INFINITY).is_err());
        assert_eq!(s.n(), 0);
    }

    #[test]
    fn coefficient_of_variation_matches_paper_definition() {
        // CoV = 100 * sd / mean.
        let s = Summary::from_slice(&[9.0, 10.0, 11.0]).unwrap();
        let cov = s.coefficient_of_variation().unwrap();
        assert!((cov - 100.0 * 1.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn range_of_variability_matches_paper_definition() {
        let s = Summary::from_slice(&[9.0, 10.0, 11.0]).unwrap();
        let rov = s.range_of_variability().unwrap();
        assert!((rov - 100.0 * 2.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn cov_requires_two_observations_and_nonzero_mean() {
        let s = Summary::from_slice(&[5.0]).unwrap();
        assert!(matches!(
            s.coefficient_of_variation(),
            Err(StatsError::SampleTooSmall { .. })
        ));
        let z = Summary::from_slice(&[-1.0, 1.0]).unwrap();
        assert!(z.coefficient_of_variation().is_err());
    }

    #[test]
    fn merge_equals_single_pass() {
        let all = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.5];
        let whole = Summary::from_slice(&all).unwrap();
        let mut a = Summary::from_slice(&all[..4]).unwrap();
        let b = Summary::from_slice(&all[4..]).unwrap();
        a.merge(&b);
        assert_eq!(a.n(), whole.n());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0]).unwrap();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Summary = (1..=10).map(|i| i as f64).collect();
        assert_eq!(s.n(), 10);
        assert!((s.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert!((quantile(&data, 0.0).unwrap() - 10.0).abs() < 1e-12);
        assert!((quantile(&data, 1.0).unwrap() - 40.0).abs() < 1e-12);
        assert!((quantile(&data, 0.5).unwrap() - 25.0).abs() < 1e-12);
        assert!((median(&[5.0, 1.0, 3.0]).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_validates_input() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // A classic catastrophic-cancellation case for naive sum-of-squares.
        let offset = 1e9;
        let s = Summary::from_slice(&[offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0])
            .unwrap();
        assert!((s.variance() - 30.0).abs() < 1e-6);
    }
}
