//! No-op `Serialize`/`Deserialize` derive macros for the in-tree serde shim.
//!
//! Each derive expands to nothing: the annotated type compiles unchanged and
//! no trait impl is generated. That is sufficient for this workspace, where
//! serde derives are declarative markers (no code performs serialization).
//! Container/field attributes (`#[serde(...)]`) are accepted and ignored via
//! the `attributes(serde)` declaration.

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
