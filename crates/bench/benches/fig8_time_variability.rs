//! §4.3: time variability across long OLTP runs — Figure 8.
//!
//! The paper ran ten 40,000-transaction OLTP runs (a month of 2003-era
//! simulation each) and plotted cycles/transaction per 200-transaction
//! window, finding swings up to 27%. We run the same protocol at 8,000
//! transactions per run (see EXPERIMENTS.md for scaling) and print the
//! ensemble mean ± sd per window as an ASCII band chart.

use mtvar_bench::{banner, footer, seed};
use mtvar_core::metrics::windowed_ensemble;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_workloads::Benchmark;

const RUNS: usize = 10;
const TRANSACTIONS: u64 = 8_000;
const WARMUP: u64 = 500;
const WINDOW: usize = 200;

fn main() {
    let t0 = banner(
        "Figure 8",
        "Time variability for different phases of long OLTP runs",
    );

    let mut results = Vec::with_capacity(RUNS);
    for r in 0..RUNS {
        let cfg = MachineConfig::hpca2003().with_perturbation(4, r as u64);
        let mut machine = Machine::new(cfg, Benchmark::Oltp.workload(16, seed())).expect("machine");
        machine.run_transactions(WARMUP).expect("warmup");
        results.push(machine.run_transactions(TRANSACTIONS).expect("measure"));
    }

    let ensemble = windowed_ensemble(&results, WINDOW).expect("ensemble");
    let means: Vec<f64> = ensemble.iter().map(|s| s.mean()).collect();
    let grand = means.iter().sum::<f64>() / means.len() as f64;
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    println!("  #txns    cycles/txn  mean ± sd      (column chart of the ensemble mean)");
    let (cmin, cmax) = (lo * 0.95, hi * 1.05);
    for (w, s) in ensemble.iter().enumerate() {
        let frac = (s.mean() - cmin) / (cmax - cmin);
        let col = (frac * 48.0).round().max(0.0) as usize;
        println!(
            "  {:>6}   {:>9.1} ± {:>6.1}   |{}*",
            (w + 1) * WINDOW,
            s.mean(),
            s.sd(),
            " ".repeat(col)
        );
    }
    println!(
        "  window means swing {:.1}% of the grand mean (paper: up to 27%)",
        100.0 * (hi - lo) / grand
    );
    footer(t0);
}
