//! Criterion micro-benchmarks of the simulator itself: how fast the
//! substrate executes, which bounds how many perturbed runs a methodology
//! user can afford (the paper's §5.2 "fixed simulation budget" trade-off).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mtvar_sim::config::MachineConfig;
use mtvar_sim::ids::{BlockAddr, CpuId};
use mtvar_sim::machine::Machine;
use mtvar_sim::mem::{MemoryConfig, MemorySystem, Perturbation};
use mtvar_sim::ops::AccessKind;
use mtvar_sim::proc::predictor::Yags;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_workloads::Benchmark;

fn bench_oltp_simple(c: &mut Criterion) {
    c.bench_function("machine/oltp_100txn_simple_4cpu", |b| {
        b.iter_batched(
            || {
                Machine::new(
                    MachineConfig::hpca2003().with_cpus(4).with_perturbation(4, 1),
                    Benchmark::Oltp.workload(4, 42),
                )
                .expect("machine")
            },
            |mut m| m.run_transactions(100).expect("run"),
            BatchSize::SmallInput,
        );
    });
}

fn bench_oltp_ooo(c: &mut Criterion) {
    c.bench_function("machine/oltp_100txn_ooo_4cpu", |b| {
        b.iter_batched(
            || {
                Machine::new(
                    MachineConfig::hpca2003()
                        .with_cpus(4)
                        .with_processor(ProcessorConfig::OutOfOrder(OooConfig::tfsim_default()))
                        .with_perturbation(4, 1),
                    Benchmark::Oltp.workload(4, 42),
                )
                .expect("machine")
            },
            |mut m| m.run_transactions(100).expect("run"),
            BatchSize::SmallInput,
        );
    });
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("mem/coherent_access_mix", |b| {
        let mut sys =
            MemorySystem::new(MemoryConfig::hpca2003(), 4, Perturbation::new(4, 1)).expect("mem");
        let mut t = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            t += 10;
            let cpu = CpuId((i % 4) as u32);
            let kind = if i.is_multiple_of(5) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            sys.access(cpu, BlockAddr(i * 97 % 10_000), kind, t)
        });
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("predictor/yags_update", |b| {
        let mut yags = Yags::tfsim_default();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            yags.update(i % 509, !i.is_multiple_of(3))
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_oltp_simple, bench_oltp_ooo, bench_memory_system, bench_predictor
}
criterion_main!(benches);
