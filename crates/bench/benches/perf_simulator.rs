//! Micro-benchmarks of the simulator itself: how fast the substrate
//! executes, which bounds how many perturbed runs a methodology user can
//! afford (the paper's §5.2 "fixed simulation budget" trade-off).
//!
//! Formerly a `criterion` harness; rewritten as a self-contained timing loop
//! (median of repeated batches) so the workspace builds with no network
//! access.

use std::time::{Duration, Instant};

use mtvar_sim::config::MachineConfig;
use mtvar_sim::ids::{BlockAddr, CpuId};
use mtvar_sim::machine::Machine;
use mtvar_sim::mem::{MemoryConfig, MemorySystem, Perturbation};
use mtvar_sim::ops::AccessKind;
use mtvar_sim::proc::predictor::Yags;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_workloads::Benchmark;

/// Times `iters` invocations of `f` per sample, collects `samples` samples,
/// and reports the median per-invocation time.
fn bench<T>(name: &str, samples: usize, iters: usize, mut f: impl FnMut() -> T) {
    let mut per_iter: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t0.elapsed() / iters as u32
        })
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<40} {median:>12.2?}/iter  (median of {samples} x {iters})");
}

fn bench_oltp_simple() {
    bench("machine/oltp_100txn_simple_4cpu", 10, 1, || {
        let mut m = Machine::new(
            MachineConfig::hpca2003()
                .with_cpus(4)
                .with_perturbation(4, 1),
            Benchmark::Oltp.workload(4, 42),
        )
        .expect("machine");
        m.run_transactions(100).expect("run")
    });
}

fn bench_oltp_ooo() {
    bench("machine/oltp_100txn_ooo_4cpu", 10, 1, || {
        let mut m = Machine::new(
            MachineConfig::hpca2003()
                .with_cpus(4)
                .with_processor(ProcessorConfig::OutOfOrder(OooConfig::tfsim_default()))
                .with_perturbation(4, 1),
            Benchmark::Oltp.workload(4, 42),
        )
        .expect("machine");
        m.run_transactions(100).expect("run")
    });
}

fn bench_oltp_16cpu() {
    // The kernel overhaul's reference scenario (see `BENCH_kernel.json`):
    // all 16 paper CPUs, so the event queue and snoop filter carry the
    // full-width load rather than the 4-CPU microcosm above.
    bench("machine/oltp_100txn_simple_16cpu", 10, 1, || {
        let mut m = Machine::new(
            MachineConfig::hpca2003().with_perturbation(4, 1),
            Benchmark::Oltp.workload(16, 42),
        )
        .expect("machine");
        m.run_transactions(100).expect("run")
    });
}

fn bench_memory_system() {
    let mut sys =
        MemorySystem::new(MemoryConfig::hpca2003(), 4, Perturbation::new(4, 1)).expect("mem");
    let mut t = 0u64;
    let mut i = 0u64;
    bench("mem/coherent_access_mix", 10, 100_000, || {
        i = i.wrapping_add(1);
        t += 10;
        let cpu = CpuId((i % 4) as u32);
        let kind = if i.is_multiple_of(5) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        sys.access(cpu, BlockAddr(i * 97 % 10_000), kind, t)
    });
}

fn bench_predictor() {
    let mut yags = Yags::tfsim_default();
    let mut i = 0u32;
    bench("predictor/yags_update", 10, 1_000_000, || {
        i = i.wrapping_add(1);
        yags.update(i % 509, !i.is_multiple_of(3))
    });
}

fn main() {
    bench_oltp_simple();
    bench_oltp_ooo();
    bench_oltp_16cpu();
    bench_memory_system();
    bench_predictor();
}
