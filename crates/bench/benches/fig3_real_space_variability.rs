//! §2.2: OLTP space variability on a *real* system — Figure 3.
//!
//! Five runs of the (simulated) E5000 starting from the same initial
//! conditions, each with a different environmental-noise seed — the stand-in
//! for rebooting a physical machine and rerunning. Per observation interval,
//! prints the cross-run mean ± one standard deviation, the paper's error-bar
//! plot. The paper's reading: significant spread at 1 s and even 10 s
//! (>3,000 transactions per interval), largely gone at 60 s.

use mtvar_bench::{banner, footer, seed};
use mtvar_core::metrics::time_windows;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::stats::RunResult;
use mtvar_stats::describe::Summary;
use mtvar_workloads::Benchmark;

const SCALED_SECOND: u64 = 200_000;
const SECONDS: u64 = 360;
const RUNS: usize = 5;

fn run_noisy(noise_seed: u64) -> RunResult {
    let cfg = MachineConfig::e5000_like(noise_seed);
    let mut machine = Machine::new(cfg, Benchmark::Oltp.workload(12, seed())).expect("machine");
    machine.run_transactions(500).expect("warmup");
    machine.run_span(SECONDS * SCALED_SECOND).expect("measure")
}

fn main() {
    let t0 = banner(
        "Figure 3",
        "OLTP space variability in a (simulated) real system, five runs",
    );

    let runs: Vec<RunResult> = (0..RUNS).map(|r| run_noisy(100 + r as u64)).collect();
    for r in &runs {
        println!("  run committed {} transactions", r.transactions);
    }

    for interval_s in [1u64, 10, 60] {
        // Per run, the series of per-window cycles/txn; then cross-run
        // spread per window index.
        let series: Vec<Vec<f64>> = runs
            .iter()
            .map(|r| {
                time_windows(r, interval_s * SCALED_SECOND)
                    .expect("windows")
                    .into_iter()
                    .map(|w| w.unwrap_or(f64::NAN))
                    .collect()
            })
            .collect();
        let len = series.iter().map(Vec::len).min().expect("runs present");
        let mut cross_sd_pct = Vec::new();
        for w in 0..len {
            let col: Vec<f64> = series
                .iter()
                .map(|s| s[w])
                .filter(|v| v.is_finite())
                .collect();
            if col.len() == RUNS {
                let s = Summary::from_slice(&col).expect("summary");
                cross_sd_pct.push(100.0 * s.sd() / s.mean());
            }
        }
        let avg = cross_sd_pct.iter().sum::<f64>() / cross_sd_pct.len() as f64;
        let max = cross_sd_pct
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {interval_s:>3}s intervals: cross-run sd averages {avg:>5.2}% of the mean per window (max {max:>5.2}%) over {} windows",
            cross_sd_pct.len()
        );
    }
    println!("  (paper: clear error bars at 1 s and 10 s, greatly reduced at 60 s)");
    footer(t0);
}
