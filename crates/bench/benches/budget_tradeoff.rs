//! §5.2 future work, implemented: splitting a fixed simulation budget
//! between run count and run length.
//!
//! Pilot-measures OLTP's CoV at a few run lengths (a mini Table 4), fits the
//! power-law decay, and asks the planner how a fixed transaction budget
//! should be split — then validates the chosen split empirically.

use mtvar_bench::{banner, footer, paper_plan, seed};
use mtvar_core::budget::{plan_budget, CovModel};
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::report::Table;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

const PILOT_RUNS: usize = 10;
const PILOT_LENGTHS: [u64; 3] = [100, 200, 400];
const WARMUP: u64 = 1000;

fn main() {
    let t0 = banner(
        "Budget trade-off (§5.2 future work)",
        "How should a fixed simulation budget be split between runs and run length?",
    );

    // 1. Pilot: measure CoV at a few lengths.
    let mut pilot = Vec::new();
    println!("  pilot measurements ({PILOT_RUNS} runs each):");
    for len in PILOT_LENGTHS {
        let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
        let plan = paper_plan(len).with_runs(PILOT_RUNS).with_warmup(WARMUP);
        let space =
            run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan).expect("simulation");
        let rep = VariabilityReport::from_runtimes(&space.runtimes()).expect("report");
        println!("    {len:>4}-txn runs: CoV {:.2}%", rep.cov_percent);
        pilot.push((len, rep.cov_percent));
    }

    // 2. Fit the decay law and plan several budgets.
    let model = CovModel::fit(&pilot).expect("fit");
    println!(
        "  fitted CoV(L) = {:.1} · L^(-{:.2})  (paper's Table 4 data gives b ≈ 0.74)",
        model.cov_percent_at(1),
        model.exponent()
    );

    let mut table = Table::new("\nRecommended splits (95% confidence, runs >= 100 txns each)");
    table.set_headers(vec![
        "budget (txns)",
        "runs",
        "txns/run",
        "predicted CoV",
        "predicted CI halfwidth",
    ]);
    for budget in [2_000u64, 4_000, 8_000, 16_000] {
        let plan = plan_budget(&model, budget, 100, 0.95).expect("plan");
        table.add_row(vec![
            budget.to_string(),
            plan.runs.to_string(),
            plan.transactions_per_run.to_string(),
            format!("{:.2}%", plan.expected_cov_percent),
            format!("±{:.2}%", plan.ci_halfwidth_percent),
        ]);
    }
    println!("{table}");

    // 3. Validate the 4,000-transaction plan empirically.
    let chosen = plan_budget(&model, 4_000, 100, 0.95).expect("plan");
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 777);
    let plan = paper_plan(chosen.transactions_per_run)
        .with_runs(chosen.runs)
        .with_warmup(WARMUP)
        .with_base_seed(500);
    let space =
        run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan).expect("simulation");
    let rep = VariabilityReport::from_runtimes(&space.runtimes()).expect("report");
    println!(
        "  validation at budget 4,000: measured CoV {:.2}% vs predicted {:.2}% \
         (power-law extrapolation beyond the pilot lengths is optimistic when the \
         decay flattens — re-fit with a longer pilot before trusting long-run plans)",
        rep.cov_percent, chosen.expected_cov_percent
    );
    footer(t0);
}
