//! Ablation: coherence-protocol choice.
//!
//! The paper's memory simulator "supports a broad range of coherence
//! protocols" (§3.2.3) but evaluates with MOSI. This ablation runs the OLTP
//! experiment under MOSI, MESI and MOESI and reports performance, coherence
//! traffic and whether the *variability conclusions* are protocol-robust —
//! the kind of check §5.2 suggests when "the simulated system configuration
//! has an impact on variability".

use mtvar_bench::{banner, footer, paper_plan, runs, seed};
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::report::Table;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::mem::CoherenceProtocol;
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 200;
const WARMUP: u64 = 1000;

fn main() {
    let t0 = banner(
        "Ablation",
        "Coherence protocol (MOSI vs MESI vs MOESI) on OLTP",
    );

    let mut table = Table::new(&format!(
        "Protocol ablation (OLTP, {TRANSACTIONS} txns, {} perturbed runs)",
        runs()
    ));
    table.set_headers(vec![
        "protocol",
        "mean cyc/txn",
        "CoV",
        "c2c transfers",
        "writebacks",
        "bus upgrades",
        "silent upgrades",
    ]);
    for (label, protocol) in [
        ("MOSI (paper)", CoherenceProtocol::Mosi),
        ("MESI", CoherenceProtocol::Mesi),
        ("MOESI", CoherenceProtocol::Moesi),
    ] {
        let cfg = MachineConfig::hpca2003()
            .with_protocol(protocol)
            .with_perturbation(4, 0);
        let plan = paper_plan(TRANSACTIONS)
            .with_runs(runs())
            .with_warmup(WARMUP);
        let space =
            run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan).expect("simulation");
        let rep = VariabilityReport::from_runtimes(&space.runtimes()).expect("report");
        // Coherence traffic from one deterministic reference run.
        let mut m = Machine::new(
            MachineConfig::hpca2003().with_protocol(protocol),
            Benchmark::Oltp.workload(16, seed()),
        )
        .expect("machine");
        m.run_transactions(WARMUP).expect("warmup");
        let r = m.run_transactions(TRANSACTIONS).expect("run");
        table.add_row(vec![
            label.to_owned(),
            format!("{:.1}", rep.mean),
            format!("{:.2}%", rep.cov_percent),
            r.mem.cache_to_cache.to_string(),
            r.mem.writebacks.to_string(),
            r.mem.upgrades.to_string(),
            r.mem.silent_upgrades.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "  (the methodology's point survives the protocol choice: variability is a workload \
         property, not a protocol artifact)"
    );
    footer(t0);
}
