//! §5.1.2: hypothesis testing — Figure 11.
//!
//! Runs the paper's t-test on the ROB experiment (H₀: µ₃₂ = µ₆₄ against the
//! alternative µ₃₂ > µ₆₄) and renders the acceptance/rejection regions of the
//! t distribution with the computed statistic placed on the axis — the
//! textual form of Figure 11.

use mtvar_bench::{banner, footer, paper_plan, runs, seed};
use mtvar_core::compare::Comparison;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_stats::dist::{ContinuousDistribution, StudentT};
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 50;
const WARMUP: u64 = 400;

fn rob_runs(rob: u32) -> Vec<f64> {
    let cfg = MachineConfig::hpca2003()
        .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(rob)))
        .with_perturbation(4, 0);
    let plan = paper_plan(TRANSACTIONS)
        .with_runs(runs())
        .with_warmup(WARMUP);
    run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan)
        .expect("simulation")
        .runtimes()
}

fn main() {
    let t0 = banner(
        "Figure 11",
        "Acceptance and rejection regions for the t-test (ROB 32 vs 64)",
    );

    let r32 = rob_runs(32);
    let r64 = rob_runs(64);
    let cmp = Comparison::from_runs("32-entry", &r32, "64-entry", &r64).expect("comparison");
    let test = cmp.t_test().expect("t-test");
    let dist = StudentT::new(test.df()).expect("df > 0");

    println!(
        "  H0: mu_32 = mu_64   vs   H1: mu_32 > mu_64   (pooled, df = {:.0})",
        test.df()
    );
    println!(
        "  test statistic t = {:.3}; one-sided p = {:.4}",
        test.statistic(),
        test.p_one_sided()
    );

    println!("  significance   critical t   region of the statistic");
    for alpha in [0.10, 0.05, 0.025, 0.01, 0.005] {
        let crit = dist.quantile(1.0 - alpha).expect("quantile");
        let verdict = if test.statistic() > crit {
            "REJECT H0 (conclusion safe at this level)"
        } else {
            "accept H0 (cannot conclude)"
        };
        println!("  {:>10.3}   {crit:>10.3}   {verdict}", alpha);
    }

    // ASCII sketch of the density with the critical value at alpha = 0.05.
    let crit = dist.quantile(0.95).expect("quantile");
    println!("\n  t-distribution density (df = {:.0}):", test.df());
    let (lo, hi, cols) = (-4.0f64, 6.0f64, 61usize);
    let peak = dist.pdf(0.0);
    for row in (1..=8).rev() {
        let level = peak * row as f64 / 8.0;
        let mut line = String::with_capacity(cols);
        for c in 0..cols {
            let x = lo + (hi - lo) * c as f64 / (cols - 1) as f64;
            line.push(if dist.pdf(x) >= level { '#' } else { ' ' });
        }
        println!("  |{line}");
    }
    let mut axis = String::with_capacity(cols);
    for c in 0..cols {
        let x = lo + (hi - lo) * c as f64 / (cols - 1) as f64;
        let step = (hi - lo) / (cols - 1) as f64;
        if (x - crit).abs() < step / 2.0 {
            axis.push('C'); // critical value
        } else if (x - test.statistic()).abs() < step / 2.0 {
            axis.push('T'); // observed statistic
        } else if x.abs() < step / 2.0 {
            axis.push('0');
        } else {
            axis.push('-');
        }
    }
    println!("  +{axis}");
    println!("   C = critical t at alpha 0.05 ({crit:.2}); T = observed statistic ({:.2}); rejection region is right of C", test.statistic());
    footer(t0);
}
