//! §2.2: OLTP time variability on a *real* system — Figure 2.
//!
//! The paper measured a 12-processor Sun E5000 with hardware counters: one
//! ten-minute OLTP run, cycles/transaction averaged over 1-, 10- and
//! 60-second observation intervals. At 1 s the rate varies by nearly 3×;
//! at 60 s it is almost flat.
//!
//! We stand the E5000 in with the simulator's environmental-noise model
//! (timer interrupts + background-activity bursts) and a scaled second:
//! **1 scaled second = 200,000 cycles** (see EXPERIMENTS.md), running 360
//! scaled seconds.

use mtvar_bench::{banner, footer, seed};
use mtvar_core::metrics::time_windows;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::stats::RunResult;
use mtvar_workloads::Benchmark;

/// One scaled "second" of the real-machine experiments, in cycles.
const SCALED_SECOND: u64 = 200_000;
const SECONDS: u64 = 360;

fn run_noisy(noise_seed: u64) -> RunResult {
    let cfg = MachineConfig::e5000_like(noise_seed);
    let mut machine = Machine::new(cfg, Benchmark::Oltp.workload(12, seed())).expect("machine");
    machine.run_transactions(500).expect("warmup");
    machine.run_span(SECONDS * SCALED_SECOND).expect("measure")
}

fn print_interval(run: &RunResult, label: &str, interval_s: u64) {
    let windows = time_windows(run, interval_s * SCALED_SECOND).expect("windows");
    let vals: Vec<f64> = windows.iter().filter_map(|w| *w).collect();
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    println!(
        "  {label:>4} intervals: {:>3} windows, cycles/txn mean {:>7.1}, min {:>7.1}, max {:>7.1}, max/min = {:.2}x",
        vals.len(),
        mean,
        lo,
        hi,
        hi / lo
    );
    // Sparkline of the series (time axis left to right).
    let cols = vals.len().min(72);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let mut line = String::new();
    for c in 0..cols {
        let v = vals[c * vals.len() / cols];
        let g = (((v - lo) / (hi - lo + 1e-12)) * 7.0).round() as usize;
        line.push(glyphs[g.min(7)]);
    }
    println!("        [{line}]");
}

fn main() {
    let t0 = banner(
        "Figure 2",
        "OLTP time variability in a (simulated) real system, one run",
    );
    let run = run_noisy(1);
    println!(
        "  one {SECONDS}-scaled-second run on the E5000-like machine: {} transactions",
        run.transactions
    );
    print_interval(&run, "1s", 1);
    print_interval(&run, "10s", 10);
    print_interval(&run, "60s", 60);
    println!("  (paper: ~3x swing at 1 s, nearly flat at 60 s)");
    footer(t0);
}
