//! Experiment 2 (§4.1.2): reorder-buffer size — Figure 6 and Table 2.
//!
//! Twenty 50-transaction OLTP runs with the TFsim-like out-of-order model,
//! ROB ∈ {16, 32, 64} entries. Reports Figure 6 (avg/max/min cycles per
//! transaction) and Table 2 (pairwise WCR).
//!
//! Paper reference — Table 2: 16 vs 32 18%, 16 vs 64 7.5%, 32 vs 64 26%
//! (larger ROB superior each time).

use mtvar_bench::{banner, fmt_sample, footer, paper_plan, runs, seed};
use mtvar_core::report::Table;
use mtvar_core::runspace::run_space;
use mtvar_core::wcr::wrong_conclusion_ratio;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 50;
const WARMUP: u64 = 400;

fn main() {
    let t0 = banner(
        "Figure 6 / Table 2",
        "OLTP performance for different reorder buffer sizes",
    );

    let mut samples: Vec<(String, Vec<f64>)> = Vec::new();
    for rob in [16u32, 32, 64] {
        let cfg = MachineConfig::hpca2003()
            .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(rob)))
            .with_perturbation(4, 0);
        let plan = paper_plan(TRANSACTIONS)
            .with_runs(runs())
            .with_warmup(WARMUP);
        let space =
            run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan).expect("simulation");
        println!(
            "  ROB {rob:>2} entries: cycles/txn {}",
            fmt_sample(&space.runtimes())
        );
        samples.push((format!("{rob}-entry"), space.runtimes()));
    }

    let mut table = Table::new("\nTable 2. Summary of Experiment 2");
    table.set_headers(vec![
        "Configurations Compared",
        "Superior (measured)",
        "WCR measured",
        "WCR paper",
    ]);
    let paper = ["18%", "7.5%", "26%"];
    for (k, (i, j)) in [(0usize, 1usize), (0, 2), (1, 2)].iter().enumerate() {
        let w = wrong_conclusion_ratio(&samples[*i].1, &samples[*j].1).expect("wcr");
        let superior = match w.superior {
            mtvar_core::wcr::Superior::First => &samples[*i].0,
            mtvar_core::wcr::Superior::Second => &samples[*j].0,
        };
        table.add_row(vec![
            format!("{} vs {} ROB", samples[*i].0, samples[*j].0),
            superior.clone(),
            format!("{:.1}%", w.wcr_percent),
            paper[k].to_owned(),
        ]);
    }
    println!("{table}");
    footer(t0);
}
