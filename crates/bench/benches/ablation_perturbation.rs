//! §3.3 sensitivity study: does the perturbation *magnitude* matter?
//!
//! The paper injects a uniform 0–4 ns increment on every L2 miss and reports
//! that shrinking it to 0–1 ns leaves the coefficient of variation
//! essentially unchanged — the perturbation only *exposes* the workload's
//! inherent variability, it does not create it. This ablation sweeps the
//! magnitude (0, 1, 2, 4, 16 ns) on 200-transaction OLTP runs.

use mtvar_bench::{banner, footer, paper_plan, runs, seed};
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::report::Table;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 200;
const WARMUP: u64 = 1000;

fn main() {
    let t0 = banner(
        "Ablation (§3.3)",
        "Sensitivity of measured variability to the perturbation magnitude",
    );

    let mut table = Table::new("Perturbation magnitude vs observed OLTP space variability");
    table.set_headers(vec![
        "max perturbation (ns)",
        "mean cycles/txn",
        "CoV",
        "range of variability",
    ]);
    for max_ns in [0u64, 1, 2, 4, 16] {
        let cfg = MachineConfig::hpca2003().with_perturbation(max_ns, 0);
        let plan = paper_plan(TRANSACTIONS)
            .with_runs(runs())
            .with_warmup(WARMUP);
        let space =
            run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan).expect("simulation");
        let rt = space.runtimes();
        if max_ns == 0 {
            // Without perturbation the simulator is deterministic: all runs
            // identical, CoV exactly zero.
            let identical = rt.iter().all(|&r| (r - rt[0]).abs() < 1e-9);
            table.add_row(vec![
                "0 (deterministic)".into(),
                format!("{:.1}", rt[0]),
                if identical {
                    "0.00% (all runs identical)".into()
                } else {
                    "NONZERO (bug!)".into()
                },
                "0.00%".into(),
            ]);
            continue;
        }
        let rep = VariabilityReport::from_runtimes(&rt).expect("report");
        table.add_row(vec![
            max_ns.to_string(),
            format!("{:.1}", rep.mean),
            format!("{:.2}%", rep.cov_percent),
            format!("{:.2}%", rep.range_percent),
        ]);
    }
    println!("{table}");
    println!("  (paper: CoV not significantly affected between 0-1 ns and 0-4 ns)");
    footer(t0);
}
