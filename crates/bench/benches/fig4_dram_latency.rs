//! §2.3: cycles per transaction vs DRAM latency — Figure 4.
//!
//! Eleven *single, deterministic* 500-transaction OLTP runs from the same
//! checkpoint, differing only in DRAM access latency (80–90 ns), no
//! perturbation. The paper's point: the obvious expectation is a gentle
//! monotone increase, but tiny memory-timing changes flip OS scheduling
//! decisions, so the curve scatters — "the 84-ns configuration was 7% faster
//! than the 81-ns configuration".

use mtvar_bench::{banner, footer, seed};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 500;
const WARMUP: u64 = 1000;

fn main() {
    let t0 = banner(
        "Figure 4",
        "Performance of 500-transaction OLTP runs with different DRAM latencies",
    );

    // A common checkpoint: warm the baseline machine, then restart the sweep
    // from identical initial conditions per latency (the config change makes
    // each run deterministic-but-different, like the paper's Simics runs).
    let mut results = Vec::new();
    for latency in 80u64..=90 {
        let cfg = MachineConfig::hpca2003().with_dram_latency_ns(latency);
        let mut machine = Machine::new(cfg, Benchmark::Oltp.workload(16, seed())).expect("machine");
        machine.run_transactions(WARMUP).expect("warmup");
        let run = machine.run_transactions(TRANSACTIONS).expect("measure");
        results.push((latency, run.cycles_per_transaction()));
    }

    println!("  DRAM ns   cycles/txn   (bar = deviation from 80 ns baseline)");
    let base = results[0].1;
    for &(latency, cpt) in &results {
        let delta = 100.0 * (cpt - base) / base;
        let bars = (delta.abs() * 4.0).round() as usize;
        let bar: String =
            std::iter::repeat_n(if delta >= 0.0 { '+' } else { '-' }, bars.min(60)).collect();
        println!("  {latency:>5}     {cpt:>9.1}   {delta:+6.2}% {bar}");
    }

    // Quantify non-monotonicity: count adjacent inversions and the largest
    // "faster with slower memory" pair, the paper's 84-vs-81 observation.
    let mut inversions = 0;
    for w in results.windows(2) {
        if w[1].1 < w[0].1 {
            inversions += 1;
        }
    }
    let mut best: Option<(u64, u64, f64)> = None;
    for i in 0..results.len() {
        for j in (i + 1)..results.len() {
            let speedup = 100.0 * (results[i].1 - results[j].1) / results[i].1;
            if speedup > best.map_or(0.0, |b| b.2) {
                best = Some((results[i].0, results[j].0, speedup));
            }
        }
    }
    println!("  adjacent inversions (slower memory, faster run): {inversions} of 10");
    if let Some((slow_lat, fast_lat, speedup)) = best {
        println!(
            "  largest anomaly: the {fast_lat} ns configuration beats the {slow_lat} ns one by {speedup:.1}% \
             (paper: 84 ns beat 81 ns by 7%)"
        );
    }
    footer(t0);
}
