//! §2.1: OS-scheduling divergence between two runs — Figure 1.
//!
//! Two deterministic OLTP runs start from identical initial conditions; Run 1
//! simulates 2-way-associative L2 caches, Run 2 simulates 4-way. The paper's
//! observation: the OS schedules the *same* threads for about the first
//! million cycles, then the tiny timing difference snowballs and the two
//! schedules diverge completely.

use mtvar_bench::{banner, footer, seed};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::sched::SchedEventKind;
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 400;

fn dispatches(ways: u32) -> Vec<(u64, u32, u32)> {
    let cfg = MachineConfig::hpca2003()
        .with_l2_associativity(ways)
        .with_sched_log();
    let mut machine = Machine::new(cfg, Benchmark::Oltp.workload(16, seed())).expect("machine");
    let run = machine.run_transactions(TRANSACTIONS).expect("run");
    run.sched_events
        .iter()
        .filter(|e| e.kind == SchedEventKind::Dispatch)
        .map(|e| (e.cycle, e.cpu.0, e.thread.0))
        .collect()
}

fn main() {
    let t0 = banner(
        "Figure 1",
        "Differences in OS-scheduled threads between two short simulation runs",
    );

    let run1 = dispatches(2);
    let run2 = dispatches(4);
    println!(
        "  run 1 (2-way L2): {} dispatch events; run 2 (4-way L2): {}",
        run1.len(),
        run2.len()
    );

    // Find the first dispatch decision where the runs disagree on which
    // thread goes where.
    let mut divergence: Option<usize> = None;
    for (i, (a, b)) in run1.iter().zip(run2.iter()).enumerate() {
        if a.1 != b.1 || a.2 != b.2 {
            divergence = Some(i);
            break;
        }
    }

    match divergence {
        Some(i) => {
            let cycle = run1[i].0.min(run2[i].0);
            println!(
                "  identical scheduling for the first {i} dispatches; divergence at ~cycle {cycle} \
                 (paper: ~1,060,000 cycles)"
            );
            // Show a window of the two schedules around the divergence, the
            // textual equivalent of Figure 1's scatter.
            println!("  idx   run1 (cycle cpu<-thread)     run2 (cycle cpu<-thread)");
            let lo = i.saturating_sub(3);
            for k in lo..(i + 7).min(run1.len().min(run2.len())) {
                let (c1, p1, t1) = run1[k];
                let (c2, p2, t2) = run2[k];
                let marker = if k >= i { " <-- diverged" } else { "" };
                println!(
                    "  {k:>4}  {c1:>9} cpu{p1:<2}<-t{t1:<4}     {c2:>9} cpu{p2:<2}<-t{t2:<4}{marker}"
                );
            }
            // How different are the schedules after divergence? Compare the
            // multiset overlap of (cpu, thread) pairs in the tail.
            let tail1: std::collections::HashSet<_> =
                run1[i..].iter().map(|&(_, p, t)| (p, t)).collect();
            let tail2: std::collections::HashSet<_> =
                run2[i..].iter().map(|&(_, p, t)| (p, t)).collect();
            let same = tail1.intersection(&tail2).count();
            println!(
                "  after divergence: {} distinct (cpu, thread) placements in run 1, {} in run 2, {} shared",
                tail1.len(),
                tail2.len(),
                same
            );
        }
        None => println!(
            "  no divergence within {} dispatches — lengthen the run",
            run1.len().min(run2.len())
        ),
    }
    footer(t0);
}
