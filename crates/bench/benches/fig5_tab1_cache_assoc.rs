//! Experiment 1 (§4.1.1): L2 cache associativity — Figure 5 and Table 1.
//!
//! Twenty 200-transaction OLTP runs with the simple processor model, L2
//! associativity ∈ {direct-mapped, 2-way, 4-way}, sizes and latencies fixed.
//! Reports Figure 5 (avg/max/min cycles per transaction) and Table 1 (the
//! pairwise wrong-conclusion ratio).
//!
//! Paper reference — Table 1: DM vs 2-way 24%, DM vs 4-way 10%,
//! 2-way vs 4-way 31% (superior configuration in parentheses each time).

use mtvar_bench::{
    banner, executor, fmt_sample, footer, paper_plan, report_violations, runs, seed,
};
use mtvar_core::report::Table;
use mtvar_core::wcr::wrong_conclusion_ratio;
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 200;
const WARMUP: u64 = 1000;

fn main() {
    let t0 = banner(
        "Figure 5 / Table 1",
        "OLTP performance for different L2 cache associativities",
    );

    let exec = executor();
    let mut samples: Vec<(String, Vec<f64>)> = Vec::new();
    for ways in [1u32, 2, 4] {
        let cfg = MachineConfig::hpca2003()
            .with_l2_associativity(ways)
            .with_perturbation(4, 0);
        let plan = paper_plan(TRANSACTIONS)
            .with_runs(runs())
            .with_warmup(WARMUP);
        let space = exec
            .run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan)
            .expect("simulation");
        let label = match ways {
            1 => "direct-mapped".to_owned(),
            w => format!("{w}-way"),
        };
        report_violations(&label, &space);
        println!(
            "  L2 {label:>13}: cycles/txn {}",
            fmt_sample(&space.runtimes())
        );
        samples.push((label, space.runtimes()));
    }

    let mut table = Table::new("\nTable 1. Summary of Experiment 1");
    table.set_headers(vec![
        "Configurations Compared",
        "Superior (measured)",
        "WCR measured",
        "WCR paper",
    ]);
    let paper = ["24%", "10%", "31%"];
    for (k, (i, j)) in [(0usize, 1usize), (0, 2), (1, 2)].iter().enumerate() {
        let w = wrong_conclusion_ratio(&samples[*i].1, &samples[*j].1).expect("wcr");
        let superior = match w.superior {
            mtvar_core::wcr::Superior::First => &samples[*i].0,
            mtvar_core::wcr::Superior::Second => &samples[*j].0,
        };
        table.add_row(vec![
            format!("{} vs {}", samples[*i].0, samples[*j].0),
            superior.clone(),
            format!("{:.1}%", w.wcr_percent),
            paper[k].to_owned(),
        ]);
    }
    println!("{table}");
    footer(t0);
}
