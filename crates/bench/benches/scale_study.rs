//! Scaling study: the machine past the paper's 16 processors.
//!
//! The paper's snooping bus stops at 16 CPUs; the bitset snoop filter and
//! the directory transport carry the same protocols to 64 nodes. This bench
//! quantifies what the transports cost and whether the paper's methodology
//! conclusions survive the scale-up:
//!
//! 1. **Probe traffic** — measured coherence probes per transport (filtered
//!    snooping vs directory) against the analytic broadcast-snooping
//!    equivalent `(cpus − 1) × (misses + upgrades)`, at 16 and 64 CPUs.
//! 2. **WCR at 64 CPUs** — Experiment 1's L2-associativity comparison
//!    re-run on a 64-CPU directory machine: perturbed run spaces per
//!    associativity and the pairwise wrong-conclusion ratio, showing that
//!    single-run comparisons stay unreliable at scale.

use mtvar_bench::{
    banner, executor, fmt_sample, footer, paper_plan, report_violations, runs, seed,
};
use mtvar_core::report::Table;
use mtvar_core::wcr::wrong_conclusion_ratio;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 60;
const WARMUP: u64 = 100;

/// One deterministic OLTP reference run; returns (l2 misses, upgrades,
/// measured scan probes, measured invalidate probes).
fn probe_counts(cfg: MachineConfig, cpus: usize) -> (u64, u64, u64, u64) {
    let mut m =
        Machine::new(cfg, Benchmark::Oltp.workload(cpus, seed())).expect("probe-count machine");
    m.run_transactions(WARMUP).expect("warmup");
    let r = m.run_transactions(TRANSACTIONS).expect("run");
    let p = m.memory().probe_stats();
    (
        r.mem.l2_misses,
        r.mem.upgrades,
        p.scan_probes,
        p.invalidate_probes,
    )
}

fn main() {
    let t0 = banner(
        "Scaling study",
        "Probe traffic and WCR on machines past 16 CPUs",
    );

    // Part 1: transport probe traffic. Probe counters reset with the other
    // statistics at each measurement boundary, so the probes read after the
    // measured interval and the miss/upgrade counts in its `RunResult`
    // cover exactly the same span.
    let mut table = Table::new(&format!(
        "Coherence probes by transport (OLTP, {TRANSACTIONS} measured txns, deterministic)"
    ));
    table.set_headers(vec![
        "cpus",
        "transport",
        "scan probes",
        "inval probes",
        "broadcast equiv",
        "probes vs broadcast",
    ]);
    for cpus in [16usize, 64] {
        let snoop = probe_counts(MachineConfig::hpca2003().with_cpus(cpus), cpus);
        let dir = probe_counts(
            MachineConfig::hpca2003()
                .with_cpus(cpus)
                .with_directory_coherence(),
            cpus,
        );
        for (label, (misses, upgrades, scans, invals)) in
            [("filtered snoop", snoop), ("directory", dir)]
        {
            // What an unfiltered broadcast bus would have probed for the
            // same protocol events: every other node on every miss and
            // every explicit upgrade.
            let broadcast = (cpus as u64 - 1) * (misses + upgrades);
            table.add_row(vec![
                cpus.to_string(),
                label.to_owned(),
                scans.to_string(),
                invals.to_string(),
                broadcast.to_string(),
                format!("{:.1}%", 100.0 * (scans + invals) as f64 / broadcast as f64),
            ]);
        }
    }
    println!("{table}");

    // Part 2: Experiment 1 (L2 associativity WCR) on the 64-CPU directory
    // machine.
    const DIR_CPUS: usize = 64;
    let exec = executor();
    let mut samples: Vec<(String, Vec<f64>)> = Vec::new();
    println!("\n  Experiment 1 at {DIR_CPUS} CPUs under directory coherence:");
    for ways in [1u32, 2, 4] {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(DIR_CPUS)
            .with_directory_coherence()
            .with_l2_associativity(ways)
            .with_perturbation(4, 0);
        let plan = paper_plan(TRANSACTIONS)
            .with_runs(runs())
            .with_warmup(WARMUP);
        let space = exec
            .run_space(&cfg, || Benchmark::Oltp.workload(DIR_CPUS, seed()), &plan)
            .expect("simulation");
        let label = match ways {
            1 => "direct-mapped".to_owned(),
            w => format!("{w}-way"),
        };
        report_violations(&label, &space);
        println!(
            "  L2 {label:>13}: cycles/txn {}",
            fmt_sample(&space.runtimes())
        );
        samples.push((label, space.runtimes()));
    }

    let mut wcr_table = Table::new(&format!(
        "\nWrong-conclusion ratio at {DIR_CPUS} CPUs (directory MOSI, {} runs/config)",
        runs()
    ));
    wcr_table.set_headers(vec![
        "Configurations Compared",
        "Superior (measured)",
        "WCR measured",
    ]);
    for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let w = wrong_conclusion_ratio(&samples[i].1, &samples[j].1).expect("wcr");
        let superior = match w.superior {
            mtvar_core::wcr::Superior::First => &samples[i].0,
            mtvar_core::wcr::Superior::Second => &samples[j].0,
        };
        wcr_table.add_row(vec![
            format!("{} vs {}", samples[i].0, samples[j].0),
            superior.clone(),
            format!("{:.1}%", w.wcr_percent),
        ]);
    }
    println!("{wcr_table}");
    println!(
        "  (variability persists at 64 CPUs: single-run comparisons still mislead, \
         so the paper's multi-run discipline is not a small-machine artifact)"
    );
    footer(t0);
}
