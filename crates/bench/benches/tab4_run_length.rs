//! §4.2.2: OLTP space variability vs run length — Table 4.
//!
//! Twenty perturbed runs per length, lengths 200–1000 transactions. The
//! paper's result: both the coefficient of variation (3.27% → 0.98%) and the
//! range of variability (12.72% → 3.86%) fall as runs lengthen — "the
//! decrease in variability comes at the expense of longer simulation times",
//! which the wall-clock columns echo.

use std::time::Instant;

use mtvar_bench::{banner, footer, paper_plan, runs, seed};
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::report::Table;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

const WARMUP: u64 = 1000;
const PAPER: [(u64, f64, f64); 5] = [
    (200, 3.27, 12.72),
    (400, 2.87, 10.40),
    (600, 2.16, 7.65),
    (800, 1.53, 5.47),
    (1000, 0.98, 3.86),
];

fn main() {
    let t0 = banner(
        "Table 4",
        "OLTP space variability for different run lengths",
    );

    let mut table = Table::new("Table 4. OLTP space variability for different run lengths");
    table.set_headers(vec![
        "#Simulated Transactions",
        "CoV measured",
        "CoV paper",
        "Range measured",
        "Range paper",
        "wall-clock (all runs)",
    ]);
    for (txns, paper_cov, paper_range) in PAPER {
        let t_len = Instant::now();
        let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
        let plan = paper_plan(txns).with_runs(runs()).with_warmup(WARMUP);
        let space =
            run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan).expect("simulation");
        let rep = VariabilityReport::from_runtimes(&space.runtimes()).expect("report");
        table.add_row(vec![
            txns.to_string(),
            format!("{:.2}%", rep.cov_percent),
            format!("{paper_cov:.2}%"),
            format!("{:.2}%", rep.range_percent),
            format!("{paper_range:.2}%"),
            format!("{:.1?}", t_len.elapsed()),
        ]);
    }
    println!("{table}");
    println!("  (the paper's absolute runtimes were 1.79–9.26 hours per run on 2003 hosts)");
    footer(t0);
}
