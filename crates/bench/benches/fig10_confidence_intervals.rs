//! §5.1.1: confidence intervals vs sample size — Figure 10.
//!
//! 95% confidence intervals for the mean cycles/transaction of the 32- and
//! 64-entry-ROB configurations, at sample sizes 5, 10, 15 and 20. The
//! paper's reading: the intervals tighten with more runs and stop
//! overlapping at 20 runs, bounding the wrong-conclusion probability below
//! 5%; at 90% confidence, 15 runs already separate.

use mtvar_bench::{banner, footer, paper_plan, runs, seed};
use mtvar_core::compare::Comparison;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 50;
const WARMUP: u64 = 400;

fn rob_runs(rob: u32, n: usize) -> Vec<f64> {
    let cfg = MachineConfig::hpca2003()
        .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(rob)))
        .with_perturbation(4, 0);
    let plan = paper_plan(TRANSACTIONS).with_runs(n).with_warmup(WARMUP);
    run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan)
        .expect("simulation")
        .runtimes()
}

fn main() {
    let t0 = banner(
        "Figure 10",
        "95% confidence intervals using different sample sizes for 32- and 64-entry ROBs",
    );

    let max_n = runs().max(20);
    let r32 = rob_runs(32, max_n);
    let r64 = rob_runs(64, max_n);

    println!("  n    32-entry ROB CI             64-entry ROB CI             overlap?");
    for n in [5usize, 10, 15, 20] {
        let n = n.min(max_n);
        let cmp = Comparison::from_runs("32-entry", &r32[..n], "64-entry", &r64[..n])
            .expect("comparison");
        let (ci32, ci64) = cmp.confidence_intervals(0.95).expect("cis");
        println!(
            "  {n:>2}   [{:>8.1}, {:>8.1}]        [{:>8.1}, {:>8.1}]        {}",
            ci32.lower(),
            ci32.upper(),
            ci64.lower(),
            ci64.upper(),
            if ci32.overlaps(&ci64) {
                "yes"
            } else {
                "NO — conclusion safe at 95%"
            }
        );
    }

    // The paper's side note: at 90% confidence a sample of 15 becomes
    // significant.
    let cmp = Comparison::from_runs(
        "32-entry",
        &r32[..15.min(max_n)],
        "64-entry",
        &r64[..15.min(max_n)],
    )
    .expect("comparison");
    let overlap_90 = cmp.intervals_overlap(0.90).expect("cis");
    println!(
        "  at 90% confidence and n = 15 the intervals {} (paper: separated, <=10% wrong-conclusion risk)",
        if overlap_90 { "still overlap" } else { "separate" }
    );
    footer(t0);
}
