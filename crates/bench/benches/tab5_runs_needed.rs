//! §5.1.2: runs needed per significance level — Table 5 — plus the §5.1.1
//! sample-size worked example.
//!
//! For the ROB 32-vs-64 experiment, finds the smallest number of runs whose
//! prefix t-test rejects H₀ at each significance level. Paper's Table 5:
//! 10% → 6, 5% → 9, 2.5% → 11, 1% → 13, 0.5% → 16 runs.

use mtvar_bench::{banner, footer, paper_plan, runs, seed};
use mtvar_core::compare::Comparison;
use mtvar_core::report::Table;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_stats::describe::Summary;
use mtvar_stats::infer::sample_size_for_relative_error;
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 50;
const WARMUP: u64 = 400;

fn rob_runs(rob: u32) -> Vec<f64> {
    let cfg = MachineConfig::hpca2003()
        .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(rob)))
        .with_perturbation(4, 0);
    let plan = paper_plan(TRANSACTIONS)
        .with_runs(runs())
        .with_warmup(WARMUP);
    run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan)
        .expect("simulation")
        .runtimes()
}

fn main() {
    let t0 = banner(
        "Table 5",
        "Number of runs needed for different significance levels",
    );

    let r32 = rob_runs(32);
    let r64 = rob_runs(64);
    let cmp = Comparison::from_runs("32-entry", &r32, "64-entry", &r64).expect("comparison");

    let levels = [0.10, 0.05, 0.025, 0.01, 0.005];
    let paper = ["6", "9", "11", "13", "16"];
    let needed = cmp.min_runs_for_significance(&levels).expect("estimation");

    let mut table = Table::new("Table 5. Number of runs needed for different significance levels");
    table.set_headers(vec!["Significance level", "#Runs measured", "#Runs paper"]);
    for (k, (alpha, n)) in needed.iter().enumerate() {
        table.add_row(vec![
            format!("{:.1}%", alpha * 100.0),
            n.map_or_else(
                || format!("> {}", r32.len().min(r64.len())),
                |v| v.to_string(),
            ),
            paper[k].to_owned(),
        ]);
    }
    println!("{table}");

    // §5.1.1 worked example: n = (t·S/(r·Y))² with r = 4%, 95% confidence,
    // CoV from our own 50-transaction OLTP runs (paper used its observed 9%).
    let s32 = Summary::from_slice(&r32).expect("summary");
    let cov = s32.coefficient_of_variation().expect("cov") / 100.0;
    let n = sample_size_for_relative_error(cov, 0.04, 0.95).expect("sample size");
    println!(
        "  sample-size estimate for 4% relative error at 95% confidence, using our measured \
         CoV of {:.1}%: {} runs",
        cov * 100.0,
        n
    );
    let n_paper = sample_size_for_relative_error(0.09, 0.04, 0.95).expect("sample size");
    println!("  with the paper's 9% CoV the same formula gives {n_paper} runs (paper: ~20)");
    footer(t0);
}
