//! §4.2.1: space variability across the seven benchmarks — Figure 7 and
//! Table 3.
//!
//! Twenty perturbed runs per benchmark on the 16-processor target with the
//! simple processor model; reports the coefficient of variation and range of
//! variability per benchmark next to the paper's Table 3 values.
//!
//! Transaction counts for SPECjbb/Apache/OLTP are scaled down from the
//! paper's (60,000 / 5,000 / 1,000 → 2,000 / 500 / 400) to keep the harness
//! in minutes on one host core, and ECperf up (5 → 50) because our synthetic
//! commit process is noisier at 5-commit granularity; the comparison target
//! is the *ordering* of benchmarks by variability, which the paper
//! highlights, not the absolute CoV values. See EXPERIMENTS.md.

use mtvar_bench::{banner, footer, paper_plan, runs, seed};
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::report::Table;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

/// `(benchmark, measured transactions, warmup, paper txns, paper CoV, paper range)`.
const ROWS: [(Benchmark, u64, u64, &str, f64, f64); 7] = [
    (Benchmark::Barnes, 16, 0, "1", 0.16, 0.59),
    (Benchmark::Ocean, 16, 0, "1", 0.31, 1.13),
    (Benchmark::Ecperf, 50, 200, "5", 1.40, 5.30),
    (Benchmark::Slashcode, 30, 200, "30", 3.60, 14.45),
    (Benchmark::Oltp, 400, 1000, "1000", 0.98, 3.85),
    (Benchmark::Apache, 500, 200, "5000", 0.88, 3.94),
    (Benchmark::Specjbb, 2000, 200, "60000", 0.26, 1.10),
];

fn main() {
    let t0 = banner(
        "Figure 7 / Table 3",
        "Space variability across the seven benchmarks",
    );

    let mut table = Table::new("Table 3. Summary of space variability for different benchmarks");
    table.set_headers(vec![
        "Benchmark",
        "#txns (ours/paper)",
        "mean cyc/txn",
        "CoV measured",
        "CoV paper",
        "Range measured",
        "Range paper",
    ]);

    let mut measured_order: Vec<(String, f64)> = Vec::new();
    for (b, txns, warmup, paper_txns, paper_cov, paper_range) in ROWS {
        let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
        let plan = paper_plan(txns).with_runs(runs()).with_warmup(warmup);
        let space = run_space(&cfg, || b.workload(16, seed()), &plan).expect("simulation");
        let rep = VariabilityReport::from_runtimes(&space.runtimes()).expect("report");
        table.add_row(vec![
            b.name().to_owned(),
            format!("{txns}/{paper_txns}"),
            format!("{:.0}", rep.mean),
            format!("{:.2}%", rep.cov_percent),
            format!("{paper_cov:.2}%"),
            format!("{:.2}%", rep.range_percent),
            format!("{paper_range:.2}%"),
        ]);
        measured_order.push((b.name().to_owned(), rep.cov_percent));
    }
    println!("{table}");

    // The paper's headline: variability ordering across benchmarks.
    measured_order.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let order: Vec<&str> = measured_order.iter().map(|(n, _)| n.as_str()).collect();
    println!("  measured CoV ordering: {}", order.join(" < "));
    println!(
        "  paper    CoV ordering: barnes < specjbb < ocean < apache < oltp < ecperf < slashcode"
    );
    footer(t0);
}
