//! §4.3 + §5.2: runs from multiple starting points — Figure 9 — and the
//! ANOVA study that decides whether time sampling is required.
//!
//! Twenty perturbed runs from each of ten checkpoints spaced through the
//! workload's lifetime, for OLTP (200-transaction runs) and SPECjbb
//! (500-transaction runs; the paper used 5,000 — see EXPERIMENTS.md).
//! Paper findings: OLTP checkpoint means differ by >16% (30K vs 40K);
//! SPECjbb's by >36% (100K vs 400K) with *negligible* space variability
//! within each checkpoint; ANOVA finds between-group variability significant
//! for both, so both need time sampling.

use mtvar_bench::{banner, executor, footer, runs, seed};
use mtvar_core::runspace::RunPlan;
use mtvar_core::timesample::sweep_positions_with;
use mtvar_sim::config::MachineConfig;
use mtvar_stats::describe::Summary;
use mtvar_workloads::Benchmark;

const POINTS: usize = 10;

fn main() {
    let t0 = banner(
        "Figure 9 / ANOVA (§5.2)",
        "OLTP and SPECjbb performance from multiple starting points",
    );

    for (benchmark, spacing, txns, paper_note) in [
        (
            Benchmark::Oltp,
            1_000u64,
            200u64,
            "paper: >16% spread between the 30K and 40K checkpoints",
        ),
        (
            Benchmark::Specjbb,
            2_000,
            500,
            "paper: >36% spread, negligible within-checkpoint deviation",
        ),
    ] {
        println!(
            "\n  -- {} ({txns}-transaction runs from {POINTS} checkpoints) --",
            benchmark
        );
        let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
        let wseed = seed();
        let positions: Vec<u64> = (1..=POINTS as u64).map(|i| i * spacing).collect();
        let plan = RunPlan::new(txns).with_runs(runs());
        // Store-backed position sweep: each checkpoint extends the previous
        // snapshot instead of re-warming from cycle zero (see the README's
        // "Checkpoints & warmup amortization").
        let study = sweep_positions_with(
            &executor(),
            &cfg,
            move || benchmark.workload(16, wseed),
            &positions,
            &plan,
        )
        .expect("checkpoint sweep");
        if !study.is_clean() {
            println!(
                "  !! invariant violations per checkpoint: {:?}",
                study.violation_counts()
            );
        }

        println!("  warmup txns   cycles/txn mean ± sd       min        max");
        let mut means = Vec::new();
        for (ck, group) in study.checkpoints().iter().zip(study.groups()) {
            let s = Summary::from_slice(group).expect("summary");
            println!(
                "  {:>10}    {:>9.1} ± {:>7.2}   {:>9.1}  {:>9.1}",
                ck,
                s.mean(),
                s.sd(),
                s.min(),
                s.max()
            );
            means.push(s.mean());
        }
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        println!(
            "  between-checkpoint spread: {:.1}% of the mean ({paper_note})",
            100.0 * (hi - lo) / grand
        );

        let anova = study.anova().expect("anova");
        println!(
            "  ANOVA: F({:.0}, {:.0}) = {:.1}, p = {:.2e} -> time sampling {} (alpha = 0.05)",
            anova.df_between(),
            anova.df_within(),
            anova.f_statistic(),
            anova.p_value(),
            if study.requires_time_sampling(0.05).expect("anova") {
                "REQUIRED — use runs from multiple starting points"
            } else {
                "not required"
            }
        );
    }
    footer(t0);
}
