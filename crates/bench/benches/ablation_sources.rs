//! Ablation: where does the variability come from?
//!
//! §2.1 of the paper names the mechanisms that turn nanosecond perturbations
//! into percent-scale runtime differences: OS scheduling decisions, lock
//! acquisition order, and transaction quantization. This ablation removes
//! the amplifiers one at a time from the OLTP experiment and reports what is
//! left of the variability:
//!
//! * `baseline`        — the paper's configuration;
//! * `long quantum`    — quantum ×100, suppressing preemption-timing races;
//! * `free switches`   — context-switch/wakeup costs set to 0, removing
//!   scheduler-latency coupling;
//! * `serialized bus`  — bus occupancy ×8, strengthening the inter-CPU
//!   timing coupler.

use mtvar_bench::{banner, footer, paper_plan, runs, seed};
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::report::Table;
use mtvar_core::runspace::run_space;
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

const TRANSACTIONS: u64 = 200;
const WARMUP: u64 = 1000;

fn main() {
    let t0 = banner(
        "Ablation",
        "Contribution of scheduling, switching and bus coupling to space variability",
    );

    let baseline = MachineConfig::hpca2003().with_perturbation(4, 0);

    let mut long_quantum = baseline.clone();
    long_quantum.sched.quantum_ns *= 100;

    let mut free_switches = baseline.clone();
    free_switches.sched.context_switch_ns = 0;
    free_switches.sched.wakeup_ns = 0;

    let mut serialized_bus = baseline.clone();
    serialized_bus.memory.bus_occupancy_ns *= 8;

    let mut table = Table::new("Variability under ablated configurations (OLTP, 200 txns)");
    table.set_headers(vec!["configuration", "mean cycles/txn", "CoV", "range"]);
    for (label, cfg) in [
        ("baseline", baseline),
        ("long quantum (x100)", long_quantum),
        ("free context switches", free_switches),
        ("serialized bus (x8)", serialized_bus),
    ] {
        let plan = paper_plan(TRANSACTIONS)
            .with_runs(runs())
            .with_warmup(WARMUP);
        let space =
            run_space(&cfg, || Benchmark::Oltp.workload(16, seed()), &plan).expect("simulation");
        let rep = VariabilityReport::from_runtimes(&space.runtimes()).expect("report");
        table.add_row(vec![
            label.to_owned(),
            format!("{:.1}", rep.mean),
            format!("{:.2}%", rep.cov_percent),
            format!("{:.2}%", rep.range_percent),
        ]);
    }
    println!("{table}");
    footer(t0);
}
