//! Shared plumbing for the `mtvar` benchmark harness.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the HPCA 2003 paper and prints the measured artifact next to the values
//! the paper reports, so shapes can be compared at a glance. See
//! `EXPERIMENTS.md` at the workspace root for the full index and the scaling
//! notes.
//!
//! Environment knobs:
//!
//! * `MTVAR_RUNS` — perturbed runs per configuration (default 20, the
//!   paper's count). Lower it for a quick smoke pass.
//! * `MTVAR_SEED` — workload seed (default 42).
//! * `MTVAR_STRICT` — set to `1` to run every sweep under a strict
//!   executor: any invariant violation aborts the bench with a typed
//!   error instead of being merely reported.
//! * `MTVAR_CKPT_STORE` — set to `0` to detach the warmup checkpoint store
//!   (every sweep then re-simulates its warmup from cycle zero). On by
//!   default, with on-disk spill under `target/mtvar-checkpoints/` so
//!   repeated bench invocations reuse warmed machine snapshots.

use std::sync::Arc;
use std::time::Instant;

use mtvar_core::checkpoint::CheckpointStore;
use mtvar_core::runspace::{Executor, RunPlan, RunSpace};

/// Run plan for reproducing a paper artifact: `txns` measured transactions
/// under the **legacy perturb-from-cycle-zero semantics**
/// (`with_shared_warmup(false)`). At the scaled-down run lengths this
/// harness uses, divergence accumulated during a perturbed warmup carries
/// most of the variability the paper's tables measure, so the artifacts pin
/// that protocol explicitly instead of inheriting the shared-warmup default
/// — which also keeps the committed `bench_output.txt` values regenerable
/// byte-for-byte. See EXPERIMENTS.md, "Shared warmup vs legacy
/// perturb-from-zero".
pub fn paper_plan(txns: u64) -> RunPlan {
    RunPlan::new(txns).with_shared_warmup(false)
}

/// Number of perturbed runs per configuration (env `MTVAR_RUNS`, default 20).
pub fn runs() -> usize {
    std::env::var("MTVAR_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20)
}

/// The workload seed (env `MTVAR_SEED`, default 42).
pub fn seed() -> u64 {
    std::env::var("MTVAR_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The bench harness's executor: observing by default, strict when
/// `MTVAR_STRICT=1` (any invariant violation then surfaces as
/// [`mtvar_core::CoreError::InvariantViolation`] instead of a count), and
/// backed by a disk-spilling warmup [`CheckpointStore`] unless
/// `MTVAR_CKPT_STORE=0`. The store never changes a statistic — run seeds
/// derive from the configuration, not the store — it only removes repeated
/// warmup simulation within and across bench invocations.
pub fn executor() -> Executor {
    let mut exec = Executor::new();
    if std::env::var("MTVAR_STRICT").is_ok_and(|v| v == "1") {
        exec = exec.with_invariant_checks();
    }
    if !std::env::var("MTVAR_CKPT_STORE").is_ok_and(|v| v == "0") {
        exec =
            exec.with_checkpoint_store(Arc::new(CheckpointStore::new().with_default_disk_spill()));
    }
    exec
}

/// Prints a one-line invariant report for a sweep when anything fired;
/// silent on clean spaces so the paper tables stay uncluttered.
pub fn report_violations(label: &str, space: &RunSpace) {
    if !space.is_clean() {
        println!(
            "    !! {label}: {} invariant violation(s) across {} run(s)",
            space.total_violations(),
            space.violations().len()
        );
    }
}

/// Prints the standard experiment banner and returns the start instant.
pub fn banner(id: &str, title: &str) -> Instant {
    println!();
    println!("=== {id}: {title} ===");
    println!(
        "    ({} runs/config, workload seed {}; see EXPERIMENTS.md for scaling)",
        runs(),
        seed()
    );
    Instant::now()
}

/// Prints the closing line with elapsed wall time.
pub fn footer(start: Instant) {
    println!("    [completed in {:.1?}]", start.elapsed());
}

/// Formats a slice of runtimes as `mean ± sd (min / max)`.
pub fn fmt_sample(rt: &[f64]) -> String {
    let s = mtvar_stats::describe::Summary::from_slice(rt).expect("non-empty runtimes");
    format!(
        "{:8.1} ± {:6.1}  (min {:8.1}, max {:8.1})",
        s.mean(),
        s.sd(),
        s.min(),
        s.max()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        // These read the environment; absent overrides they use the paper's
        // run count.
        if std::env::var("MTVAR_RUNS").is_err() {
            assert_eq!(runs(), 20);
        }
        if std::env::var("MTVAR_SEED").is_err() {
            assert_eq!(seed(), 42);
        }
    }

    #[test]
    fn executor_strictness_follows_env() {
        // The env var is process-global, so only assert in the states we can
        // observe without mutating it.
        match std::env::var("MTVAR_STRICT") {
            Ok(v) if v == "1" => assert!(executor().strict_invariants()),
            Ok(_) | Err(_) => assert!(!executor().strict_invariants()),
        }
    }

    #[test]
    fn fmt_sample_contains_moments() {
        let s = fmt_sample(&[1.0, 2.0, 3.0]);
        assert!(s.contains("2.0"));
        assert!(s.contains("min"));
    }
}
