//! Decode-robustness fuzz over service protocol frames, mirroring the
//! checkpoint codec's fuzz suite: a hostile or damaged client (or a
//! corrupted stream) can hand the server truncated, bit-flipped, spliced, or
//! absurd-length frames, and **every** such mutation must surface as an
//! error — never a panic, and never an allocation sized by attacker bytes.
//!
//! Both directions are covered: request frames (what the server decodes)
//! and response frames (what the client decodes).

use mtvar_serve::protocol::{
    decode_request, decode_response, encode_frame, encode_request, encode_response, read_frame,
    ConfigSpec, ErrorCode, FrameKind, PlanSpec, Priority, Request, Response, ServerStats,
    SweepSpec, WorkloadSpec, FRAME_HEADER, MAX_FRAME_BODY,
};

/// SplitMix64 — the repo's convention for in-test deterministic streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn sample_request() -> Request {
    Request::Submit(SweepSpec {
        config: ConfigSpec {
            cpus: 8,
            perturbation_max_ns: 4,
            l2_associativity: Some(2),
            dram_latency_ns: Some(90),
            directory: true,
        },
        workload: WorkloadSpec::Benchmark {
            name: "oltp".into(),
            cpus: 8,
            seed: 7,
        },
        plan: PlanSpec {
            runs: 12,
            transactions: 200,
            warmup: 50,
            base_seed: 3,
            shared_warmup: true,
        },
        priority: Priority::High,
    })
}

fn sample_response() -> Response {
    Response::StatsReport(ServerStats {
        submitted: 5,
        completed: 3,
        rejected: 1,
        runs_cached: 12,
        coalesce_leaders: 1,
        coalesce_followers: 4,
        draining: true,
        warnings: vec!["disk spill degraded: permission denied".into()],
        ..ServerStats::default()
    })
}

/// Every single-bit flip anywhere in either frame — magic, version, kind,
/// reserved, length, body, checksum — must be rejected. One pseudo-random
/// bit per byte position keeps the sweep exhaustive over fields.
#[test]
fn every_bit_flip_is_rejected() {
    let req = sample_request();
    let resp = sample_response();
    let mut rng = Rng(0xF1A9);
    for (frame, decodes) in [
        (encode_request(&req), true),
        (encode_response(&resp), false),
    ] {
        let mut buf = frame.clone();
        for i in 0..frame.len() {
            let bit = 1u8 << rng.below(8);
            buf[i] ^= bit;
            let rejected = if decodes {
                decode_request(&buf).is_err()
            } else {
                decode_response(&buf).is_err()
            };
            assert!(rejected, "bit flip at byte {i} decoded Ok");
            buf[i] ^= bit; // restore for the next position
        }
        // Sanity: the unmutated frame still parses.
        if decodes {
            assert_eq!(decode_request(&buf).unwrap(), req);
        } else {
            assert_eq!(decode_response(&buf).unwrap(), resp);
        }
    }
}

/// Every proper prefix must be rejected — a cut can land mid-header,
/// mid-body, or mid-checksum. Trailing garbage is rejected too: a frame is
/// exactly as long as its header says.
#[test]
fn every_truncation_and_extension_is_rejected() {
    let frame = encode_request(&sample_request());
    for len in 0..frame.len() {
        assert!(
            decode_request(&frame[..len]).is_err(),
            "prefix of {len} bytes decoded Ok"
        );
    }
    let mut extended = frame.clone();
    extended.push(0);
    assert!(decode_request(&extended).is_err(), "trailing byte accepted");

    let frame = encode_response(&sample_response());
    for len in 0..frame.len() {
        assert!(
            decode_response(&frame[..len]).is_err(),
            "prefix of {len} bytes decoded Ok"
        );
    }
}

/// Random splices — insertions, deletions, duplicated ranges, and
/// cross-splices of a request with a response frame — must be rejected.
#[test]
fn random_splices_are_rejected() {
    let a = encode_request(&sample_request());
    let b = encode_response(&sample_response());
    let mut rng = Rng(0x0057_11CE);
    for round in 0..400 {
        let mut buf = a.clone();
        match rng.below(4) {
            0 => {
                // Insert 1..32 random bytes at a random offset.
                let at = rng.below(buf.len() + 1);
                let n = 1 + rng.below(32);
                let mut chunk = Vec::with_capacity(n);
                for _ in 0..n {
                    chunk.push(rng.next() as u8);
                }
                buf.splice(at..at, chunk);
            }
            1 => {
                // Delete a random nonempty range.
                let at = rng.below(buf.len());
                let n = 1 + rng.below((buf.len() - at).min(64));
                buf.drain(at..at + n);
            }
            2 => {
                // Duplicate a range over another (simulates a torn buffer).
                let src = rng.below(buf.len());
                let n = 1 + rng.below((buf.len() - src).min(64));
                let chunk: Vec<u8> = buf[src..src + n].to_vec();
                let dst = rng.below(buf.len() - n + 1);
                if dst == src {
                    continue; // identity overwrite: not a mutation
                }
                buf[dst..dst + n].copy_from_slice(&chunk);
                if buf == a {
                    continue; // overwrote with identical bytes
                }
            }
            _ => {
                // Head of the request frame + tail of the response frame.
                // Even a clean 0/0 cut yields a whole response frame, which
                // decode_request must still reject on kind.
                let cut_a = rng.below(a.len());
                let cut_b = rng.below(b.len());
                buf = a[..cut_a].to_vec();
                buf.extend_from_slice(&b[cut_b..]);
                if buf == a {
                    continue;
                }
            }
        }
        assert!(
            decode_request(&buf).is_err(),
            "splice round {round} decoded Ok"
        );
    }
}

/// Hostile body lengths must be rejected from the 12-byte header alone,
/// before any allocation — on the slice path and the stream path alike.
#[test]
fn hostile_lengths_are_rejected_before_allocation() {
    let frame = encode_request(&sample_request());
    for value in [u32::MAX, u32::MAX / 2, (MAX_FRAME_BODY + 1) as u32, 1 << 30] {
        let mut buf = frame.clone();
        buf[8..12].copy_from_slice(&value.to_le_bytes());
        assert!(
            decode_request(&buf).is_err(),
            "body_len {value} accepted on the slice path"
        );
        // The stream reader sees only the header before deciding: a frame
        // claiming a huge body must error out of the header validation, not
        // try to size a buffer from it.
        let mut cursor = std::io::Cursor::new(buf);
        assert!(
            read_frame(&mut cursor).is_err(),
            "body_len {value} accepted on the stream path"
        );
    }
    // A header-only stream that dries up mid-body is Truncated, not a hang
    // or a panic.
    let mut cursor = std::io::Cursor::new(frame[..FRAME_HEADER + 3].to_vec());
    assert!(read_frame(&mut cursor).is_err());
}

/// Body-level corruption re-wrapped in a *valid* frame (fresh checksum, so
/// the frame layer passes) must never panic the message decoder, and length
/// fields inside the body must never drive an allocation past the body's
/// own size — the Snap decoder's `decode_len` discipline.
#[test]
fn mutated_bodies_never_panic_the_message_decoder() {
    let req_body = {
        let frame = encode_request(&sample_request());
        frame[FRAME_HEADER..frame.len() - 8].to_vec()
    };
    let resp_body = {
        let frame = encode_response(&sample_response());
        frame[FRAME_HEADER..frame.len() - 8].to_vec()
    };
    let mut rng = Rng(0xDEC0DE);
    for round in 0..600 {
        let (body, kind) = if round % 2 == 0 {
            (&req_body, FrameKind::Request)
        } else {
            (&resp_body, FrameKind::Response)
        };
        let mut mutated = body.clone();
        match rng.below(3) {
            0 => {
                let i = rng.below(mutated.len());
                mutated[i] ^= 1 << rng.below(8);
            }
            1 => {
                mutated.truncate(rng.below(mutated.len()));
            }
            _ => {
                let at = rng.below(mutated.len());
                let n = 1 + rng.below(16);
                let mut chunk = Vec::with_capacity(n);
                for _ in 0..n {
                    chunk.push(rng.next() as u8);
                }
                mutated.splice(at..at, chunk);
            }
        }
        let frame = encode_frame(kind, &mutated);
        // Err is the expected outcome; Ok means the mutation happened to
        // produce a coherent encoding. A panic fails the harness either way.
        match kind {
            FrameKind::Request => {
                let _ = decode_request(&frame);
            }
            FrameKind::Response => {
                let _ = decode_response(&frame);
            }
        }
    }
}

/// Pure noise — random bytes framed as a valid body — decodes to an error
/// for every seed tried, across both message types.
#[test]
fn random_bodies_decode_to_errors() {
    let mut rng = Rng(0x5EED);
    for _ in 0..300 {
        let n = rng.below(256);
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(rng.next() as u8);
        }
        // Tags 0..=4 (requests) and 0..=10 (responses) exist, so a random
        // first byte frequently names a real variant — the inner field
        // decode still has to fail gracefully on the noise that follows.
        let _ = decode_request(&encode_frame(FrameKind::Request, &body));
        let _ = decode_response(&encode_frame(FrameKind::Response, &body));
    }
    // Spot-check a specifically nasty body: a valid Error tag followed by a
    // string length claiming the whole address space.
    let mut body = vec![10u8, 0u8]; // Response::Error, ErrorCode::QueueFull
    body.extend_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_response(&encode_frame(FrameKind::Response, &body)).is_err());
    let _ = ErrorCode::QueueFull; // keep the import honest
}
