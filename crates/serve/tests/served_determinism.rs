//! End-to-end trustworthiness of the served path.
//!
//! The service's core claim: a sweep submitted over the socket yields
//! **bit-identical** statistics digests to the same sweep run through the
//! batch [`Executor`] — and N concurrent clients asking the same question
//! share one simulation, with the other N−1 sweeps replayed from the shared
//! cache. Graceful shutdown drains in-flight jobs while rejecting new
//! submissions with a typed `Draining` error, and disk spill carries both
//! warmed checkpoints and run results across a full server restart.
//!
//! [`Executor`]: mtvar_core::runspace::Executor

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mtvar_core::golden::run_digest;
use mtvar_core::runspace::Executor;
use mtvar_serve::client::{Client, JobOutcome, SweepOutcome};
use mtvar_serve::protocol::{
    fold_digest, ConfigSpec, ErrorCode, PlanSpec, Priority, Response, SweepSpec, WorkloadSpec,
};
use mtvar_serve::server::{ServeConfig, Server};
use mtvar_serve::ServeError;
use mtvar_sim::workload::SharingWorkload;

/// A socket path short enough for `sockaddr_un` everywhere.
fn socket_path(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mtv-{}-{tag}-{n}.sock", std::process::id()))
}

fn sweep() -> SweepSpec {
    SweepSpec {
        config: ConfigSpec {
            cpus: 4,
            perturbation_max_ns: 4,
            l2_associativity: None,
            dram_latency_ns: None,
            directory: false,
        },
        workload: WorkloadSpec::Sharing {
            threads: 4,
            seed: 42,
            ops_per_txn: 40,
            footprint_blocks: 2048,
            lock_every: 10,
        },
        plan: PlanSpec {
            runs: 5,
            transactions: 40,
            warmup: 25,
            base_seed: 0,
            shared_warmup: true,
        },
        priority: Priority::Normal,
    }
}

fn batch_digest(spec: &SweepSpec) -> u64 {
    let config = spec.config.build();
    let plan = spec.plan.build();
    let WorkloadSpec::Sharing {
        threads,
        seed,
        ops_per_txn,
        footprint_blocks,
        lock_every,
    } = spec.workload.clone()
    else {
        panic!("test sweep is a sharing workload");
    };
    let space = Executor::with_threads(2)
        .run_space(
            &config,
            move || {
                SharingWorkload::new(
                    threads as usize,
                    seed,
                    ops_per_txn as u32,
                    footprint_blocks,
                    lock_every as u32,
                )
            },
            &plan,
        )
        .expect("batch sweep");
    space
        .results()
        .iter()
        .fold(0u64, |acc, r| fold_digest(acc, run_digest(r)))
}

/// N concurrent clients submitting one sweep: every client gets the same
/// digest and violation summary, the digest equals the batch executor's,
/// exactly one sweep simulates, and the per-run digest streams agree run
/// for run.
#[test]
fn concurrent_clients_get_identical_digests_and_share_one_simulation() {
    const CLIENTS: usize = 3;
    let socket = socket_path("det");
    // One dispatcher serializes the identical jobs, so the first simulates
    // and the rest replay from the shared result cache.
    let handle = Server::start(ServeConfig {
        dispatchers: 1,
        executor_threads: 2,
        ..ServeConfig::new(&socket)
    })
    .expect("start server");

    let spec = sweep();
    let outcomes: Vec<(JobOutcome, BTreeMap<u64, u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let spec = spec.clone();
                let socket = socket.clone();
                scope.spawn(move || {
                    let per_run = Mutex::new(BTreeMap::new());
                    let outcome = Client::new(&socket)
                        .submit(spec, |event| {
                            if let Response::RunDone {
                                run_index, digest, ..
                            } = event
                            {
                                per_run.lock().unwrap().insert(*run_index, *digest);
                            }
                        })
                        .expect("submit");
                    let SweepOutcome::Done(done) = outcome else {
                        panic!("sweep did not complete: {outcome:?}");
                    };
                    (done, per_run.into_inner().unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let runs = spec.plan.runs;
    let reference = batch_digest(&spec);
    for (done, per_run) in &outcomes {
        assert_eq!(
            done.digest, reference,
            "served digest differs from the batch executor's"
        );
        assert_eq!(done.runs, runs);
        assert_eq!(done.violations, outcomes[0].0.violations);
        assert_eq!(
            per_run.len(),
            runs as usize,
            "every run streamed a RunDone frame"
        );
        assert_eq!(
            per_run, &outcomes[0].1,
            "per-run digest streams disagree between clients"
        );
    }
    // Exactly one sweep simulated; the other N-1 replayed from the cache.
    let simulated: u64 = outcomes.iter().map(|(d, _)| d.completed).sum();
    let cached: u64 = outcomes.iter().map(|(d, _)| d.cached).sum();
    assert_eq!(simulated, runs, "exactly one sweep's runs simulated");
    assert_eq!(cached, (CLIENTS as u64 - 1) * runs, "N-1 sweeps cache-hit");

    let client = Client::new(&socket);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.submitted, CLIENTS as u64);
    assert_eq!(stats.completed, CLIENTS as u64);
    assert_eq!(stats.runs_completed, runs);
    assert_eq!(stats.runs_cached, (CLIENTS as u64 - 1) * runs);
    assert!(
        stats.checkpoints_in_memory >= 1,
        "the shared warmup snapshot is resident"
    );

    client.shutdown().expect("shutdown");
    handle.join();
    assert!(!socket.exists(), "socket file removed after drain");
}

/// Unknown jobs and malformed submissions earn typed errors, and `status` /
/// `cancel` reflect a completed job's terminal state.
#[test]
fn queries_and_rejections_are_typed() {
    let socket = socket_path("query");
    let handle = Server::start(ServeConfig {
        dispatchers: 1,
        ..ServeConfig::new(&socket)
    })
    .expect("start server");
    let client = Client::new(&socket);

    match client.status(999) {
        Err(ServeError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("expected UnknownJob, got {other:?}"),
    }
    let mut bad = sweep();
    bad.workload = WorkloadSpec::Benchmark {
        name: "no-such-benchmark".into(),
        cpus: 4,
        seed: 1,
    };
    match client.submit(bad, |_| {}) {
        Err(ServeError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    let mut zero_runs = sweep();
    zero_runs.plan.runs = 0;
    match client.submit(zero_runs, |_| {}) {
        Err(ServeError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    let mut quick = sweep();
    quick.plan.warmup = 0;
    quick.plan.runs = 2;
    quick.plan.transactions = 15;
    let SweepOutcome::Done(done) = client.submit(quick, |_| {}).expect("submit") else {
        panic!("sweep did not complete");
    };
    let report = client.status(done.job).expect("status");
    assert_eq!(report.runs_done, done.runs);
    assert_eq!(report.digest, Some(done.digest));
    // Cancelling a terminal job reports no effect.
    assert!(!client.cancel(done.job).expect("cancel"));

    client.shutdown().expect("shutdown");
    handle.join();
}

/// Graceful shutdown: a drain requested while a job is running lets that
/// job finish (its terminal frame still arrives) but rejects the next
/// submission with a typed `Draining` error frame.
#[test]
fn drain_finishes_inflight_jobs_and_rejects_new_ones() {
    let socket = socket_path("drain");
    let handle = Server::start(ServeConfig {
        dispatchers: 1,
        executor_threads: 2,
        ..ServeConfig::new(&socket)
    })
    .expect("start server");
    let client = Client::new(&socket);

    // Make the in-flight job chunky enough that the drain + probe complete
    // while it runs; correctness does not depend on the timing, only the
    // rejection's determinism does (drain is set before ShuttingDown is
    // acked, and the probe submits after the ack).
    let mut spec = sweep();
    spec.plan.runs = 6;
    spec.plan.transactions = 150;
    let probed = Mutex::new(None);
    let outcome = client
        .submit(spec, |event| {
            if matches!(event, Response::JobStarted { .. }) {
                // The dispatcher is now mid-job, so the server cannot reach
                // idle-and-drained before our probe lands.
                let shutdown_client = Client::new(&socket);
                shutdown_client.shutdown().expect("shutdown request");
                let probe = shutdown_client.submit(sweep(), |_| {});
                *probed.lock().unwrap() = Some(probe);
            }
        })
        .expect("in-flight job survives the drain");
    assert!(matches!(outcome, SweepOutcome::Done(_)));
    match probed.into_inner().unwrap().expect("probe ran") {
        Err(ServeError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Draining),
        other => panic!("expected Draining rejection, got {other:?}"),
    }
    handle.join();
    assert!(!socket.exists(), "socket file removed after drain");
}

/// Queued-job cancellation: with the single dispatcher busy, a queued job
/// cancelled before dispatch terminates as `Cancelled` — and its submitter
/// receives the terminal frame.
#[test]
fn cancelling_a_queued_job_streams_a_terminal_frame() {
    let socket = socket_path("cancel");
    let handle = Server::start(ServeConfig {
        dispatchers: 1,
        executor_threads: 2,
        ..ServeConfig::new(&socket)
    })
    .expect("start server");
    let client = Client::new(&socket);

    let mut blocker = sweep();
    blocker.plan.runs = 4;
    blocker.plan.transactions = 150;
    let victim_outcome = Arc::new(Mutex::new(None));
    let outcome = std::thread::scope(|scope| {
        let victim_outcome = Arc::clone(&victim_outcome);
        let socket_for_victim = socket.clone();
        client.submit(blocker, move |event| {
            if !matches!(event, Response::JobStarted { .. }) {
                return;
            }
            // Dispatcher is busy with the blocker: submit a victim (it
            // queues), cancel it by id, and collect its terminal frame.
            let victim_outcome = Arc::clone(&victim_outcome);
            let victim_socket = socket_for_victim.clone();
            scope.spawn(move || {
                let c = Client::new(&victim_socket);
                let seen_id = Mutex::new(None);
                // A different seed keys a different job (no cache overlap
                // needed -- the point is queue-side cancellation).
                let mut victim = sweep();
                victim.plan.base_seed = 77;
                let result = c.submit(victim, |event| {
                    if let Response::Submitted { job } = event {
                        *seen_id.lock().unwrap() = Some(*job);
                    }
                });
                *victim_outcome.lock().unwrap() = Some(result);
            });
            // Wait for the victim to be queued, then cancel it.
            let c = Client::new(&socket_for_victim);
            loop {
                let stats = c.stats().expect("stats");
                if stats.queue_depth >= 1 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            // The victim is the most recent submission: id 2 (the blocker
            // is 1); ids ascend from 1 per server lifetime.
            assert!(c.cancel(2).expect("cancel"), "victim was not terminal");
        })
    })
    .expect("blocker completes");
    assert!(matches!(outcome, SweepOutcome::Done(_)));
    match victim_outcome.lock().unwrap().take().expect("victim ran") {
        Ok(SweepOutcome::Cancelled { job }) => assert_eq!(job, 2),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let stats = Client::new(&socket).stats().expect("stats");
    assert_eq!(stats.cancelled, 1);
    Client::new(&socket).shutdown().expect("shutdown");
    handle.join();
}

/// Disk spill: a second server started on the same spill directories
/// replays the whole sweep from disk — same digest, all runs cached.
#[test]
fn spill_replays_results_across_a_server_restart() {
    let base = std::env::temp_dir().join(format!("mtv-spill-{}", std::process::id()));
    let ck_dir = base.join("ck");
    let rr_dir = base.join("rr");
    let _ = std::fs::remove_dir_all(&base);

    let config_for = |socket: &PathBuf| ServeConfig {
        dispatchers: 1,
        executor_threads: 2,
        checkpoint_spill: Some(ck_dir.clone()),
        result_spill: Some(rr_dir.clone()),
        ..ServeConfig::new(socket)
    };

    let socket = socket_path("spill1");
    let handle = Server::start(config_for(&socket)).expect("start server");
    let client = Client::new(&socket);
    let SweepOutcome::Done(first) = client.submit(sweep(), |_| {}).expect("submit") else {
        panic!("sweep did not complete");
    };
    assert_eq!(first.cached, 0);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.results_on_disk, sweep().plan.runs);
    client.shutdown().expect("shutdown");
    handle.join();

    // A fresh server process-equivalent: new executor, new caches, same
    // spill directories.
    let socket = socket_path("spill2");
    let handle = Server::start(config_for(&socket)).expect("restart server");
    let client = Client::new(&socket);
    let SweepOutcome::Done(second) = client.submit(sweep(), |_| {}).expect("submit") else {
        panic!("sweep did not complete");
    };
    assert_eq!(second.digest, first.digest, "digest survives the restart");
    assert_eq!(
        second.cached,
        sweep().plan.runs,
        "every run replayed from the disk spill"
    );
    assert_eq!(second.completed, 0);
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&base);
}
