//! The wire protocol: length-prefixed, checksummed frames carrying typed
//! request/response messages.
//!
//! One frame is
//!
//! ```text
//! magic "MTVS" (4) | version u16 | kind u8 | reserved u8 | body_len u32
//! | body (body_len bytes) | checksum u64
//! ```
//!
//! with every multi-byte field little-endian, the checksum an FNV-1a +
//! SplitMix64 fingerprint over header *and* body, and `body_len` capped at
//! [`MAX_FRAME_BODY`] **before** any allocation — a hostile length is
//! rejected from the 12-byte header alone, mirroring the checkpoint codec's
//! `decode_len` discipline. Message bodies are [`Snap`]-encoded (fixed-width
//! LE integers, explicit enum tags), so the format is stable across builds
//! and every malformed input decodes to an error, never a panic.

use std::io::{Read, Write};

use mtvar_sim::checkpoint::{CheckpointError, Decoder, Encoder, Snap};

use crate::{Result, ServeError};

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"MTVS";

/// Current protocol version; requests from other versions are rejected.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on a frame body. Far above any real message (the largest is a
/// stats report with its warning strings), and small enough that a hostile
/// `body_len` can never drive a large allocation.
pub const MAX_FRAME_BODY: usize = 1 << 20;

/// Frame header size in bytes: magic + version + kind + reserved + body_len.
pub const FRAME_HEADER: usize = 12;

/// Whether a frame carries a request or a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
        }
    }

    fn from_byte(b: u8) -> std::result::Result<Self, CheckpointError> {
        match b {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            other => Err(CheckpointError::Corrupt {
                what: format!("invalid frame kind {other}"),
            }),
        }
    }
}

/// FNV-1a over bytes with a SplitMix64 finalizer — the workspace's standard
/// content fingerprint, applied here as the frame checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    checksum_parts(&[bytes])
}

/// [`checksum`] over the concatenation of `parts`, without materializing
/// it. FNV-1a is a plain byte fold, so summing header and body in place is
/// exactly the sum of the contiguous frame — this is what lets the stream
/// reader and writer validate/emit frames from separate header and body
/// buffers with no assembly copy.
pub fn checksum_parts(parts: &[&[u8]]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one per-run digest into a job-level digest. Order-sensitive (runs
/// fold in run-index order), so two sweeps agree iff every run agrees — the
/// same construction the benches use for whole-study digests.
pub fn fold_digest(acc: u64, run_digest: u64) -> u64 {
    acc.rotate_left(7) ^ run_digest
}

/// Encodes one complete frame.
pub fn encode_frame(kind: FrameKind, body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= MAX_FRAME_BODY, "frame body over the cap");
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len() + 8);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.push(kind.to_byte());
    out.push(0); // reserved
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates the 12-byte header, returning the body length. Shared by the
/// slice and stream decoders so both reject hostile lengths before any
/// allocation or read.
fn validate_header(
    header: &[u8; FRAME_HEADER],
) -> std::result::Result<(FrameKind, usize), CheckpointError> {
    if header[..4] != FRAME_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: u32::from(version),
        });
    }
    let kind = FrameKind::from_byte(header[6])?;
    if header[7] != 0 {
        return Err(CheckpointError::Corrupt {
            what: format!("nonzero reserved byte {}", header[7]),
        });
    }
    let body_len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    if body_len > MAX_FRAME_BODY {
        return Err(CheckpointError::Corrupt {
            what: format!("frame body length {body_len} exceeds cap {MAX_FRAME_BODY}"),
        });
    }
    Ok((kind, body_len))
}

/// Decodes one frame from a byte slice, validating magic, version, kind,
/// length (against both the cap and the actual byte count) and checksum.
///
/// # Errors
///
/// Returns the [`CheckpointError`] naming the first validation failure.
pub fn decode_frame(bytes: &[u8]) -> std::result::Result<(FrameKind, &[u8]), CheckpointError> {
    if bytes.len() < FRAME_HEADER + 8 {
        return Err(CheckpointError::Truncated);
    }
    let header: [u8; FRAME_HEADER] = bytes[..FRAME_HEADER].try_into().expect("sized");
    let (kind, body_len) = validate_header(&header)?;
    let framed = FRAME_HEADER + body_len;
    if bytes.len() != framed + 8 {
        return Err(CheckpointError::Truncated);
    }
    let stored = u64::from_le_bytes(bytes[framed..framed + 8].try_into().expect("sized"));
    let actual = checksum(&bytes[..framed]);
    if stored != actual {
        return Err(CheckpointError::FingerprintMismatch { stored, actual });
    }
    Ok((kind, &bytes[FRAME_HEADER..framed]))
}

/// Builds the 12-byte header for a frame with the given kind and body
/// length. The caller has already checked the length against
/// [`MAX_FRAME_BODY`].
fn frame_header(kind: FrameKind, body_len: usize) -> [u8; FRAME_HEADER] {
    let mut header = [0u8; FRAME_HEADER];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    header[6] = kind.to_byte();
    header[7] = 0; // reserved
    header[8..12].copy_from_slice(&(body_len as u32).to_le_bytes());
    header
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, body: &[u8]) -> std::io::Result<()> {
    assert!(body.len() <= MAX_FRAME_BODY, "frame body over the cap");
    let header = frame_header(kind, body.len());
    let sum = checksum_parts(&[&header, body]).to_le_bytes();
    // One vectored write of header + body + checksum: the frame goes out
    // without ever being assembled into a contiguous buffer, so streaming
    // a body costs zero copies beyond its own encode. Short vectored
    // writes fall back to `write_all` on each remaining piece.
    let mut bufs = [
        std::io::IoSlice::new(&header),
        std::io::IoSlice::new(body),
        std::io::IoSlice::new(&sum),
    ];
    let total = header.len() + body.len() + sum.len();
    let mut slices = &mut bufs[..];
    let mut written = 0usize;
    while written < total {
        match w.write_vectored(slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ));
            }
            Ok(n) => {
                written += n;
                std::io::IoSlice::advance_slices(&mut slices, n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// Reads one frame from a stream: header first, length validated against
/// the cap before the body buffer is sized, then checksum verification.
///
/// # Errors
///
/// [`ServeError::Disconnected`] on clean EOF before any header byte;
/// [`ServeError::Io`] on short reads; [`ServeError::Protocol`] on
/// validation failure.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>)> {
    let mut body = Vec::new();
    let kind = read_frame_into(r, &mut body)?;
    Ok((kind, body))
}

/// [`read_frame`] into a caller-owned body buffer, reusing its capacity.
/// `body` is cleared and on success holds exactly the frame body; the
/// checksum is verified over the separate header and body buffers
/// ([`checksum_parts`]), so a steady-state reader — a client draining a
/// stream of `RunDone` frames — performs no per-frame allocation at all
/// once the buffer has grown to the stream's largest body.
///
/// # Errors
///
/// As for [`read_frame`].
pub fn read_frame_into(r: &mut impl Read, body: &mut Vec<u8>) -> Result<FrameKind> {
    let mut header = [0u8; FRAME_HEADER];
    // Distinguish a clean close (no bytes at all) from a mid-frame cut.
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Err(ServeError::Disconnected)
            } else {
                Err(ServeError::Protocol(CheckpointError::Truncated))
            };
        }
        filled += n;
    }
    let (kind, body_len) = validate_header(&header)?;
    body.clear();
    // `body_len` is capped by `validate_header`, so this sizes at most
    // MAX_FRAME_BODY + 8 bytes; the extra 8 hold the trailing checksum so
    // body and checksum arrive in one read.
    body.resize(body_len + 8, 0);
    r.read_exact(body)
        .map_err(|_| ServeError::Protocol(CheckpointError::Truncated))?;
    let stored = u64::from_le_bytes(body[body_len..].try_into().expect("sized"));
    let actual = checksum_parts(&[&header, &body[..body_len]]);
    if stored != actual {
        return Err(ServeError::Protocol(CheckpointError::FingerprintMismatch {
            stored,
            actual,
        }));
    }
    body.truncate(body_len);
    Ok(kind)
}

// ---------------------------------------------------------------------------
// Sweep specification
// ---------------------------------------------------------------------------

/// Machine configuration, declaratively: a delta over
/// [`MachineConfig::hpca2003`]. Shipping knobs instead of code keeps the
/// protocol closed-world — the server builds the config, fingerprints it,
/// and derives seeds exactly as a batch study would.
///
/// [`MachineConfig::hpca2003`]: mtvar_sim::config::MachineConfig::hpca2003
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpec {
    /// Number of CPUs.
    pub cpus: u64,
    /// §3.3 perturbation magnitude in ns (0 disables perturbation).
    pub perturbation_max_ns: u64,
    /// Override of the L2 associativity, if any.
    pub l2_associativity: Option<u32>,
    /// Override of the DRAM latency in ns, if any.
    pub dram_latency_ns: Option<u64>,
    /// Use directory coherence instead of the default snooping protocol.
    pub directory: bool,
}

mtvar_sim::impl_snap!(ConfigSpec {
    cpus,
    perturbation_max_ns,
    l2_associativity,
    dram_latency_ns,
    directory,
});

impl ConfigSpec {
    /// The paper's 16-CPU machine with a 4 ns perturbation.
    pub fn hpca2003() -> Self {
        ConfigSpec {
            cpus: 16,
            perturbation_max_ns: 4,
            l2_associativity: None,
            dram_latency_ns: None,
            directory: false,
        }
    }

    /// Builds the concrete [`MachineConfig`](mtvar_sim::config::MachineConfig).
    pub fn build(&self) -> mtvar_sim::config::MachineConfig {
        let mut cfg = mtvar_sim::config::MachineConfig::hpca2003()
            .with_cpus(self.cpus as usize)
            .with_perturbation(self.perturbation_max_ns, 0);
        if let Some(ways) = self.l2_associativity {
            cfg = cfg.with_l2_associativity(ways);
        }
        if let Some(ns) = self.dram_latency_ns {
            cfg = cfg.with_dram_latency_ns(ns);
        }
        if self.directory {
            cfg = cfg.with_directory_coherence();
        }
        cfg
    }
}

/// Workload selection, declaratively. Mirrors the two workload families the
/// studies use: the synthetic sharing microbenchmark and the paper's Table-3
/// profiled benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// [`SharingWorkload`](mtvar_sim::workload::SharingWorkload) with its
    /// five constructor parameters.
    Sharing {
        /// Number of threads.
        threads: u64,
        /// Workload RNG seed.
        seed: u64,
        /// Operations per transaction.
        ops_per_txn: u64,
        /// Footprint in cache blocks.
        footprint_blocks: u64,
        /// A lock acquire every N operations.
        lock_every: u64,
    },
    /// A profiled paper benchmark by [`Benchmark`] name (case-insensitive).
    ///
    /// [`Benchmark`]: mtvar_workloads::Benchmark
    Benchmark {
        /// Benchmark name, e.g. `"oltp"` or `"barnes"`.
        name: String,
        /// Number of CPUs the workload is generated for.
        cpus: u64,
        /// Workload RNG seed.
        seed: u64,
    },
}

impl Snap for WorkloadSpec {
    fn encode_snap(&self, enc: &mut Encoder) {
        match self {
            WorkloadSpec::Sharing {
                threads,
                seed,
                ops_per_txn,
                footprint_blocks,
                lock_every,
            } => {
                enc.put_u8(0);
                threads.encode_snap(enc);
                seed.encode_snap(enc);
                ops_per_txn.encode_snap(enc);
                footprint_blocks.encode_snap(enc);
                lock_every.encode_snap(enc);
            }
            WorkloadSpec::Benchmark { name, cpus, seed } => {
                enc.put_u8(1);
                name.encode_snap(enc);
                cpus.encode_snap(enc);
                seed.encode_snap(enc);
            }
        }
    }

    fn decode_snap(dec: &mut Decoder<'_>) -> std::result::Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(WorkloadSpec::Sharing {
                threads: Snap::decode_snap(dec)?,
                seed: Snap::decode_snap(dec)?,
                ops_per_txn: Snap::decode_snap(dec)?,
                footprint_blocks: Snap::decode_snap(dec)?,
                lock_every: Snap::decode_snap(dec)?,
            }),
            1 => Ok(WorkloadSpec::Benchmark {
                name: Snap::decode_snap(dec)?,
                cpus: Snap::decode_snap(dec)?,
                seed: Snap::decode_snap(dec)?,
            }),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid WorkloadSpec tag {b}"),
            }),
        }
    }

    fn snap_size_hint(&self) -> usize {
        match self {
            WorkloadSpec::Sharing { .. } => 1 + 5 * 8,
            WorkloadSpec::Benchmark { name, .. } => 1 + name.snap_size_hint() + 16,
        }
    }
}

impl WorkloadSpec {
    /// Resolves a benchmark name against [`Benchmark::ALL`]
    /// (case-insensitive).
    ///
    /// [`Benchmark::ALL`]: mtvar_workloads::Benchmark::ALL
    pub fn resolve_benchmark(name: &str) -> Option<mtvar_workloads::Benchmark> {
        mtvar_workloads::Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Validates the spec without building anything: nonzero sizing, a
    /// resolvable benchmark name.
    pub fn validate(&self) -> std::result::Result<(), String> {
        match self {
            WorkloadSpec::Sharing {
                threads,
                ops_per_txn,
                footprint_blocks,
                ..
            } => {
                if *threads == 0 || *ops_per_txn == 0 || *footprint_blocks == 0 {
                    return Err("sharing workload needs threads, ops_per_txn and \
                                footprint_blocks >= 1"
                        .into());
                }
                Ok(())
            }
            WorkloadSpec::Benchmark { name, cpus, .. } => {
                if Self::resolve_benchmark(name).is_none() {
                    return Err(format!("unknown benchmark {name:?}"));
                }
                if *cpus == 0 {
                    return Err("benchmark workload needs cpus >= 1".into());
                }
                Ok(())
            }
        }
    }
}

/// The run plan, declaratively — one-to-one with
/// [`RunPlan`](mtvar_core::runspace::RunPlan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSpec {
    /// Number of perturbed runs.
    pub runs: u64,
    /// Transactions measured per run.
    pub transactions: u64,
    /// Warmup transactions before measurement.
    pub warmup: u64,
    /// Base perturbation seed.
    pub base_seed: u64,
    /// Shared-warmup (checkpoint-forked) vs legacy per-run warmup.
    pub shared_warmup: bool,
}

mtvar_sim::impl_snap!(PlanSpec {
    runs,
    transactions,
    warmup,
    base_seed,
    shared_warmup,
});

impl PlanSpec {
    /// Builds the concrete [`RunPlan`](mtvar_core::runspace::RunPlan).
    pub fn build(&self) -> mtvar_core::runspace::RunPlan {
        mtvar_core::runspace::RunPlan::new(self.transactions)
            .with_runs(self.runs as usize)
            .with_warmup(self.warmup)
            .with_base_seed(self.base_seed)
            .with_shared_warmup(self.shared_warmup)
    }
}

/// Scheduling priority of a submitted job. Higher lanes drain first;
/// submission order breaks ties within a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Interactive work, drained before everything else.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Bulk background work.
    Low,
}

impl Priority {
    /// Lane index, 0 (high) to 2 (low).
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

impl Snap for Priority {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u8(self.lane() as u8);
    }

    fn decode_snap(dec: &mut Decoder<'_>) -> std::result::Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(Priority::High),
            1 => Ok(Priority::Normal),
            2 => Ok(Priority::Low),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid Priority tag {b}"),
            }),
        }
    }

    fn snap_size_hint(&self) -> usize {
        1
    }
}

/// One complete sweep request: what to simulate and how urgently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Machine configuration delta.
    pub config: ConfigSpec,
    /// Workload selection.
    pub workload: WorkloadSpec,
    /// Run plan.
    pub plan: PlanSpec,
    /// Queue lane.
    pub priority: Priority,
}

mtvar_sim::impl_snap!(SweepSpec {
    config,
    workload,
    plan,
    priority,
});

// ---------------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------------

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a sweep; the connection then streams response frames until a
    /// terminal one ([`Response::JobDone`], [`Response::JobFailed`],
    /// [`Response::Cancelled`], or [`Response::Error`]).
    Submit(SweepSpec),
    /// Query a job's state (any connection, not just the submitter's).
    Status {
        /// Job to query.
        job: u64,
    },
    /// Request cancellation of a queued or running job.
    Cancel {
        /// Job to cancel.
        job: u64,
    },
    /// Fetch server statistics.
    Stats,
    /// Ask the server to drain and exit (equivalent to SIGTERM).
    Shutdown,
}

impl Snap for Request {
    fn encode_snap(&self, enc: &mut Encoder) {
        match self {
            Request::Submit(spec) => {
                enc.put_u8(0);
                spec.encode_snap(enc);
            }
            Request::Status { job } => {
                enc.put_u8(1);
                job.encode_snap(enc);
            }
            Request::Cancel { job } => {
                enc.put_u8(2);
                job.encode_snap(enc);
            }
            Request::Stats => enc.put_u8(3),
            Request::Shutdown => enc.put_u8(4),
        }
    }

    fn decode_snap(dec: &mut Decoder<'_>) -> std::result::Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(Request::Submit(Snap::decode_snap(dec)?)),
            1 => Ok(Request::Status {
                job: Snap::decode_snap(dec)?,
            }),
            2 => Ok(Request::Cancel {
                job: Snap::decode_snap(dec)?,
            }),
            3 => Ok(Request::Stats),
            4 => Ok(Request::Shutdown),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid Request tag {b}"),
            }),
        }
    }

    fn snap_size_hint(&self) -> usize {
        match self {
            Request::Submit(spec) => 1 + spec.snap_size_hint(),
            _ => 16,
        }
    }
}

/// Machine-readable rejection reasons carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The queue is at its admission limit.
    QueueFull,
    /// The server is draining for shutdown and takes no new work.
    Draining,
    /// The request was structurally valid but semantically broken (unknown
    /// benchmark, zero-run plan, ...).
    BadRequest,
    /// The referenced job does not exist.
    UnknownJob,
}

impl Snap for ErrorCode {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            ErrorCode::QueueFull => 0,
            ErrorCode::Draining => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::UnknownJob => 3,
        });
    }

    fn decode_snap(dec: &mut Decoder<'_>) -> std::result::Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(ErrorCode::QueueFull),
            1 => Ok(ErrorCode::Draining),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::UnknownJob),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid ErrorCode tag {b}"),
            }),
        }
    }

    fn snap_size_hint(&self) -> usize {
        1
    }
}

/// Lifecycle state of a job, as reported by [`Response::JobStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in a queue lane.
    Queued,
    /// Executing on a dispatcher.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl Snap for JobState {
    fn encode_snap(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
        });
    }

    fn decode_snap(dec: &mut Decoder<'_>) -> std::result::Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(JobState::Queued),
            1 => Ok(JobState::Running),
            2 => Ok(JobState::Done),
            3 => Ok(JobState::Failed),
            4 => Ok(JobState::Cancelled),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid JobState tag {b}"),
            }),
        }
    }

    fn snap_size_hint(&self) -> usize {
        1
    }
}

/// A snapshot of the server's counters, returned by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerStats {
    /// Jobs accepted into the queue since startup.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Submissions rejected by admission control (queue full or draining).
    pub rejected: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Runs that began simulating, across all jobs.
    pub runs_started: u64,
    /// Runs that finished simulating.
    pub runs_completed: u64,
    /// Runs satisfied from the shared result cache.
    pub runs_cached: u64,
    /// Invariant-violation reports observed.
    pub run_violations: u64,
    /// Warmups simulated by coalescer leaders.
    pub coalesce_leaders: u64,
    /// Warmups avoided by coalescer followers.
    pub coalesce_followers: u64,
    /// Warmed snapshots resident in the checkpoint store.
    pub checkpoints_in_memory: u64,
    /// Run results spilled on disk (0 when spill is off).
    pub results_on_disk: u64,
    /// Whether the server is draining for shutdown.
    pub draining: bool,
    /// Drained store warnings (degraded disk operations) — surfaced here
    /// instead of dropped, per the store's `take_warnings` contract.
    pub warnings: Vec<String>,
}

mtvar_sim::impl_snap!(ServerStats {
    submitted,
    completed,
    failed,
    cancelled,
    rejected,
    queue_depth,
    runs_started,
    runs_completed,
    runs_cached,
    run_violations,
    coalesce_leaders,
    coalesce_followers,
    checkpoints_in_memory,
    results_on_disk,
    draining,
    warnings,
});

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The sweep was admitted and assigned a job id.
    Submitted {
        /// Assigned job id.
        job: u64,
    },
    /// The job left the queue and began executing.
    JobStarted {
        /// The job.
        job: u64,
    },
    /// One run's measurement is available (simulated or replayed from
    /// cache); streamed in completion order, which is *not* run order.
    RunDone {
        /// The job.
        job: u64,
        /// Run index within the sweep.
        run_index: u64,
        /// [`golden::run_digest`](mtvar_core::golden::run_digest) of the
        /// run's full measurement.
        digest: u64,
        /// Whether the run replayed from the shared cache.
        cached: bool,
        /// Violation reports recorded for the run.
        violations: u64,
    },
    /// Terminal: the sweep finished. `digest` folds every run's digest in
    /// run-index order ([`fold_digest`]), so it is bit-comparable with a
    /// batch execution of the same plan.
    JobDone {
        /// The job.
        job: u64,
        /// Order-sensitive fold of all per-run digests.
        digest: u64,
        /// Runs in the sweep.
        runs: u64,
        /// Runs that simulated.
        completed: u64,
        /// Runs replayed from cache.
        cached: u64,
        /// Total violation reports across runs.
        violations: u64,
        /// Mean cycles-per-transaction over the sweep.
        mean_cpt: f64,
    },
    /// Terminal: the sweep errored.
    JobFailed {
        /// The job.
        job: u64,
        /// Server-side error rendered to text.
        message: String,
    },
    /// Terminal: the job was cancelled before completing.
    Cancelled {
        /// The job.
        job: u64,
    },
    /// Reply to [`Request::Status`].
    JobStatus {
        /// The job.
        job: u64,
        /// Lifecycle state.
        state: JobState,
        /// Runs finished so far (simulated + cached).
        runs_done: u64,
        /// Total runs in the sweep.
        runs_total: u64,
        /// Final digest, once the job is done.
        digest: Option<u64>,
    },
    /// Reply to [`Request::Cancel`]: whether the cancellation took effect
    /// (`true`) or the job had already reached a terminal state (`false`).
    CancelResult {
        /// The job.
        job: u64,
        /// Whether the job will stop (or already stopped) as cancelled.
        cancelled: bool,
    },
    /// Reply to [`Request::Stats`].
    StatsReport(ServerStats),
    /// Reply to [`Request::Shutdown`]: the drain has begun.
    ShuttingDown,
    /// Typed rejection (admission control, validation, unknown job).
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Snap for Response {
    fn encode_snap(&self, enc: &mut Encoder) {
        match self {
            Response::Submitted { job } => {
                enc.put_u8(0);
                job.encode_snap(enc);
            }
            Response::JobStarted { job } => {
                enc.put_u8(1);
                job.encode_snap(enc);
            }
            Response::RunDone {
                job,
                run_index,
                digest,
                cached,
                violations,
            } => {
                enc.put_u8(2);
                job.encode_snap(enc);
                run_index.encode_snap(enc);
                digest.encode_snap(enc);
                cached.encode_snap(enc);
                violations.encode_snap(enc);
            }
            Response::JobDone {
                job,
                digest,
                runs,
                completed,
                cached,
                violations,
                mean_cpt,
            } => {
                enc.put_u8(3);
                job.encode_snap(enc);
                digest.encode_snap(enc);
                runs.encode_snap(enc);
                completed.encode_snap(enc);
                cached.encode_snap(enc);
                violations.encode_snap(enc);
                mean_cpt.encode_snap(enc);
            }
            Response::JobFailed { job, message } => {
                enc.put_u8(4);
                job.encode_snap(enc);
                message.encode_snap(enc);
            }
            Response::Cancelled { job } => {
                enc.put_u8(5);
                job.encode_snap(enc);
            }
            Response::JobStatus {
                job,
                state,
                runs_done,
                runs_total,
                digest,
            } => {
                enc.put_u8(6);
                job.encode_snap(enc);
                state.encode_snap(enc);
                runs_done.encode_snap(enc);
                runs_total.encode_snap(enc);
                digest.encode_snap(enc);
            }
            Response::CancelResult { job, cancelled } => {
                enc.put_u8(7);
                job.encode_snap(enc);
                cancelled.encode_snap(enc);
            }
            Response::StatsReport(stats) => {
                enc.put_u8(8);
                stats.encode_snap(enc);
            }
            Response::ShuttingDown => enc.put_u8(9),
            Response::Error { code, message } => {
                enc.put_u8(10);
                code.encode_snap(enc);
                message.encode_snap(enc);
            }
        }
    }

    fn decode_snap(dec: &mut Decoder<'_>) -> std::result::Result<Self, CheckpointError> {
        match dec.get_u8()? {
            0 => Ok(Response::Submitted {
                job: Snap::decode_snap(dec)?,
            }),
            1 => Ok(Response::JobStarted {
                job: Snap::decode_snap(dec)?,
            }),
            2 => Ok(Response::RunDone {
                job: Snap::decode_snap(dec)?,
                run_index: Snap::decode_snap(dec)?,
                digest: Snap::decode_snap(dec)?,
                cached: Snap::decode_snap(dec)?,
                violations: Snap::decode_snap(dec)?,
            }),
            3 => Ok(Response::JobDone {
                job: Snap::decode_snap(dec)?,
                digest: Snap::decode_snap(dec)?,
                runs: Snap::decode_snap(dec)?,
                completed: Snap::decode_snap(dec)?,
                cached: Snap::decode_snap(dec)?,
                violations: Snap::decode_snap(dec)?,
                mean_cpt: Snap::decode_snap(dec)?,
            }),
            4 => Ok(Response::JobFailed {
                job: Snap::decode_snap(dec)?,
                message: Snap::decode_snap(dec)?,
            }),
            5 => Ok(Response::Cancelled {
                job: Snap::decode_snap(dec)?,
            }),
            6 => Ok(Response::JobStatus {
                job: Snap::decode_snap(dec)?,
                state: Snap::decode_snap(dec)?,
                runs_done: Snap::decode_snap(dec)?,
                runs_total: Snap::decode_snap(dec)?,
                digest: Snap::decode_snap(dec)?,
            }),
            7 => Ok(Response::CancelResult {
                job: Snap::decode_snap(dec)?,
                cancelled: Snap::decode_snap(dec)?,
            }),
            8 => Ok(Response::StatsReport(Snap::decode_snap(dec)?)),
            9 => Ok(Response::ShuttingDown),
            10 => Ok(Response::Error {
                code: Snap::decode_snap(dec)?,
                message: Snap::decode_snap(dec)?,
            }),
            b => Err(CheckpointError::Corrupt {
                what: format!("invalid Response tag {b}"),
            }),
        }
    }

    fn snap_size_hint(&self) -> usize {
        match self {
            Response::StatsReport(stats) => 1 + stats.snap_size_hint(),
            Response::JobFailed { message, .. } | Response::Error { message, .. } => {
                16 + message.snap_size_hint()
            }
            _ => 64,
        }
    }
}

/// Encodes a request as one complete frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(req.snap_size_hint());
    req.encode_snap(&mut enc);
    encode_frame(FrameKind::Request, &enc.into_bytes())
}

/// Decodes a request from one complete frame, rejecting response frames and
/// trailing bytes.
///
/// # Errors
///
/// Returns the [`CheckpointError`] naming the first validation failure.
pub fn decode_request(frame: &[u8]) -> std::result::Result<Request, CheckpointError> {
    let (kind, body) = decode_frame(frame)?;
    if kind != FrameKind::Request {
        return Err(CheckpointError::Corrupt {
            what: "expected a request frame".into(),
        });
    }
    let mut dec = Decoder::new(body);
    let req = Request::decode_snap(&mut dec)?;
    dec.finish()?;
    Ok(req)
}

/// Encodes a response as one complete frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(resp.snap_size_hint());
    resp.encode_snap(&mut enc);
    encode_frame(FrameKind::Response, &enc.into_bytes())
}

/// A per-connection frame writer that owns one reusable body buffer.
///
/// [`encode_response`] + `write_all` builds every frame twice: the body is
/// encoded into a fresh `Vec`, then copied into a second fresh `Vec`
/// behind a header. For a one-shot control reply that is noise; for the
/// `Submit` path — which streams one `RunDone` frame per run, thousands per
/// sweep — it is two allocations and a full body copy per run. The sink
/// encodes each response into the same recycled buffer
/// ([`Encoder::from_vec`]) and hands header, body, and checksum to one
/// vectored [`write_frame`], so a draining connection reaches a
/// zero-allocation, zero-copy steady state.
#[derive(Debug, Default)]
pub struct FrameSink {
    body: Vec<u8>,
}

impl FrameSink {
    /// An empty sink; the body buffer grows to the connection's largest
    /// response and stays there.
    pub fn new() -> Self {
        FrameSink::default()
    }

    /// Encodes `resp` into the recycled body buffer and writes it as one
    /// vectored frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_response(&mut self, w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
        let mut enc = Encoder::from_vec(std::mem::take(&mut self.body));
        resp.encode_snap(&mut enc);
        self.body = enc.into_bytes();
        write_frame(w, FrameKind::Response, &self.body)
    }
}

/// Decodes a response from one complete frame, rejecting request frames and
/// trailing bytes.
///
/// # Errors
///
/// Returns the [`CheckpointError`] naming the first validation failure.
pub fn decode_response(frame: &[u8]) -> std::result::Result<Response, CheckpointError> {
    let (kind, body) = decode_frame(frame)?;
    if kind != FrameKind::Response {
        return Err(CheckpointError::Corrupt {
            what: "expected a response frame".into(),
        });
    }
    let mut dec = Decoder::new(body);
    let resp = Response::decode_snap(&mut dec)?;
    dec.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_spec() -> SweepSpec {
        SweepSpec {
            config: ConfigSpec {
                cpus: 4,
                perturbation_max_ns: 4,
                l2_associativity: Some(2),
                dram_latency_ns: None,
                directory: false,
            },
            workload: WorkloadSpec::Sharing {
                threads: 8,
                seed: 42,
                ops_per_txn: 40,
                footprint_blocks: 4096,
                lock_every: 10,
            },
            plan: PlanSpec {
                runs: 6,
                transactions: 25,
                warmup: 10,
                base_seed: 0,
                shared_warmup: true,
            },
            priority: Priority::Normal,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(sample_spec()),
            Request::Submit(SweepSpec {
                workload: WorkloadSpec::Benchmark {
                    name: "oltp".into(),
                    cpus: 4,
                    seed: 7,
                },
                priority: Priority::High,
                ..sample_spec()
            }),
            Request::Status { job: 7 },
            Request::Cancel { job: 9 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Submitted { job: 1 },
            Response::JobStarted { job: 1 },
            Response::RunDone {
                job: 1,
                run_index: 3,
                digest: 0xDEAD_BEEF,
                cached: true,
                violations: 2,
            },
            Response::JobDone {
                job: 1,
                digest: 0xABCD,
                runs: 6,
                completed: 4,
                cached: 2,
                violations: 0,
                mean_cpt: 1234.5,
            },
            Response::JobFailed {
                job: 1,
                message: "deadlock".into(),
            },
            Response::Cancelled { job: 1 },
            Response::JobStatus {
                job: 1,
                state: JobState::Running,
                runs_done: 2,
                runs_total: 6,
                digest: None,
            },
            Response::CancelResult {
                job: 1,
                cancelled: false,
            },
            Response::StatsReport(ServerStats {
                submitted: 3,
                warnings: vec!["w".into()],
                draining: true,
                ..ServerStats::default()
            }),
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::Draining,
                message: "bye".into(),
            },
        ];
        for resp in resps {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame).unwrap(), resp);
        }
    }

    #[test]
    fn kinds_do_not_cross() {
        let frame = encode_request(&Request::Stats);
        assert!(decode_response(&frame).is_err());
        let frame = encode_response(&Response::ShuttingDown);
        assert!(decode_request(&frame).is_err());
    }

    #[test]
    fn stream_round_trip_distinguishes_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"body").unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        let (kind, body) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(body, b"body");
        // Clean EOF at a frame boundary is Disconnected...
        match read_frame(&mut cursor) {
            Err(ServeError::Disconnected) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // ...a cut inside the header is a protocol error.
        let mut cut = std::io::Cursor::new(buf[..5].to_vec());
        match read_frame(&mut cut) {
            Err(ServeError::Protocol(CheckpointError::Truncated)) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn hostile_length_is_rejected_from_the_header() {
        let mut frame = encode_frame(FrameKind::Request, b"x");
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&frame).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt { ref what } if what.contains("exceeds cap")),
            "got {err:?}"
        );
        // The stream reader rejects it too, before allocating.
        let mut cursor = std::io::Cursor::new(frame);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn digest_fold_is_order_sensitive() {
        let a = fold_digest(fold_digest(0, 1), 2);
        let b = fold_digest(fold_digest(0, 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn checksum_parts_matches_contiguous_checksum() {
        let bytes = b"the frame header then the frame body";
        for split in [0, 1, 12, bytes.len()] {
            assert_eq!(
                checksum_parts(&[&bytes[..split], &bytes[split..]]),
                checksum(bytes),
                "split at {split}"
            );
        }
        assert_eq!(checksum_parts(&[]), checksum(b""));
    }

    #[test]
    fn vectored_write_frame_is_byte_identical_to_encode_frame() {
        for body in [&b""[..], b"x", &[0xA5u8; 4096]] {
            let mut streamed = Vec::new();
            write_frame(&mut streamed, FrameKind::Response, body).unwrap();
            assert_eq!(streamed, encode_frame(FrameKind::Response, body));
        }
    }

    #[test]
    fn read_frame_into_reuses_one_buffer_across_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Response, b"first, the longer body").unwrap();
        write_frame(&mut wire, FrameKind::Request, b"second").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut body = Vec::new();
        assert_eq!(
            read_frame_into(&mut cursor, &mut body).unwrap(),
            FrameKind::Response
        );
        assert_eq!(body, b"first, the longer body");
        let capacity = body.capacity();
        assert_eq!(
            read_frame_into(&mut cursor, &mut body).unwrap(),
            FrameKind::Request
        );
        assert_eq!(body, b"second");
        assert_eq!(body.capacity(), capacity, "no regrowth for smaller frames");
        // A corrupted checksum still fails through the split-buffer path.
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Response, b"body").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 1;
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame_into(&mut cursor, &mut body),
            Err(ServeError::Protocol(
                CheckpointError::FingerprintMismatch { .. }
            ))
        ));
    }

    #[test]
    fn frame_sink_frames_match_encode_response() {
        let resps = [
            Response::Submitted { job: 9 },
            Response::RunDone {
                job: 9,
                run_index: 0,
                digest: 0x1234_5678,
                cached: false,
                violations: 0,
            },
            Response::ShuttingDown,
        ];
        let mut sink = FrameSink::new();
        let mut streamed = Vec::new();
        let mut reference = Vec::new();
        for resp in &resps {
            sink.write_response(&mut streamed, resp).unwrap();
            reference.extend_from_slice(&encode_response(resp));
        }
        assert_eq!(streamed, reference);
    }
}
