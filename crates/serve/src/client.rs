//! The blocking client API the `mtvar` CLI and the tests speak through.
//!
//! One connection carries one request. For `submit` the connection then
//! streams response frames — `JobStarted`, one `RunDone` per finished run,
//! and a terminal frame — which [`Client::submit`] surfaces through a
//! callback before returning the typed outcome. Typed server rejections
//! (queue full, draining, bad request, unknown job) surface as
//! [`ServeError::Rejected`], so callers can distinguish "the server said no"
//! from "the wire broke".

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use mtvar_sim::checkpoint::{CheckpointError, Decoder, Snap};

use crate::protocol::{
    encode_request, read_frame_into, FrameKind, JobState, Request, Response, ServerStats, SweepSpec,
};
use crate::{Result, ServeError};

/// A completed sweep, as reported by the terminal [`Response::JobDone`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job.
    pub job: u64,
    /// Order-sensitive fold of every run's digest — bit-comparable with a
    /// batch execution of the same plan.
    pub digest: u64,
    /// Runs in the sweep.
    pub runs: u64,
    /// Runs that simulated.
    pub completed: u64,
    /// Runs replayed from the server's shared cache.
    pub cached: u64,
    /// Total violation reports across runs.
    pub violations: u64,
    /// Mean cycles-per-transaction over the sweep.
    pub mean_cpt: f64,
}

/// How a submitted sweep ended.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepOutcome {
    /// The sweep finished; statistics are available.
    Done(JobOutcome),
    /// The job was cancelled before completing.
    Cancelled {
        /// The cancelled job.
        job: u64,
    },
}

/// One job's status, as reported by [`Response::JobStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusReport {
    /// The job.
    pub job: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Runs finished so far (simulated + cached).
    pub runs_done: u64,
    /// Total runs in the sweep.
    pub runs_total: u64,
    /// Final digest, once the job is done.
    pub digest: Option<u64>,
}

/// A client of one server socket. Stateless: every call opens a fresh
/// connection, so one client value can be shared or recreated freely.
#[derive(Debug, Clone)]
pub struct Client {
    socket: PathBuf,
}

impl Client {
    /// A client for the server listening on `socket`.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Client {
            socket: socket.into(),
        }
    }

    fn open(&self, request: &Request) -> Result<UnixStream> {
        let mut stream = UnixStream::connect(&self.socket)?;
        stream.write_all(&encode_request(request))?;
        stream.flush()?;
        Ok(stream)
    }

    /// Submits a sweep and blocks until its terminal frame, invoking
    /// `on_event` for every streamed response (`JobStarted`, each `RunDone`)
    /// along the way.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] if admission or validation said no;
    /// [`ServeError::JobFailed`] if the sweep errored server-side;
    /// [`ServeError::Disconnected`] if the stream ended without a terminal
    /// frame; I/O and protocol errors as themselves.
    pub fn submit(
        &self,
        spec: SweepSpec,
        mut on_event: impl FnMut(&Response),
    ) -> Result<SweepOutcome> {
        let mut stream = self.open(&Request::Submit(spec))?;
        // One body buffer for the whole drain: the stream carries a
        // `RunDone` frame per run, and reusing the buffer keeps the hot
        // loop allocation-free once it has grown to the largest frame.
        let mut body = Vec::new();
        match read_response_into(&mut stream, &mut body)? {
            Response::Submitted { .. } => {}
            Response::Error { code, message } => {
                return Err(ServeError::Rejected { code, message });
            }
            other => return Err(unexpected(&other)),
        }
        loop {
            let event = read_response_into(&mut stream, &mut body)?;
            on_event(&event);
            match event {
                Response::JobDone {
                    job,
                    digest,
                    runs,
                    completed,
                    cached,
                    violations,
                    mean_cpt,
                } => {
                    return Ok(SweepOutcome::Done(JobOutcome {
                        job,
                        digest,
                        runs,
                        completed,
                        cached,
                        violations,
                        mean_cpt,
                    }));
                }
                Response::JobFailed { job, message } => {
                    return Err(ServeError::JobFailed { job, message });
                }
                Response::Cancelled { job } => return Ok(SweepOutcome::Cancelled { job }),
                Response::Submitted { .. }
                | Response::JobStarted { .. }
                | Response::RunDone { .. } => {}
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Queries a job's status.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] with [`ErrorCode::UnknownJob`] if the server
    /// does not know the job; I/O and protocol errors as themselves.
    ///
    /// [`ErrorCode::UnknownJob`]: crate::protocol::ErrorCode::UnknownJob
    pub fn status(&self, job: u64) -> Result<StatusReport> {
        let mut stream = self.open(&Request::Status { job })?;
        match read_response(&mut stream)? {
            Response::JobStatus {
                job,
                state,
                runs_done,
                runs_total,
                digest,
            } => Ok(StatusReport {
                job,
                state,
                runs_done,
                runs_total,
                digest,
            }),
            Response::Error { code, message } => Err(ServeError::Rejected { code, message }),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests cancellation; `true` means the request can still take
    /// effect, `false` that the job already reached a terminal state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] for an unknown job; I/O and protocol errors
    /// as themselves.
    pub fn cancel(&self, job: u64) -> Result<bool> {
        let mut stream = self.open(&Request::Cancel { job })?;
        match read_response(&mut stream)? {
            Response::CancelResult { cancelled, .. } => Ok(cancelled),
            Response::Error { code, message } => Err(ServeError::Rejected { code, message }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's statistics snapshot.
    ///
    /// # Errors
    ///
    /// I/O and protocol errors as themselves.
    pub fn stats(&self) -> Result<ServerStats> {
        let mut stream = self.open(&Request::Stats)?;
        match read_response(&mut stream)? {
            Response::StatsReport(stats) => Ok(stats),
            Response::Error { code, message } => Err(ServeError::Rejected { code, message }),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain and exit, like SIGTERM.
    ///
    /// # Errors
    ///
    /// I/O and protocol errors as themselves.
    pub fn shutdown(&self) -> Result<()> {
        let mut stream = self.open(&Request::Shutdown)?;
        match read_response(&mut stream)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { code, message } => Err(ServeError::Rejected { code, message }),
            other => Err(unexpected(&other)),
        }
    }
}

fn read_response(stream: &mut UnixStream) -> Result<Response> {
    read_response_into(stream, &mut Vec::new())
}

/// [`read_response`] through a caller-owned, recycled frame-body buffer.
fn read_response_into(stream: &mut UnixStream, body: &mut Vec<u8>) -> Result<Response> {
    let kind = read_frame_into(stream, body)?;
    if kind != FrameKind::Response {
        return Err(ServeError::Protocol(CheckpointError::Corrupt {
            what: "expected a response frame".into(),
        }));
    }
    let mut dec = Decoder::new(body);
    let resp = Response::decode_snap(&mut dec)?;
    dec.finish()?;
    Ok(resp)
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Protocol(CheckpointError::Corrupt {
        what: format!("unexpected response {resp:?}"),
    })
}
