//! The warmup coalescer: single-flight execution of shared warmups.
//!
//! Two sweeps that agree on `(neutralized config, workload, base seed,
//! warmup)` — the [`CheckpointKey`] the executor's checkpoint store already
//! uses — need the *same* warmed snapshot: warmup runs unperturbed, so even
//! sweeps with different perturbation magnitudes coalesce. Without
//! coordination, N concurrent jobs would each simulate that warmup before
//! the first insert lands in the store. The coalescer closes the window:
//! the first job to arrive on a family becomes its **leader** and simulates
//! the warmup (inserting the snapshot into the shared store), every other
//! job **follows** — blocking until the leader's insert is visible, then
//! proceeding straight to a store hit and a CoW fork family. N clients
//! asking overlapping questions pay for one warmup.
//!
//! Correctness is untouched: the leader produces exactly the snapshot the
//! executor would have produced anyway, and followers re-enter
//! [`Executor::run_space`] unchanged — same fingerprints, same seeds, same
//! digests. A leader that *fails* clears the family so a waiting follower
//! retries as the new leader; an error never wedges the family.
//!
//! [`Executor::run_space`]: mtvar_core::runspace::Executor::run_space

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use mtvar_core::checkpoint::CheckpointKey;

/// How a job's warmup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This job simulated the family's warmup.
    Leader,
    /// This job reused a warmup another job simulated (or was simulating).
    Follower,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyState {
    InFlight,
    Done,
}

/// Single-flight warmup coordinator, shared by every dispatcher.
#[derive(Debug, Default)]
pub struct WarmupCoalescer {
    families: Mutex<HashMap<CheckpointKey, FamilyState>>,
    settled: Condvar,
    leaders: AtomicU64,
    followers: AtomicU64,
}

impl WarmupCoalescer {
    /// An empty coalescer.
    pub fn new() -> Self {
        WarmupCoalescer::default()
    }

    /// Runs `warm` exactly once per family: the caller either becomes the
    /// leader (and runs it) or blocks until the current leader finishes and
    /// returns as a follower. `warm` must leave the warmed snapshot
    /// somewhere followers can find it — in practice the executor's shared
    /// [`CheckpointStore`](mtvar_core::checkpoint::CheckpointStore), which
    /// [`Executor::warm_checkpoint`] inserts into.
    ///
    /// # Errors
    ///
    /// Propagates the leader's `warm` error to the leader alone; the family
    /// is cleared so a waiting follower retries as the new leader.
    ///
    /// [`Executor::warm_checkpoint`]: mtvar_core::runspace::Executor::warm_checkpoint
    pub fn coalesce<E>(
        &self,
        key: CheckpointKey,
        warm: impl FnOnce() -> std::result::Result<(), E>,
    ) -> std::result::Result<Role, E> {
        {
            let mut families = self.families.lock().expect("coalescer poisoned");
            loop {
                match families.get(&key) {
                    None => {
                        families.insert(key, FamilyState::InFlight);
                        break; // become leader, run warm() below, lock released
                    }
                    Some(FamilyState::Done) => {
                        self.followers.fetch_add(1, Ordering::Relaxed);
                        return Ok(Role::Follower);
                    }
                    Some(FamilyState::InFlight) => {
                        families = self.settled.wait(families).expect("coalescer poisoned");
                        // Re-inspect: Done -> follow; removed (leader
                        // failed) -> contend for leadership.
                    }
                }
            }
        }
        match warm() {
            Ok(()) => {
                let mut families = self.families.lock().expect("coalescer poisoned");
                families.insert(key, FamilyState::Done);
                drop(families);
                self.settled.notify_all();
                self.leaders.fetch_add(1, Ordering::Relaxed);
                Ok(Role::Leader)
            }
            Err(e) => {
                let mut families = self.families.lock().expect("coalescer poisoned");
                families.remove(&key);
                drop(families);
                self.settled.notify_all();
                Err(e)
            }
        }
    }

    /// Warmups simulated by leaders.
    pub fn leaders(&self) -> u64 {
        self.leaders.load(Ordering::Relaxed)
    }

    /// Warmups avoided by followers.
    pub fn followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    fn key(warmup: u64) -> CheckpointKey {
        CheckpointKey {
            config: 1,
            workload: 2,
            base_seed: 3,
            warmup,
        }
    }

    #[test]
    fn one_leader_many_followers() {
        let coalescer = Arc::new(WarmupCoalescer::new());
        let warmups = Arc::new(AtomicUsize::new(0));
        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        // The leader: enters warm(), signals, then blocks until released —
        // guaranteeing the followers arrive while the family is in flight.
        let lc = Arc::clone(&coalescer);
        let lw = Arc::clone(&warmups);
        let le = Arc::clone(&entered);
        let lr = Arc::clone(&release);
        let leader = std::thread::spawn(move || {
            lc.coalesce(key(10), || {
                lw.fetch_add(1, Ordering::SeqCst);
                le.wait();
                lr.wait();
                Ok::<(), ()>(())
            })
            .unwrap()
        });
        entered.wait(); // the leader is now inside warm()

        let followers: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&coalescer);
                let w = Arc::clone(&warmups);
                std::thread::spawn(move || {
                    c.coalesce(key(10), || {
                        w.fetch_add(1, Ordering::SeqCst);
                        Ok::<(), ()>(())
                    })
                    .unwrap()
                })
            })
            .collect();
        // Give the followers time to park on the condvar, then release.
        std::thread::sleep(Duration::from_millis(20));
        release.wait();

        assert_eq!(leader.join().unwrap(), Role::Leader);
        for f in followers {
            assert_eq!(f.join().unwrap(), Role::Follower);
        }
        assert_eq!(warmups.load(Ordering::SeqCst), 1, "exactly one warmup ran");
        assert_eq!(coalescer.leaders(), 1);
        assert_eq!(coalescer.followers(), 3);
        // Late arrivals on a settled family follow without waiting.
        let role = coalescer.coalesce(key(10), || Ok::<(), ()>(())).unwrap();
        assert_eq!(role, Role::Follower);
        assert_eq!(coalescer.followers(), 4);
    }

    #[test]
    fn distinct_families_do_not_coalesce() {
        let coalescer = WarmupCoalescer::new();
        assert_eq!(
            coalescer.coalesce(key(10), || Ok::<(), ()>(())).unwrap(),
            Role::Leader
        );
        assert_eq!(
            coalescer.coalesce(key(20), || Ok::<(), ()>(())).unwrap(),
            Role::Leader,
            "different warmup, different family"
        );
        assert_eq!(coalescer.leaders(), 2);
        assert_eq!(coalescer.followers(), 0);
    }

    #[test]
    fn failed_leader_clears_the_family_for_retry() {
        let coalescer = Arc::new(WarmupCoalescer::new());
        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        let lc = Arc::clone(&coalescer);
        let le = Arc::clone(&entered);
        let lr = Arc::clone(&release);
        let leader = std::thread::spawn(move || {
            lc.coalesce(key(10), || {
                le.wait();
                lr.wait();
                Err::<(), &str>("warmup exploded")
            })
        });
        entered.wait();
        let fc = Arc::clone(&coalescer);
        let retry = std::thread::spawn(move || fc.coalesce(key(10), || Ok::<(), &str>(())));
        std::thread::sleep(Duration::from_millis(20));
        release.wait();

        assert_eq!(leader.join().unwrap().unwrap_err(), "warmup exploded");
        // The waiter contended for leadership after the failure and ran the
        // warmup itself.
        assert_eq!(retry.join().unwrap().unwrap(), Role::Leader);
        assert_eq!(coalescer.leaders(), 1);
        assert_eq!(coalescer.followers(), 0);
    }
}
