//! The prioritized job queue and job registry.
//!
//! Admission control happens at submit time: a bounded queue depth keeps a
//! flood of sweeps from accumulating unbounded state, and a draining server
//! takes no new work at all — both rejections are *typed*
//! ([`crate::protocol::ErrorCode`]), never silent drops. Admitted jobs wait
//! in one of three priority lanes; dispatchers pop the highest non-empty
//! lane, FIFO within a lane. Cancellation is a per-job flag: a queued job
//! flips to `Cancelled` the moment a dispatcher (or the canceller) sees the
//! flag, while a running job finishes its sweep — the executor's runs are
//! cached, so finishing wastes nothing — and then reports `Cancelled`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use crate::protocol::{JobState, Response, SweepSpec};

/// Everything the server tracks about one submitted job. Shared between the
/// submitting connection, the dispatcher executing it, and any `status` /
/// `cancel` connection that names it.
#[derive(Debug)]
pub struct JobRecord {
    /// The job's id (unique per server lifetime, ascending).
    pub id: u64,
    /// The sweep to execute.
    pub spec: SweepSpec,
    /// Stream back to the submitting connection. Attached at construction —
    /// before the job is visible to any dispatcher — so no event can race
    /// past a not-yet-registered receiver.
    events: Sender<Response>,
    state: Mutex<JobState>,
    cancel: AtomicBool,
    runs_done: AtomicU64,
    digest: AtomicU64,
    has_digest: AtomicBool,
}

impl JobRecord {
    fn new(id: u64, spec: SweepSpec, events: Sender<Response>) -> Self {
        JobRecord {
            id,
            spec,
            events,
            state: Mutex::new(JobState::Queued),
            cancel: AtomicBool::new(false),
            runs_done: AtomicU64::new(0),
            digest: AtomicU64::new(0),
            has_digest: AtomicBool::new(false),
        }
    }

    /// Streams a response frame toward the submitting client. Best-effort:
    /// a disconnected client just stops listening — the job still runs to
    /// completion (its results land in the shared cache either way).
    pub fn send(&self, response: Response) {
        let _ = self.events.send(response);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        *self.state.lock().expect("job poisoned")
    }

    /// Moves the job to `state`.
    pub fn set_state(&self, state: JobState) {
        *self.state.lock().expect("job poisoned") = state;
    }

    /// Requests cancellation. Returns `true` if the job had not yet reached
    /// a terminal state (so the request can still take effect).
    pub fn request_cancel(&self) -> bool {
        self.cancel.store(true, Ordering::SeqCst);
        !matches!(
            self.state(),
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Whether cancellation was requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Records one finished run (simulated or cached).
    pub fn note_run_done(&self) {
        self.runs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs finished so far.
    pub fn runs_done(&self) -> u64 {
        self.runs_done.load(Ordering::Relaxed)
    }

    /// Stores the job's final folded digest.
    pub fn set_digest(&self, digest: u64) {
        self.digest.store(digest, Ordering::SeqCst);
        self.has_digest.store(true, Ordering::SeqCst);
    }

    /// The final digest, once the job completed.
    pub fn digest(&self) -> Option<u64> {
        if self.has_digest.load(Ordering::SeqCst) {
            Some(self.digest.load(Ordering::SeqCst))
        } else {
            None
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at its depth limit.
    QueueFull,
    /// The server is draining for shutdown.
    Draining,
}

#[derive(Debug, Default)]
struct QueueInner {
    lanes: [VecDeque<Arc<JobRecord>>; 3],
    draining: bool,
    /// Dispatchers still inside `run` — drained shutdown waits for zero.
    running: usize,
}

impl QueueInner {
    fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// The three-lane priority queue with admission control.
///
/// All operations take an internal lock; `pop_blocking` parks on a condvar
/// until work arrives or the queue is told to drain dry.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    limit: usize,
    next_id: AtomicU64,
}

impl JobQueue {
    /// A queue admitting at most `limit` queued jobs (clamped to >= 1).
    pub fn new(limit: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
            limit: limit.max(1),
            next_id: AtomicU64::new(1),
        }
    }

    /// Admits `spec` into its priority lane, or rejects it with a typed
    /// reason. `events` is the submitting connection's response stream,
    /// attached before the job is visible to dispatchers.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Draining`] once [`JobQueue::drain`] was called;
    /// [`AdmissionError::QueueFull`] at the depth limit.
    pub fn submit(
        &self,
        spec: SweepSpec,
        events: Sender<Response>,
    ) -> std::result::Result<Arc<JobRecord>, AdmissionError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.draining {
            return Err(AdmissionError::Draining);
        }
        if inner.depth() >= self.limit {
            return Err(AdmissionError::QueueFull);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let lane = spec.priority.lane();
        let record = Arc::new(JobRecord::new(id, spec, events));
        inner.lanes[lane].push_back(Arc::clone(&record));
        drop(inner);
        self.ready.notify_one();
        Ok(record)
    }

    /// Pops the next job: highest non-empty lane, FIFO within it. Blocks
    /// until work arrives; returns `None` once the queue is draining *and*
    /// empty (the dispatcher's signal to exit). The popped job may already
    /// carry a cancellation request — the dispatcher checks the flag and
    /// reports `Cancelled` without executing the sweep.
    pub fn pop_blocking(&self) -> Option<Arc<JobRecord>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            let next = inner.lanes.iter_mut().find_map(|lane| lane.pop_front());
            match next {
                Some(job) => {
                    inner.running += 1;
                    return Some(job);
                }
                None if inner.draining => return None,
                None => {
                    inner = self.ready.wait(inner).expect("queue poisoned");
                }
            }
        }
    }

    /// Marks the popping dispatcher's job as finished executing (success,
    /// failure, or cancellation alike). Pairs with [`JobQueue::pop_blocking`].
    pub fn note_done(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.running = inner.running.saturating_sub(1);
        drop(inner);
        // Wake drain waiters (and any dispatcher re-checking the exit
        // condition).
        self.ready.notify_all();
    }

    /// Switches to draining: new submissions are rejected, queued jobs still
    /// execute, and dispatchers exit once the lanes are dry.
    pub fn drain(&self) {
        self.inner.lock().expect("queue poisoned").draining = true;
        self.ready.notify_all();
    }

    /// Whether the queue is draining.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().expect("queue poisoned").draining
    }

    /// Blocks until the queue is empty and no dispatcher is mid-job. Only
    /// meaningful after [`JobQueue::drain`].
    pub fn wait_idle(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        while inner.depth() > 0 || inner.running > 0 {
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Jobs currently queued (not counting the one a dispatcher holds).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").depth()
    }

    /// Whether the queue is empty *and* no dispatcher is mid-job — the
    /// non-blocking peek the accept loop polls during a drain.
    pub fn is_idle(&self) -> bool {
        let inner = self.inner.lock().expect("queue poisoned");
        inner.depth() == 0 && inner.running == 0
    }
}

/// The id → record map behind `status` and `cancel` queries.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<std::collections::HashMap<u64, Arc<JobRecord>>>,
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        JobRegistry::default()
    }

    /// Registers a job under its id.
    pub fn register(&self, job: Arc<JobRecord>) {
        self.jobs
            .lock()
            .expect("registry poisoned")
            .insert(job.id, job);
    }

    /// Looks a job up by id.
    pub fn get(&self, id: u64) -> Option<Arc<JobRecord>> {
        self.jobs
            .lock()
            .expect("registry poisoned")
            .get(&id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ConfigSpec, PlanSpec, Priority, WorkloadSpec};

    fn spec(priority: Priority) -> SweepSpec {
        SweepSpec {
            config: ConfigSpec::hpca2003(),
            workload: WorkloadSpec::Sharing {
                threads: 4,
                seed: 1,
                ops_per_txn: 10,
                footprint_blocks: 64,
                lock_every: 5,
            },
            plan: PlanSpec {
                runs: 2,
                transactions: 10,
                warmup: 0,
                base_seed: 0,
                shared_warmup: true,
            },
            priority,
        }
    }

    fn sink() -> Sender<Response> {
        std::sync::mpsc::channel().0
    }

    #[test]
    fn priorities_drain_high_first_fifo_within_lane() {
        let q = JobQueue::new(16);
        let low = q.submit(spec(Priority::Low), sink()).unwrap();
        let norm1 = q.submit(spec(Priority::Normal), sink()).unwrap();
        let high = q.submit(spec(Priority::High), sink()).unwrap();
        let norm2 = q.submit(spec(Priority::Normal), sink()).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop_blocking().unwrap().id).collect();
        assert_eq!(order, vec![high.id, norm1.id, norm2.id, low.id]);
    }

    #[test]
    fn admission_rejects_over_limit_and_draining() {
        let q = JobQueue::new(2);
        q.submit(spec(Priority::Normal), sink()).unwrap();
        q.submit(spec(Priority::Normal), sink()).unwrap();
        assert_eq!(
            q.submit(spec(Priority::Normal), sink()).unwrap_err(),
            AdmissionError::QueueFull
        );
        q.drain();
        assert_eq!(
            q.submit(spec(Priority::High), sink()).unwrap_err(),
            AdmissionError::Draining
        );
        // Queued jobs still pop during the drain; then the queue reports
        // exhaustion instead of blocking.
        assert!(q.pop_blocking().is_some());
        q.note_done();
        assert!(q.pop_blocking().is_some());
        q.note_done();
        assert!(q.pop_blocking().is_none());
        q.wait_idle();
    }

    #[test]
    fn cancellation_flag_survives_the_queue() {
        let q = JobQueue::new(8);
        let a = q.submit(spec(Priority::Normal), sink()).unwrap();
        let b = q.submit(spec(Priority::Normal), sink()).unwrap();
        assert!(a.request_cancel());
        q.drain();
        // The dispatcher sees the flag on the popped record and reports
        // Cancelled instead of executing.
        let popped = q.pop_blocking().unwrap();
        assert_eq!(popped.id, a.id);
        assert!(popped.cancel_requested());
        popped.set_state(JobState::Cancelled);
        q.note_done();
        assert!(
            !a.request_cancel(),
            "re-cancelling a terminal job reports no effect"
        );
        let popped = q.pop_blocking().unwrap();
        assert_eq!(popped.id, b.id);
        assert!(!popped.cancel_requested());
        q.note_done();
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn record_tracks_progress_and_digest() {
        let q = JobQueue::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        let job = q.submit(spec(Priority::Normal), tx).unwrap();
        assert_eq!(job.state(), JobState::Queued);
        assert_eq!(job.digest(), None);
        job.note_run_done();
        job.note_run_done();
        assert_eq!(job.runs_done(), 2);
        job.set_digest(0xFEED);
        assert_eq!(job.digest(), Some(0xFEED));
        job.send(Response::JobStarted { job: job.id });
        assert_eq!(rx.try_recv().unwrap(), Response::JobStarted { job: job.id });
        drop(rx);
        job.send(Response::Cancelled { job: job.id }); // must not panic
        let reg = JobRegistry::new();
        reg.register(Arc::clone(&job));
        assert_eq!(reg.get(job.id).unwrap().id, job.id);
        assert!(reg.get(9999).is_none());
    }

    #[test]
    fn pop_blocks_until_submit() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop_blocking().map(|j| j.id));
        std::thread::sleep(std::time::Duration::from_millis(20));
        let job = q.submit(spec(Priority::Normal), sink()).unwrap();
        assert_eq!(handle.join().unwrap(), Some(job.id));
    }
}
