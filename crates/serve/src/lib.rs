//! `mtvar-serve`: the persistent run-space service.
//!
//! PRs 1–8 made perturbed run spaces fast, cached, and forkable — but every
//! study was still a batch process that rebuilt its world on startup, so
//! nothing was shared across invocations or users. This crate turns the
//! substrate into a **daemon**: one long-lived process owns one shared
//! [`Executor`], [`CheckpointStore`], and run-result spill, and serves sweep
//! requests over a hand-rolled length-prefixed frame protocol on a Unix
//! domain socket. Std-only — no async runtime; connections and dispatchers
//! are plain threads, and the wire format follows the house style of the
//! checkpoint codec (versioned, checksummed, hostile-length-rejecting).
//!
//! The moving parts:
//!
//! * [`protocol`] — the frame format and the typed request/response
//!   messages, including the declarative [`protocol::SweepSpec`] that names
//!   a configuration, workload, and plan without shipping code.
//! * [`job`] — the prioritized job queue: admission control (bounded depth,
//!   typed rejection), three priority lanes, per-job cancellation, and the
//!   job registry that `status` queries read.
//! * [`batcher`] — the warmup coalescer: jobs that share a
//!   `(config, workload, seed, warmup)` family elect one leader to simulate
//!   the warmup while followers block, so N clients asking overlapping
//!   questions pay for one warmup and fork from one snapshot.
//! * [`server`] — the daemon: accept loop, dispatcher pool, the
//!   [`RunProgress`] bridge that streams per-run digests and violation
//!   summaries back to the submitting client, and graceful
//!   SIGINT/SIGTERM drain.
//! * [`client`] — the blocking client API the `mtvar` CLI (and the tests)
//!   speak through.
//!
//! **Why served results are trustworthy:** a job executes through the exact
//! same [`Executor::run_space`] entry point as a batch study — same
//! fingerprints, same derived seeds, same caches — so a served sweep's
//! statistics digest is bit-identical to the batch path's, cache hits replay
//! recorded violations instead of dropping them, and the coalescer only
//! pre-warms a snapshot the executor would have produced anyway.
//!
//! [`Executor`]: mtvar_core::runspace::Executor
//! [`Executor::run_space`]: mtvar_core::runspace::Executor::run_space
//! [`CheckpointStore`]: mtvar_core::checkpoint::CheckpointStore
//! [`RunProgress`]: mtvar_core::runspace::RunProgress

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batcher;
pub mod client;
pub mod job;
pub mod protocol;
pub mod server;

use std::fmt;

/// Error type for service operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// A frame failed validation (bad magic, version, length, checksum) or
    /// a message body failed to decode.
    Protocol(mtvar_sim::checkpoint::CheckpointError),
    /// The server rejected the request with a typed error frame.
    Rejected {
        /// Machine-readable reason, see [`protocol::ErrorCode`].
        code: protocol::ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server reported a job failure (the underlying sweep errored).
    JobFailed {
        /// The failed job.
        job: u64,
        /// The server-side error rendered to text.
        message: String,
    },
    /// The connection ended before a terminal frame arrived.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Rejected { code, message } => {
                write!(f, "rejected ({code:?}): {message}")
            }
            ServeError::JobFailed { job, message } => {
                write!(f, "job {job} failed: {message}")
            }
            ServeError::Disconnected => write!(f, "connection closed mid-stream"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<mtvar_sim::checkpoint::CheckpointError> for ServeError {
    fn from(e: mtvar_sim::checkpoint::CheckpointError) -> Self {
        ServeError::Protocol(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let e = ServeError::from(std::io::Error::other("x"));
        assert!(e.to_string().contains("i/o"));
        assert!(e.source().is_some());
        let p = ServeError::from(mtvar_sim::checkpoint::CheckpointError::BadMagic);
        assert!(p.to_string().contains("protocol"));
        let r = ServeError::Rejected {
            code: protocol::ErrorCode::QueueFull,
            message: "full".into(),
        };
        assert!(r.to_string().contains("QueueFull"));
        assert!(ServeError::Disconnected.source().is_none());
    }
}
