//! `mtvar` — the run-space service CLI.
//!
//! ```text
//! mtvar serve    --socket PATH [server flags]     start the daemon
//! mtvar submit   --socket PATH [sweep flags]      submit a sweep, stream results
//! mtvar status   --socket PATH --job ID           query a job
//! mtvar cancel   --socket PATH --job ID           cancel a job
//! mtvar stats    --socket PATH                    server statistics
//! mtvar shutdown --socket PATH                    graceful drain and exit
//! mtvar batch    [sweep flags]                    run the same sweep locally
//! ```
//!
//! `submit` and `batch` print an identical `digest: 0x...` line for the same
//! sweep — the served path is bit-identical to the batch path, and the
//! verify gate compares the two.

use std::path::PathBuf;
use std::process::ExitCode;

use mtvar_core::golden::run_digest;
use mtvar_core::runspace::Executor;
use mtvar_serve::client::{Client, SweepOutcome};
use mtvar_serve::protocol::{
    fold_digest, ConfigSpec, PlanSpec, Priority, Response, SweepSpec, WorkloadSpec,
};
use mtvar_serve::server::{signal, ServeConfig, Server};
use mtvar_sim::workload::SharingWorkload;

const USAGE: &str = "\
usage: mtvar <command> [flags]

commands:
  serve     start the daemon            --socket PATH [--dispatchers N]
                                        [--threads N] [--queue N]
                                        [--checkpoint-spill DIR]
                                        [--result-spill DIR]
                                        [--no-coalesce] [--strict]
  submit    submit a sweep              --socket PATH [sweep flags] [--quiet]
  status    query a job                 --socket PATH --job ID
  cancel    cancel a job                --socket PATH --job ID
  stats     server statistics           --socket PATH
  shutdown  graceful drain and exit     --socket PATH
  batch     run a sweep locally         [sweep flags] [--threads N]

sweep flags:
  --cpus N           machine CPUs                  (default 4)
  --perturb NS       perturbation magnitude in ns  (default 4)
  --l2-assoc N       L2 associativity override
  --dram-ns N        DRAM latency override in ns
  --directory        directory coherence
  --runs N           perturbed runs                (default 8)
  --transactions N   measured transactions         (default 50)
  --warmup N         warmup transactions           (default 0)
  --seed N           base perturbation seed        (default 0)
  --no-shared-warmup per-run legacy warmup
  --priority P       high | normal | low           (default normal)
  --workload NAME    sharing | a profiled benchmark (default sharing)
  --wl-threads N     sharing: threads              (default 4)
  --wl-seed N        workload seed                 (default 42)
  --wl-ops N         sharing: ops per transaction  (default 40)
  --wl-footprint N   sharing: footprint blocks     (default 2048)
  --wl-lock-every N  sharing: lock every N ops     (default 10)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "cancel" => cmd_cancel(rest),
        "stats" => cmd_stats(rest),
        "shutdown" => cmd_shutdown(rest),
        "batch" => cmd_batch(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}; try `mtvar help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mtvar: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag cursor: `--flag value` pairs and bare `--switch`es.
struct Flags<'a> {
    args: &'a [String],
    index: usize,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args, index: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let arg = self.args.get(self.index)?;
        self.index += 1;
        Some(arg.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let value = self
            .args
            .get(self.index)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        self.index += 1;
        Ok(value.as_str())
    }

    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
    }
}

struct SweepFlags {
    spec: SweepSpec,
    socket: Option<PathBuf>,
    job: Option<u64>,
    threads: usize,
    quiet: bool,
}

impl Default for SweepFlags {
    fn default() -> Self {
        SweepFlags {
            spec: SweepSpec {
                config: ConfigSpec {
                    cpus: 4,
                    perturbation_max_ns: 4,
                    l2_associativity: None,
                    dram_latency_ns: None,
                    directory: false,
                },
                workload: WorkloadSpec::Sharing {
                    threads: 4,
                    seed: 42,
                    ops_per_txn: 40,
                    footprint_blocks: 2048,
                    lock_every: 10,
                },
                plan: PlanSpec {
                    runs: 8,
                    transactions: 50,
                    warmup: 0,
                    base_seed: 0,
                    shared_warmup: true,
                },
                priority: Priority::Normal,
            },
            socket: None,
            job: None,
            threads: 2,
            quiet: false,
        }
    }
}

/// Parses the flags shared by `submit` and `batch` (plus `--job` for the
/// query commands). Workload parameters apply to whichever workload
/// `--workload` finally selects; a benchmark takes its CPU count from
/// `--cpus` and its seed from `--wl-seed`.
fn parse_sweep_flags(args: &[String]) -> Result<SweepFlags, String> {
    let mut out = SweepFlags::default();
    let mut workload_name = String::from("sharing");
    let mut wl = (4u64, 42u64, 40u64, 2048u64, 10u64);
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--socket" => out.socket = Some(PathBuf::from(flags.value(flag)?)),
            "--job" => out.job = Some(flags.parse(flag)?),
            "--threads" => out.threads = flags.parse(flag)?,
            "--quiet" => out.quiet = true,
            "--cpus" => out.spec.config.cpus = flags.parse(flag)?,
            "--perturb" => out.spec.config.perturbation_max_ns = flags.parse(flag)?,
            "--l2-assoc" => out.spec.config.l2_associativity = Some(flags.parse(flag)?),
            "--dram-ns" => out.spec.config.dram_latency_ns = Some(flags.parse(flag)?),
            "--directory" => out.spec.config.directory = true,
            "--runs" => out.spec.plan.runs = flags.parse(flag)?,
            "--transactions" => out.spec.plan.transactions = flags.parse(flag)?,
            "--warmup" => out.spec.plan.warmup = flags.parse(flag)?,
            "--seed" => out.spec.plan.base_seed = flags.parse(flag)?,
            "--no-shared-warmup" => out.spec.plan.shared_warmup = false,
            "--priority" => {
                out.spec.priority = match flags.value(flag)? {
                    "high" => Priority::High,
                    "normal" => Priority::Normal,
                    "low" => Priority::Low,
                    other => return Err(format!("--priority: unknown lane {other:?}")),
                };
            }
            "--workload" => workload_name = flags.value(flag)?.to_string(),
            "--wl-threads" => wl.0 = flags.parse(flag)?,
            "--wl-seed" => wl.1 = flags.parse(flag)?,
            "--wl-ops" => wl.2 = flags.parse(flag)?,
            "--wl-footprint" => wl.3 = flags.parse(flag)?,
            "--wl-lock-every" => wl.4 = flags.parse(flag)?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    out.spec.workload = if workload_name == "sharing" {
        WorkloadSpec::Sharing {
            threads: wl.0,
            seed: wl.1,
            ops_per_txn: wl.2,
            footprint_blocks: wl.3,
            lock_every: wl.4,
        }
    } else {
        WorkloadSpec::Benchmark {
            name: workload_name,
            cpus: out.spec.config.cpus,
            seed: wl.1,
        }
    };
    out.spec.workload.validate()?;
    Ok(out)
}

fn need_socket(flags: &SweepFlags) -> Result<&PathBuf, String> {
    flags
        .socket
        .as_ref()
        .ok_or_else(|| "--socket is required".into())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut socket = None;
    let mut dispatchers = 2usize;
    let mut threads = 2usize;
    let mut queue = 64usize;
    let mut checkpoint_spill = None;
    let mut result_spill = None;
    let mut coalesce = true;
    let mut strict = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--socket" => socket = Some(PathBuf::from(flags.value(flag)?)),
            "--dispatchers" => dispatchers = flags.parse(flag)?,
            "--threads" => threads = flags.parse(flag)?,
            "--queue" => queue = flags.parse(flag)?,
            "--checkpoint-spill" => checkpoint_spill = Some(PathBuf::from(flags.value(flag)?)),
            "--result-spill" => result_spill = Some(PathBuf::from(flags.value(flag)?)),
            "--no-coalesce" => coalesce = false,
            "--strict" => strict = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let socket = socket.ok_or("--socket is required")?;
    let config = ServeConfig {
        socket: socket.clone(),
        dispatchers,
        executor_threads: threads,
        queue_limit: queue,
        checkpoint_spill,
        result_spill,
        coalesce,
        strict,
    };
    signal::install();
    let handle = Server::start(config).map_err(|e| e.to_string())?;
    eprintln!("[mtvar-serve] listening on {}", socket.display());
    handle.join();
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let flags = parse_sweep_flags(args)?;
    let socket = need_socket(&flags)?;
    let client = Client::new(socket);
    let quiet = flags.quiet;
    let outcome = client
        .submit(flags.spec, |event| {
            if quiet {
                return;
            }
            match event {
                Response::JobStarted { job } => eprintln!("job {job}: started"),
                Response::RunDone {
                    job,
                    run_index,
                    digest,
                    cached,
                    violations,
                } => {
                    let source = if *cached { "cache" } else { "simulated" };
                    eprintln!(
                        "job {job}: run {run_index} {source} digest 0x{digest:016x} \
                         violations {violations}"
                    );
                }
                _ => {}
            }
        })
        .map_err(|e| e.to_string())?;
    match outcome {
        SweepOutcome::Done(done) => {
            println!("job: {}", done.job);
            println!(
                "runs: {} ({} simulated, {} cached)",
                done.runs, done.completed, done.cached
            );
            println!("violations: {}", done.violations);
            println!("mean_cpt: {:.6}", done.mean_cpt);
            println!("digest: 0x{:016x}", done.digest);
            Ok(())
        }
        SweepOutcome::Cancelled { job } => Err(format!("job {job} was cancelled")),
    }
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let flags = parse_sweep_flags(args)?;
    let socket = need_socket(&flags)?;
    let job = flags.job.ok_or("--job is required")?;
    let report = Client::new(socket).status(job).map_err(|e| e.to_string())?;
    println!(
        "job {}: {:?}, {}/{} runs",
        report.job, report.state, report.runs_done, report.runs_total
    );
    if let Some(digest) = report.digest {
        println!("digest: 0x{digest:016x}");
    }
    Ok(())
}

fn cmd_cancel(args: &[String]) -> Result<(), String> {
    let flags = parse_sweep_flags(args)?;
    let socket = need_socket(&flags)?;
    let job = flags.job.ok_or("--job is required")?;
    let cancelled = Client::new(socket).cancel(job).map_err(|e| e.to_string())?;
    if cancelled {
        println!("job {job}: cancellation requested");
    } else {
        println!("job {job}: already terminal");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_sweep_flags(args)?;
    let socket = need_socket(&flags)?;
    let s = Client::new(socket).stats().map_err(|e| e.to_string())?;
    println!(
        "jobs: {} submitted, {} completed, {} failed, {} cancelled, {} rejected, {} queued",
        s.submitted, s.completed, s.failed, s.cancelled, s.rejected, s.queue_depth
    );
    println!(
        "runs: {} started, {} completed, {} cached, {} violations",
        s.runs_started, s.runs_completed, s.runs_cached, s.run_violations
    );
    println!(
        "coalescing: {} leaders, {} followers",
        s.coalesce_leaders, s.coalesce_followers
    );
    println!(
        "stores: {} checkpoints in memory, {} results on disk",
        s.checkpoints_in_memory, s.results_on_disk
    );
    println!("draining: {}", s.draining);
    for warning in &s.warnings {
        println!("warning: {warning}");
    }
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let flags = parse_sweep_flags(args)?;
    let socket = need_socket(&flags)?;
    Client::new(socket).shutdown().map_err(|e| e.to_string())?;
    println!("server draining");
    Ok(())
}

/// Runs the sweep locally through the batch executor and prints the same
/// summary lines as `submit` — the digest line must match byte-for-byte.
fn cmd_batch(args: &[String]) -> Result<(), String> {
    let flags = parse_sweep_flags(args)?;
    let config = flags.spec.config.build();
    let plan = flags.spec.plan.build();
    let executor = Executor::with_threads(flags.threads.max(1));
    let space = match flags.spec.workload {
        WorkloadSpec::Sharing {
            threads,
            seed,
            ops_per_txn,
            footprint_blocks,
            lock_every,
        } => executor.run_space(
            &config,
            move || {
                SharingWorkload::new(
                    threads as usize,
                    seed,
                    ops_per_txn as u32,
                    footprint_blocks,
                    lock_every as u32,
                )
            },
            &plan,
        ),
        WorkloadSpec::Benchmark {
            ref name,
            cpus,
            seed,
        } => {
            let bench = WorkloadSpec::resolve_benchmark(name)
                .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
            executor.run_space(&config, move || bench.workload(cpus as usize, seed), &plan)
        }
    }
    .map_err(|e| e.to_string())?;
    let digest = space
        .results()
        .iter()
        .fold(0u64, |acc, r| fold_digest(acc, run_digest(r)));
    let runtimes = space.runtimes();
    let mean_cpt = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
    println!(
        "runs: {} ({} simulated, 0 cached)",
        space.len(),
        space.len()
    );
    println!("violations: {}", space.total_violations());
    println!("mean_cpt: {mean_cpt:.6}");
    println!("digest: 0x{digest:016x}");
    Ok(())
}
