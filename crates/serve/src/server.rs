//! The daemon: accept loop, dispatcher pool, and the progress bridge that
//! streams per-run results back to the submitting client.
//!
//! One server process owns one [`Executor`] (result cache, optional disk
//! spill), one [`CheckpointStore`], and one [`WarmupCoalescer`]; every job
//! executes through the exact same [`Executor::run_space`] entry point a
//! batch study uses, so served digests are bit-identical to batch ones.
//! Connections and dispatchers are plain threads — no async runtime — and
//! graceful shutdown (SIGINT, SIGTERM, or a [`Request::Shutdown`] frame)
//! drains in-flight jobs while rejecting new submissions with a typed
//! [`ErrorCode::Draining`] frame.
//!
//! [`Executor`]: mtvar_core::runspace::Executor
//! [`Executor::run_space`]: mtvar_core::runspace::Executor::run_space
//! [`CheckpointStore`]: mtvar_core::checkpoint::CheckpointStore
//! [`WarmupCoalescer`]: crate::batcher::WarmupCoalescer
//! [`Request::Shutdown`]: crate::protocol::Request::Shutdown
//! [`ErrorCode::Draining`]: crate::protocol::ErrorCode::Draining

use std::collections::{HashMap, HashSet};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mtvar_core::checkpoint::{CheckpointKey, CheckpointStore};
use mtvar_core::golden::run_digest;
use mtvar_core::runspace::{
    config_fingerprint, workload_fingerprint, Executor, ProgressCounters, RunProgress, RunSpace,
};
use mtvar_core::CoreError;
use mtvar_sim::checkpoint::{Decoder, Snap};
use mtvar_sim::stats::RunResult;
use mtvar_sim::workload::{SharingWorkload, Workload};

use crate::batcher::WarmupCoalescer;
use crate::job::{AdmissionError, JobQueue, JobRecord, JobRegistry};
use crate::protocol::{
    fold_digest, read_frame, ErrorCode, FrameKind, FrameSink, JobState, Request, Response,
    ServerStats, WorkloadSpec,
};
use crate::ServeError;

/// Process-wide shutdown flag driven by SIGINT / SIGTERM.
///
/// The handler does the only async-signal-safe thing — it stores to a static
/// atomic — and the accept loop polls the flag between accepts. Installation
/// is explicit (the `mtvar serve` binary calls [`signal::install`]) so
/// embedding a server in a test binary never hijacks the harness's Ctrl-C.
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the SIGINT/SIGTERM handlers that request a graceful drain.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` with a function whose body only stores to a
        // static atomic is async-signal-safe; 2 and 15 are valid signal
        // numbers on every Unix this crate targets.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Whether a handled signal has requested shutdown.
    pub fn shutdown_requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// Everything needed to start a server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on. Stale files are replaced.
    pub socket: PathBuf,
    /// Dispatcher threads executing jobs (>= 1).
    pub dispatchers: usize,
    /// Worker threads inside the shared executor (>= 1).
    pub executor_threads: usize,
    /// Queue admission limit.
    pub queue_limit: usize,
    /// Disk-spill directory for warmed checkpoints, if any.
    pub checkpoint_spill: Option<PathBuf>,
    /// Disk-spill directory for run results, if any.
    pub result_spill: Option<PathBuf>,
    /// Whether jobs sharing a warmup family coalesce onto one leader.
    pub coalesce: bool,
    /// Strict invariant monitoring (fail sweeps on violations).
    pub strict: bool,
}

impl ServeConfig {
    /// Defaults: 2 dispatchers, 2 executor threads, depth-64 queue,
    /// coalescing on, no disk spill, relaxed invariants.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            dispatchers: 2,
            executor_threads: 2,
            queue_limit: 64,
            checkpoint_spill: None,
            result_spill: None,
            coalesce: true,
            strict: false,
        }
    }
}

/// State shared by the accept loop, dispatchers, and connection handlers.
struct Shared {
    queue: JobQueue,
    registry: JobRegistry,
    /// The base executor; dispatchers clone it per job to attach that job's
    /// progress observer. Clones share the result cache, spill store, and
    /// checkpoint store through their `Arc`s.
    executor: Executor,
    store: Arc<CheckpointStore>,
    coalescer: WarmupCoalescer,
    counters: Arc<ProgressCounters>,
    coalesce: bool,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
}

impl Shared {
    fn stats_snapshot(&self) -> ServerStats {
        let mut warnings = self.store.take_warnings();
        if let Some(results) = self.executor.result_store() {
            warnings.extend(results.take_warnings());
        }
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
            runs_started: self.counters.started() as u64,
            runs_completed: self.counters.completed() as u64,
            runs_cached: self.counters.cached() as u64,
            run_violations: self.counters.violations(),
            coalesce_leaders: self.coalescer.leaders(),
            coalesce_followers: self.coalescer.followers(),
            checkpoints_in_memory: self.store.len() as u64,
            results_on_disk: self
                .executor
                .result_store()
                .map_or(0, |s| s.len_on_disk() as u64),
            draining: self.queue.is_draining(),
            warnings,
        }
    }
}

/// Per-job [`RunProgress`] bridge: forwards every event to the job's own
/// counters *and* the server-wide ones, and streams a
/// [`Response::RunDone`] frame per finished run. The executor fires
/// `run_cached` / `run_violations` before `run_result` for the same run, so
/// the markers this observer records are visible by the time the frame is
/// built.
struct JobObserver {
    job: Arc<JobRecord>,
    local: ProgressCounters,
    global: Arc<ProgressCounters>,
    cached: Mutex<HashSet<usize>>,
    violations: Mutex<HashMap<usize, u64>>,
}

impl JobObserver {
    fn new(job: Arc<JobRecord>, global: Arc<ProgressCounters>) -> Self {
        JobObserver {
            job,
            local: ProgressCounters::new(),
            global,
            cached: Mutex::new(HashSet::new()),
            violations: Mutex::new(HashMap::new()),
        }
    }
}

impl RunProgress for JobObserver {
    fn run_started(&self, run_index: usize) {
        self.local.run_started(run_index);
        self.global.run_started(run_index);
    }

    fn run_completed(&self, run_index: usize, wall: Duration) {
        self.local.run_completed(run_index, wall);
        self.global.run_completed(run_index, wall);
    }

    fn run_cached(&self, run_index: usize) {
        self.cached
            .lock()
            .expect("observer poisoned")
            .insert(run_index);
        self.local.run_cached(run_index);
        self.global.run_cached(run_index);
    }

    fn run_violations(&self, run_index: usize, violations: &[mtvar_sim::check::Violation]) {
        self.violations
            .lock()
            .expect("observer poisoned")
            .insert(run_index, violations.len() as u64);
        self.local.run_violations(run_index, violations);
        self.global.run_violations(run_index, violations);
    }

    fn run_result(&self, run_index: usize, result: &RunResult) {
        self.job.note_run_done();
        let cached = self
            .cached
            .lock()
            .expect("observer poisoned")
            .contains(&run_index);
        let violations = self
            .violations
            .lock()
            .expect("observer poisoned")
            .get(&run_index)
            .copied()
            .unwrap_or(0);
        self.job.send(Response::RunDone {
            job: self.job.id,
            run_index: run_index as u64,
            digest: run_digest(result),
            cached,
            violations,
        });
    }
}

/// Executes one sweep: optionally coalesce the warmup with concurrent jobs
/// sharing its family, then run the space through the shared executor.
fn run_sweep<W, F>(
    shared: &Shared,
    job: &Arc<JobRecord>,
    observer: Arc<JobObserver>,
    config: &mtvar_sim::config::MachineConfig,
    factory: F,
) -> mtvar_core::Result<RunSpace>
where
    W: Workload + Snap + Clone + Send + Sync,
    F: Fn() -> W + Sync,
{
    let plan_spec = &job.spec.plan;
    let plan = plan_spec.build();
    let executor = shared
        .executor
        .clone()
        .with_progress(observer as Arc<dyn RunProgress>);
    if shared.coalesce && plan_spec.shared_warmup && plan_spec.warmup > 0 {
        // Derive the same neutralized key `warm_checkpoint` uses internally:
        // warmup runs unperturbed (and monitored, in strict mode), so sweeps
        // that differ only in perturbation magnitude land in one family.
        let mut warm_cfg = config.clone().with_perturbation(0, 0);
        if executor.strict_invariants() {
            warm_cfg = warm_cfg.with_invariant_checks();
        }
        let key = CheckpointKey {
            config: config_fingerprint(&warm_cfg),
            workload: workload_fingerprint(&mut factory()),
            base_seed: plan_spec.base_seed,
            warmup: plan_spec.warmup,
        };
        shared.coalescer.coalesce(key, || {
            executor
                .warm_checkpoint(
                    config,
                    &factory,
                    plan_spec.base_seed,
                    plan_spec.warmup,
                    None,
                )
                .map(|_snapshot| ())
        })?;
        // Leader or follower, the snapshot is now in the shared store;
        // run_space's own warm_checkpoint call below hits it.
    }
    executor.run_space(config, factory, &plan)
}

fn dispatch_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop_blocking() {
        if job.cancel_requested() {
            job.set_state(JobState::Cancelled);
            job.send(Response::Cancelled { job: job.id });
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            shared.queue.note_done();
            continue;
        }
        job.set_state(JobState::Running);
        job.send(Response::JobStarted { job: job.id });
        let observer = Arc::new(JobObserver::new(
            Arc::clone(&job),
            Arc::clone(&shared.counters),
        ));
        let config = job.spec.config.build();
        let outcome = match job.spec.workload.clone() {
            WorkloadSpec::Sharing {
                threads,
                seed,
                ops_per_txn,
                footprint_blocks,
                lock_every,
            } => run_sweep(shared, &job, Arc::clone(&observer), &config, move || {
                SharingWorkload::new(
                    threads as usize,
                    seed,
                    ops_per_txn as u32,
                    footprint_blocks,
                    lock_every as u32,
                )
            }),
            WorkloadSpec::Benchmark { name, cpus, seed } => {
                match WorkloadSpec::resolve_benchmark(&name) {
                    Some(bench) => {
                        run_sweep(shared, &job, Arc::clone(&observer), &config, move || {
                            bench.workload(cpus as usize, seed)
                        })
                    }
                    // Unreachable past admission validation, but a dispatch
                    // must never panic on a record it popped.
                    None => Err(CoreError::InvalidExperiment {
                        what: format!("unknown benchmark {name:?}"),
                    }),
                }
            }
        };
        match outcome {
            Ok(space) if job.cancel_requested() => {
                // Cancelled mid-run: the sweep finished (its runs are cached,
                // so nothing was wasted) but the job reports cancelled.
                drop(space);
                job.set_state(JobState::Cancelled);
                job.send(Response::Cancelled { job: job.id });
                shared.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Ok(space) => {
                let digest = space
                    .results()
                    .iter()
                    .fold(0u64, |acc, r| fold_digest(acc, run_digest(r)));
                let runtimes = space.runtimes();
                let mean_cpt = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
                job.set_digest(digest);
                job.set_state(JobState::Done);
                job.send(Response::JobDone {
                    job: job.id,
                    digest,
                    runs: space.len() as u64,
                    completed: observer.local.completed() as u64,
                    cached: observer.local.cached() as u64,
                    violations: space.total_violations(),
                    mean_cpt,
                });
                shared.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                job.set_state(JobState::Failed);
                job.send(Response::JobFailed {
                    job: job.id,
                    message: e.to_string(),
                });
                shared.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.queue.note_done();
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: UnixStream) {
    // One reusable frame writer per connection: every response on this
    // stream — above all the per-run `RunDone` frames a Submit drains —
    // encodes into the same recycled body buffer and goes out as a single
    // vectored write.
    let mut sink = FrameSink::new();
    // A failing client write is the client's problem; a malformed request
    // earns a typed BadRequest frame (best-effort) and a closed connection.
    if let Err(ServeError::Protocol(e)) = serve_connection(shared, &mut stream, &mut sink) {
        let _ = sink.write_response(
            &mut stream,
            &Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("malformed request: {e}"),
            },
        );
    }
}

fn serve_connection(
    shared: &Arc<Shared>,
    stream: &mut UnixStream,
    sink: &mut FrameSink,
) -> crate::Result<()> {
    let (kind, body) = read_frame(stream)?;
    if kind != FrameKind::Request {
        return Err(ServeError::Protocol(
            mtvar_sim::checkpoint::CheckpointError::Corrupt {
                what: "expected a request frame".into(),
            },
        ));
    }
    let mut dec = Decoder::new(&body);
    let request = Request::decode_snap(&mut dec)?;
    dec.finish()?;
    match request {
        Request::Submit(spec) => {
            if let Err(what) = spec.workload.validate() {
                sink.write_response(
                    stream,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: what,
                    },
                )?;
                return Ok(());
            }
            if spec.plan.runs == 0 || spec.plan.transactions == 0 {
                sink.write_response(
                    stream,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: "plan needs runs and transactions >= 1".into(),
                    },
                )?;
                return Ok(());
            }
            let (events, inbox) = mpsc::channel();
            match shared.queue.submit(spec, events) {
                Err(reason) => {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    let (code, message) = match reason {
                        AdmissionError::QueueFull => {
                            (ErrorCode::QueueFull, "queue at admission limit".into())
                        }
                        AdmissionError::Draining => (
                            ErrorCode::Draining,
                            "server is draining for shutdown".to_string(),
                        ),
                    };
                    sink.write_response(stream, &Response::Error { code, message })?;
                }
                Ok(job) => {
                    shared.registry.register(Arc::clone(&job));
                    shared.submitted.fetch_add(1, Ordering::Relaxed);
                    sink.write_response(stream, &Response::Submitted { job: job.id })?;
                    // Stream events until the job's terminal frame. If the
                    // client hangs up, the job still runs to completion —
                    // its results land in the shared cache either way.
                    for event in inbox {
                        let terminal = matches!(
                            event,
                            Response::JobDone { .. }
                                | Response::JobFailed { .. }
                                | Response::Cancelled { .. }
                        );
                        if sink.write_response(stream, &event).is_err() {
                            break;
                        }
                        if terminal {
                            break;
                        }
                    }
                }
            }
        }
        Request::Status { job } => {
            let reply = match shared.registry.get(job) {
                Some(record) => Response::JobStatus {
                    job,
                    state: record.state(),
                    runs_done: record.runs_done(),
                    runs_total: record.spec.plan.runs,
                    digest: record.digest(),
                },
                None => Response::Error {
                    code: ErrorCode::UnknownJob,
                    message: format!("no job {job}"),
                },
            };
            sink.write_response(stream, &reply)?;
        }
        Request::Cancel { job } => {
            let reply = match shared.registry.get(job) {
                Some(record) => Response::CancelResult {
                    job,
                    cancelled: record.request_cancel(),
                },
                None => Response::Error {
                    code: ErrorCode::UnknownJob,
                    message: format!("no job {job}"),
                },
            };
            sink.write_response(stream, &reply)?;
        }
        Request::Stats => {
            sink.write_response(stream, &Response::StatsReport(shared.stats_snapshot()))?;
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.drain();
            sink.write_response(stream, &Response::ShuttingDown)?;
        }
    }
    Ok(())
}

/// The server entry point. [`Server::start`] binds the socket, spawns the
/// dispatcher pool, and returns a [`ServerHandle`] while the accept loop
/// runs on its own thread.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Starts a server on `config.socket`. A stale socket file from a dead
    /// server is replaced; an error binding the socket is returned.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket cannot be bound.
    pub fn start(config: ServeConfig) -> crate::Result<ServerHandle> {
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;

        let mut store = CheckpointStore::new();
        if let Some(dir) = &config.checkpoint_spill {
            store = store.with_disk_spill(dir);
        }
        let store = Arc::new(store);
        let mut executor = Executor::with_threads(config.executor_threads.max(1))
            .with_checkpoint_store(Arc::clone(&store));
        if let Some(dir) = &config.result_spill {
            executor = executor.with_result_spill(dir);
        }
        if config.strict {
            executor = executor.with_invariant_checks();
        }
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_limit),
            registry: JobRegistry::new(),
            executor,
            store,
            coalescer: WarmupCoalescer::new(),
            counters: Arc::new(ProgressCounters::new()),
            coalesce: config.coalesce,
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });

        let dispatchers: Vec<_> = (0..config.dispatchers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mtvar-dispatch-{i}"))
                    .spawn(move || dispatch_loop(&shared))
                    .expect("spawn dispatcher")
            })
            .collect();

        let socket = config.socket.clone();
        let accept_shared = Arc::clone(&shared);
        let accept_socket = socket.clone();
        let thread = std::thread::Builder::new()
            .name("mtvar-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, dispatchers, &accept_socket))
            .expect("spawn accept loop");

        Ok(ServerHandle {
            socket,
            shared,
            thread,
        })
    }
}

fn accept_loop(
    listener: UnixListener,
    shared: Arc<Shared>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    socket: &Path,
) {
    loop {
        if signal::shutdown_requested() || shared.shutdown.load(Ordering::SeqCst) {
            // Idempotent: flips admission to typed Draining rejections while
            // queued jobs keep executing.
            shared.queue.drain();
        }
        if shared.queue.is_draining() && shared.queue.is_idle() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("mtvar-conn".into())
                    .spawn(move || handle_connection(&shared, stream));
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Drained: no queued work, no running job, admission rejects. Stop the
    // dispatchers, surface the final accounting, release the socket.
    shared.queue.drain();
    shared.queue.wait_idle();
    for d in dispatchers {
        let _ = d.join();
    }
    let stats = shared.stats_snapshot();
    eprintln!(
        "[mtvar-serve] drained: {} submitted, {} completed, {} failed, {} cancelled, \
         {} rejected; runs: {} started, {} completed, {} cached, {} violations; \
         coalescing: {} leaders, {} followers",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.cancelled,
        stats.rejected,
        stats.runs_started,
        stats.runs_completed,
        stats.runs_cached,
        stats.run_violations,
        stats.coalesce_leaders,
        stats.coalesce_followers,
    );
    for warning in &stats.warnings {
        eprintln!("[mtvar-serve] warning: {warning}");
    }
    let _ = std::fs::remove_file(socket);
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] (or send SIGINT/SIGTERM/a `Shutdown` frame)
/// and then [`ServerHandle::join`].
#[derive(Debug)]
pub struct ServerHandle {
    socket: PathBuf,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("queue_depth", &self.queue.depth())
            .field("draining", &self.queue.is_draining())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Requests a graceful drain, as if the process received SIGTERM.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.drain();
    }

    /// Blocks until the accept loop exits (after a drain completes).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}
