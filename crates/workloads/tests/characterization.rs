//! Characterization tests: pin the calibrated, Table-3-bearing properties of
//! every benchmark profile. These constants were tuned (see DESIGN.md §6 and
//! the calibrate example) so the harness reproduces the paper's variability
//! ordering; this suite fails loudly if an edit silently breaks that.

use mtvar_sim::ids::ThreadId;
use mtvar_sim::ops::Op;
use mtvar_sim::workload::Workload;
use mtvar_workloads::{apache, ecperf, oltp, scientific, slashcode, specjbb, Benchmark};

/// Mean ops per transaction over a sample of generated transactions.
fn mean_txn_len(b: Benchmark, txns: usize) -> f64 {
    let mut w = b.workload(4, 42);
    let threads = w.thread_count() as u32;
    let mut lens = Vec::new();
    let mut len = 0u64;
    let mut i = 0u32;
    while lens.len() < txns {
        len += 1;
        if let Op::TxnEnd = w.next_op(ThreadId(i % threads)) {
            lens.push(len);
            len = 0;
        }
        i = i.wrapping_add(1);
    }
    lens.iter().sum::<u64>() as f64 / lens.len() as f64
}

#[test]
fn oltp_keeps_the_tpcc_mix_and_scale() {
    let p = oltp::profile();
    let weights: Vec<u32> = p.txn_types.iter().map(|t| t.weight).collect();
    assert_eq!(weights, vec![45, 43, 4, 4, 4], "TPC-C mix is part of §3.1");
    assert_eq!(p.threads_per_cpu, 8, "8 users per processor, §3.1");
    // Hot data must stay read-mostly or Experiment 1 loses its reuse.
    for t in &p.txn_types {
        assert!(
            t.write_prob * t.hot_write_factor < 0.1,
            "hot-region effective write ratio must stay below 10%"
        );
        // Pointer chasing must stay moderate or Experiment 2's ROB effect
        // collapses/explodes (DESIGN.md §6).
        assert!((0.1..=0.5).contains(&t.dependent_prob));
    }
    // Phase drift drives Figures 8/9a.
    assert!(p.phases.amplitude > 0.0);
    assert!(p.phases.gc_every > 0);
}

#[test]
fn specjbb_is_private_and_growing() {
    let p = specjbb::profile();
    assert_eq!(p.threads_per_cpu, 1, "one warehouse per processor");
    for t in &p.txn_types {
        assert!(
            t.private_prob > 0.8,
            "SPECjbb works on warehouse-local data"
        );
        assert!(t.io_prob == 0.0, "SPECjbb is in-memory");
        assert!(t.lock_prob < 0.05, "near lock-free, or Table 3 breaks");
    }
    // Heap growth + GC are the Figure-9b time-variability sources.
    assert!(p.phases.growth_per_txn > 0.0);
    assert!(p.phases.gc_every > 0 && p.phases.gc_mem_ops > 0);
}

#[test]
fn scientific_profiles_stay_deterministic_and_staggered() {
    for p in [scientific::barnes_profile(), scientific::ocean_profile()] {
        assert_eq!(p.threads_per_cpu, 1);
        let t = &p.txn_types[0];
        assert_eq!(
            t.segments_min, t.segments_max,
            "fixed phase structure is what keeps scientific CoV tiny"
        );
        assert!(t.io_prob == 0.0);
        // The startup stagger de-synchronizes barrier arrivals (DESIGN.md §6).
        assert!(p.startup_stagger_instr > 0);
        assert!(t.lock_prob < 0.1, "barrier counters only");
    }
    // Ocean shares and synchronizes more than Barnes — the Table 3 ordering.
    let b = scientific::barnes_profile();
    let o = scientific::ocean_profile();
    assert!(o.txn_types[0].hot_prob > b.txn_types[0].hot_prob);
    assert!(o.txn_types[0].lock_prob > b.txn_types[0].lock_prob);
}

#[test]
fn ecperf_commit_process_is_regularized() {
    let p = ecperf::profile();
    // Tight segment bounds keep commit arrivals near-periodic (DESIGN.md §6).
    for t in &p.txn_types {
        assert!(t.segments_max - t.segments_min <= 8);
        assert!(t.io_prob > 0.3, "tier crossings are ECperf's signature");
    }
    assert_eq!(p.threads_per_cpu, 2, "queueing regularizes arrivals");
}

#[test]
fn slashcode_has_the_heavy_tail() {
    let p = slashcode::profile();
    let max_len: u32 = p.txn_types.iter().map(|t| t.segments_max).max().unwrap();
    let min_mean = p
        .txn_types
        .iter()
        .map(|t| t.segments_mean)
        .fold(f64::INFINITY, f64::min);
    assert!(
        f64::from(max_len) > 10.0 * min_mean,
        "comment posts must dwarf cached page views — the source of Table 3's top row"
    );
    assert!(p.hot_locks <= 2, "a couple of very hot locks");
    assert!(p.hot_lock_prob > 0.5);
}

#[test]
fn apache_requests_are_short_and_oversubscribed() {
    let p = apache::profile();
    assert_eq!(
        p.threads_per_cpu, 16,
        "worker oversubscription is Apache's variability mechanism (DESIGN.md §6)"
    );
    // GET dominates the mix.
    let get = &p.txn_types[0];
    let total: u32 = p.txn_types.iter().map(|t| t.weight).sum();
    assert!(get.weight * 5 > total * 4, "GETs are >80% of requests");
}

#[test]
fn transaction_length_ordering_across_benchmarks() {
    // The relative transaction scales that make the Table 3 windows
    // comparable: apache and specjbb are short; oltp medium; slashcode
    // heavier on average (and far heavier in the tail); ecperf's uniform
    // business operations are the longest.
    let apache = mean_txn_len(Benchmark::Apache, 300);
    let specjbb = mean_txn_len(Benchmark::Specjbb, 300);
    let oltp = mean_txn_len(Benchmark::Oltp, 300);
    let ecperf = mean_txn_len(Benchmark::Ecperf, 150);
    let slashcode = mean_txn_len(Benchmark::Slashcode, 150);
    assert!(
        apache < oltp && oltp < slashcode && oltp < ecperf,
        "txn-length ordering broke: apache {apache:.0}, oltp {oltp:.0}, \
         ecperf {ecperf:.0}, slashcode {slashcode:.0}"
    );
    assert!(specjbb < oltp, "specjbb ops are in-memory and short");
}

#[test]
fn all_profiles_validate_and_generate() {
    for b in Benchmark::ALL {
        let mut w = b.workload(2, 7);
        let threads = w.thread_count() as u32;
        let mut commits = 0;
        for i in 0..40_000u32 {
            if let Op::TxnEnd = w.next_op(ThreadId(i % threads)) {
                commits += 1;
            }
        }
        assert!(commits > 0, "{b} never commits");
    }
}
