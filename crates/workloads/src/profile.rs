//! The profiled transaction-workload generator.
//!
//! Every commercial benchmark in the paper's Table 3 is, for the purposes of
//! its variability study, a *throughput-oriented multi-threaded transaction
//! mix*: threads repeatedly run transactions of a few types, touching hot and
//! cold shared data, private data, locks and occasional I/O. The
//! [`WorkloadProfile`] captures those knobs; [`ProfiledWorkload`] compiles a
//! profile into deterministic per-thread op streams for the simulator.
//!
//! Determinism contract (§3.3): a thread's op sequence depends only on the
//! workload seed and the thread's own transaction count — never on timing or
//! the perturbation seed — so runs from one checkpoint differ only through
//! interleaving.

use std::collections::VecDeque;

use mtvar_sim::ids::{LockId, Nanos, ThreadId};
use mtvar_sim::ops::{AccessKind, BranchInfo, Op};
use mtvar_sim::rng::Xoshiro256StarStar;
use mtvar_sim::workload::Workload;

use crate::regions;

/// Capacity of each thread's recent-block ring (the temporal-reuse window).
const RECENT_RING: usize = 192;

/// One transaction type in the mix (e.g. TPC-C's new-order).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TxnType {
    /// Relative weight in the mix.
    pub weight: u32,
    /// Mean number of segments (database operations / request handlers).
    pub segments_mean: f64,
    /// Lower bound on segments. Setting `segments_min == segments_max` gives
    /// a fixed, deterministic phase structure (the scientific workloads).
    pub segments_min: u32,
    /// Hard cap on segments.
    pub segments_max: u32,
    /// Memory references per segment.
    pub mem_per_segment: u32,
    /// Mean compute-burst length (instructions).
    pub compute_mean: f64,
    /// Probability a reference goes to the hot shared region.
    pub hot_prob: f64,
    /// Probability a reference goes to the thread-private region
    /// (the rest go to the cold shared region).
    pub private_prob: f64,
    /// Probability a reference is a write.
    pub write_prob: f64,
    /// Multiplier on `write_prob` for hot-region references. Hot shared
    /// data (indices, metadata) is read-mostly on real systems; unchecked
    /// write-sharing would make every node's copy ping-pong and erase the
    /// cache reuse that Experiment 1 depends on.
    pub hot_write_factor: f64,
    /// Probability a segment runs under a lock.
    pub lock_prob: f64,
    /// Shared accesses inside a critical section.
    pub cs_mem_ops: u32,
    /// Probability the transaction performs an I/O wait.
    pub io_prob: f64,
    /// Mean I/O latency (ns).
    pub io_ns_mean: Nanos,
    /// When set, every I/O wait lasts exactly `io_ns_mean` (a constant-cost
    /// tier crossing) instead of drawing from a bursty distribution.
    pub io_fixed: bool,
    /// Probability a reference re-touches a recently used block (register
    /// spill reloads, loop-carried structures, the current row/page). This
    /// temporal locality is what gives real workloads their high L1 hit
    /// rates.
    pub reuse_prob: f64,
    /// Fraction of memory references that depend on the previous load
    /// (pointer chasing: B-tree descents, object-graph walks). Dependent
    /// loads serialize in the out-of-order model regardless of ROB size.
    pub dependent_prob: f64,
    /// Conditional branches per segment.
    pub branches_per_segment: u32,
    /// Probability each branch goes its biased way (higher = more
    /// predictable).
    pub branch_bias: f64,
}

impl TxnType {
    /// A neutral medium-sized transaction, useful as a starting point.
    pub fn balanced() -> Self {
        TxnType {
            weight: 1,
            segments_mean: 6.0,
            segments_min: 1,
            segments_max: 24,
            mem_per_segment: 12,
            compute_mean: 40.0,
            hot_prob: 0.45,
            private_prob: 0.35,
            write_prob: 0.25,
            hot_write_factor: 0.2,
            lock_prob: 0.3,
            cs_mem_ops: 3,
            io_prob: 0.05,
            io_ns_mean: 40_000,
            io_fixed: false,
            reuse_prob: 0.5,
            dependent_prob: 0.4,
            branches_per_segment: 4,
            branch_bias: 0.9,
        }
    }
}

/// Slow behaviour drift over a thread's transaction count — the source of
/// **time variability** (§4.3). All terms are deterministic functions of the
/// per-thread transaction index, so they shift behaviour *between
/// checkpoints* without adding within-checkpoint randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseModel {
    /// Period, in per-thread transactions, of the work-intensity wave.
    pub period_txns: u64,
    /// Peak-to-mean amplitude of the intensity wave (0 = flat). 0.5 means
    /// segment counts swing between 0.5× and 1.5×.
    pub amplitude: f64,
    /// Every `gc_every` per-thread transactions, insert a heavy scan phase
    /// (a JVM garbage collection, a DBMS log flush). 0 disables.
    pub gc_every: u64,
    /// Memory references in one scan phase.
    pub gc_mem_ops: u32,
    /// Cold-footprint growth in blocks per committed transaction (object
    /// churn; SPECjbb's heap growth). Applied up to `growth_cap_blocks`.
    pub growth_per_txn: f64,
    /// Cap on footprint growth.
    pub growth_cap_blocks: u64,
}

impl PhaseModel {
    /// No drift at all.
    pub fn none() -> Self {
        PhaseModel {
            period_txns: 1,
            amplitude: 0.0,
            gc_every: 0,
            gc_mem_ops: 0,
            growth_per_txn: 0.0,
            growth_cap_blocks: 0,
        }
    }

    /// Work-intensity multiplier at per-thread transaction index `i`
    /// (a triangle wave in `[1 − amplitude, 1 + amplitude]`).
    pub fn intensity(&self, i: u64) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        let phase = (i % self.period_txns) as f64 / self.period_txns as f64;
        let tri = if phase < 0.5 {
            4.0 * phase - 1.0
        } else {
            3.0 - 4.0 * phase
        };
        1.0 + self.amplitude * tri
    }
}

/// The complete description of one benchmark's behaviour.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadProfile {
    /// Benchmark name ("oltp", "apache", ...).
    pub name: String,
    /// Software threads per processor (the paper's OLTP runs 8).
    pub threads_per_cpu: u32,
    /// The transaction mix.
    pub txn_types: Vec<TxnType>,
    /// Hot shared region size (blocks).
    pub hot_blocks: u64,
    /// Cold shared region size (blocks).
    pub cold_blocks: u64,
    /// Per-thread private region size (blocks).
    pub private_blocks: u64,
    /// Code footprint per transaction type (blocks).
    pub code_blocks_per_type: u64,
    /// Total distinct locks (rows/tables/latches).
    pub lock_pool: u32,
    /// A few heavily contended locks (log latch, index root, ...).
    pub hot_locks: u32,
    /// Probability a lock acquisition targets a hot lock.
    pub hot_lock_prob: f64,
    /// Time-variability drift model.
    pub phases: PhaseModel,
    /// Maximum startup stagger per thread, in instructions (a one-time
    /// compute prologue of uniform random length). Spreads thread phases so
    /// synchronization arrivals are graded rather than lockstep — SPLASH-2
    /// style programs otherwise reach every barrier simultaneously.
    pub startup_stagger_instr: u32,
}

impl WorkloadProfile {
    /// Validates the profile.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty, any region is empty, or probabilities
    /// are outside `[0, 1]` — profiles are library constants, so a bad one
    /// is a programming error.
    pub fn assert_valid(&self) {
        assert!(!self.txn_types.is_empty(), "profile needs >= 1 txn type");
        assert!(self.hot_blocks > 0 && self.cold_blocks > 0 && self.private_blocks > 0);
        assert!(self.private_blocks <= regions::PRIVATE_SPAN);
        assert!(self.lock_pool >= 1);
        assert!(self.hot_locks <= self.lock_pool);
        for t in &self.txn_types {
            assert!(t.weight > 0, "txn type weight must be > 0");
            for p in [
                t.hot_prob,
                t.private_prob,
                t.write_prob,
                t.lock_prob,
                t.io_prob,
                t.branch_bias,
                t.dependent_prob,
                t.reuse_prob,
            ] {
                assert!((0.0..=1.0).contains(&p), "probability out of range");
            }
            assert!(t.hot_prob + t.private_prob <= 1.0);
            assert!(t.segments_max >= 1 && t.segments_min >= 1);
            assert!(t.segments_min <= t.segments_max);
        }
    }

    fn cumulative_weights(&self) -> Vec<u32> {
        let mut cum = Vec::with_capacity(self.txn_types.len());
        let mut acc = 0;
        for t in &self.txn_types {
            acc += t.weight;
            cum.push(acc);
        }
        cum
    }
}

/// Per-thread generator state.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct ThreadGen {
    rng: Xoshiro256StarStar,
    txns: u64,
    queue: VecDeque<Op>,
    /// Ring of recently touched data blocks, the source of temporal reuse.
    recent: Vec<mtvar_sim::ids::BlockAddr>,
    recent_pos: usize,
}

/// A deterministic multi-threaded workload compiled from a
/// [`WorkloadProfile`].
///
/// # Example
///
/// ```
/// use mtvar_sim::workload::Workload;
/// use mtvar_workloads::oltp;
///
/// let mut w = oltp::workload(16, 42);
/// assert_eq!(w.thread_count(), 16 * 8); // 8 users per processor
/// let _op = w.next_op(mtvar_sim::ids::ThreadId(0));
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfiledWorkload {
    profile: WorkloadProfile,
    cum_weights: Vec<u32>,
    threads: usize,
    state: Vec<ThreadGen>,
}

impl ProfiledWorkload {
    /// Instantiates `profile` on a machine with `cpus` processors, seeding
    /// every thread's stream from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid or `cpus == 0`.
    pub fn new(profile: WorkloadProfile, cpus: usize, seed: u64) -> Self {
        assert!(cpus > 0, "cpus must be > 0");
        profile.assert_valid();
        let threads = cpus * profile.threads_per_cpu as usize;
        let mut root = Xoshiro256StarStar::new(seed);
        let state = (0..threads)
            .map(|i| ThreadGen {
                rng: root.fork(i as u64),
                txns: 0,
                queue: VecDeque::with_capacity(256),
                recent: Vec::with_capacity(RECENT_RING),
                recent_pos: 0,
            })
            .collect();
        let cum_weights = profile.cumulative_weights();
        ProfiledWorkload {
            profile,
            cum_weights,
            threads,
            state,
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Total transactions generated so far by `thread`.
    pub fn thread_txns(&self, thread: ThreadId) -> u64 {
        self.state[thread.index()].txns
    }

    /// Compiles one whole transaction into `thread`'s op queue.
    fn build_txn(&mut self, thread: ThreadId) {
        let p = &self.profile;
        let st = &mut self.state[thread.index()];
        let rng = &mut st.rng;
        let q = &mut st.queue;
        let txn_idx = st.txns;
        st.txns += 1;

        if txn_idx == 0 && p.startup_stagger_instr > 0 {
            q.push_back(Op::Compute {
                instructions: rng.next_below(u64::from(p.startup_stagger_instr) + 1) as u32,
                code_block: regions::code_addr(0, 0, p.code_blocks_per_type),
            });
        }
        let ty_idx = rng.next_weighted(&self.cum_weights);
        let ty = &p.txn_types[ty_idx];
        let intensity = p.phases.intensity(txn_idx);

        // Footprint growth (heap churn).
        let cold_blocks = if p.phases.growth_per_txn > 0.0 {
            let grown = (p.phases.growth_per_txn * txn_idx as f64) as u64;
            p.cold_blocks + grown.min(p.phases.growth_cap_blocks)
        } else {
            p.cold_blocks
        };

        // Periodic scan phase (GC / log flush) before the transaction body.
        if p.phases.gc_every > 0 && txn_idx > 0 && txn_idx.is_multiple_of(p.phases.gc_every) {
            q.push_back(Op::Compute {
                instructions: 200,
                code_block: regions::code_addr(ty_idx as u32, 0, p.code_blocks_per_type),
            });
            for i in 0..p.phases.gc_mem_ops {
                let addr = if i % 3 == 0 {
                    regions::hot_addr(rng, p.hot_blocks)
                } else {
                    regions::private_addr(rng, thread, p.private_blocks)
                };
                q.push_back(Op::Memory {
                    addr,
                    kind: AccessKind::Read,
                    dependent: false,
                });
            }
        }

        let segments = ((rng.next_burst(ty.segments_mean, u64::from(ty.segments_max)) as f64
            * intensity)
            .round() as u64)
            .clamp(u64::from(ty.segments_min), u64::from(ty.segments_max));

        for seg in 0..segments {
            let func = seg % p.code_blocks_per_type;
            let code = regions::code_addr(ty_idx as u32, func, p.code_blocks_per_type);

            // Segment prologue: call into the handler.
            let ret_pc = (ty_idx as u32) << 16 | (func as u32);
            q.push_back(Op::Call { return_pc: ret_pc });
            q.push_back(Op::Compute {
                instructions: rng.next_burst(ty.compute_mean, 400) as u32,
                code_block: code,
            });

            // Data references, interleaved with short compute bursts and
            // branches the way compiled code spaces its loads — the spacing
            // is what lets reorder-buffer capacity govern memory-level
            // parallelism (Experiment 2).
            let gap_mean = (ty.compute_mean / 4.0).max(2.0);
            for r in 0..ty.mem_per_segment {
                if r % 3 == 0 && (r / 3) < ty.branches_per_segment {
                    q.push_back(Op::Branch(BranchInfo {
                        pc: ret_pc ^ ((r / 3).wrapping_mul(0x9E37) | 1),
                        taken: rng.next_bool(ty.branch_bias),
                    }));
                }
                q.push_back(Op::Compute {
                    instructions: rng.next_burst(gap_mean, 100) as u32,
                    code_block: code,
                });
                let (addr, wp) = if !st.recent.is_empty() && rng.next_bool(ty.reuse_prob) {
                    // Temporal reuse: re-touch a recently used block.
                    let idx = rng.next_below(st.recent.len() as u64) as usize;
                    (st.recent[idx], ty.write_prob)
                } else {
                    let u = rng.next_f64();
                    let fresh = if u < ty.hot_prob {
                        (
                            regions::hot_addr(rng, p.hot_blocks),
                            ty.write_prob * ty.hot_write_factor,
                        )
                    } else if u < ty.hot_prob + ty.private_prob {
                        (
                            regions::private_addr(rng, thread, p.private_blocks),
                            ty.write_prob,
                        )
                    } else {
                        (regions::cold_addr(rng, cold_blocks), ty.write_prob)
                    };
                    if st.recent.len() < RECENT_RING {
                        st.recent.push(fresh.0);
                    } else {
                        st.recent[st.recent_pos] = fresh.0;
                        st.recent_pos = (st.recent_pos + 1) % RECENT_RING;
                    }
                    fresh
                };
                let kind = if rng.next_bool(wp) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                q.push_back(Op::Memory {
                    addr,
                    kind,
                    dependent: rng.next_bool(ty.dependent_prob),
                });
            }

            // Optional critical section.
            if rng.next_bool(ty.lock_prob) {
                let lock = if rng.next_bool(p.hot_lock_prob) {
                    LockId(rng.next_below(u64::from(p.hot_locks.max(1))) as u32)
                } else {
                    LockId(
                        (u64::from(p.hot_locks)
                            + rng.next_below(u64::from(p.lock_pool - p.hot_locks).max(1)))
                            as u32,
                    )
                };
                q.push_back(Op::Lock(lock));
                for _ in 0..ty.cs_mem_ops {
                    q.push_back(Op::Memory {
                        addr: regions::hot_addr(rng, p.hot_blocks),
                        kind: AccessKind::Write,
                        dependent: false,
                    });
                }
                q.push_back(Op::Unlock(lock));
            }

            // Segment epilogue.
            q.push_back(Op::Return { return_pc: ret_pc });
        }

        // Optional I/O wait (disk read, client round-trip).
        if ty.io_prob > 0.0 && rng.next_bool(ty.io_prob) {
            let delay = if ty.io_fixed {
                ty.io_ns_mean
            } else {
                rng.next_burst(ty.io_ns_mean as f64, ty.io_ns_mean * 3)
            };
            q.push_back(Op::Io(delay));
        }
        q.push_back(Op::TxnEnd);
    }
}

impl Workload for ProfiledWorkload {
    fn thread_count(&self) -> usize {
        self.threads
    }

    fn next_op(&mut self, thread: ThreadId) -> Op {
        if let Some(op) = self.state[thread.index()].queue.pop_front() {
            return op;
        }
        self.build_txn(thread);
        self.state[thread.index()]
            .queue
            .pop_front()
            .expect("build_txn always enqueues at least TxnEnd")
    }

    fn name(&self) -> &str {
        &self.profile.name
    }
}

mtvar_sim::impl_snap!(TxnType {
    weight,
    segments_mean,
    segments_min,
    segments_max,
    mem_per_segment,
    compute_mean,
    hot_prob,
    private_prob,
    write_prob,
    hot_write_factor,
    lock_prob,
    cs_mem_ops,
    io_prob,
    io_ns_mean,
    io_fixed,
    reuse_prob,
    dependent_prob,
    branches_per_segment,
    branch_bias,
});
mtvar_sim::impl_snap!(PhaseModel {
    period_txns,
    amplitude,
    gc_every,
    gc_mem_ops,
    growth_per_txn,
    growth_cap_blocks,
});
mtvar_sim::impl_snap!(WorkloadProfile {
    name,
    threads_per_cpu,
    txn_types,
    hot_blocks,
    cold_blocks,
    private_blocks,
    code_blocks_per_type,
    lock_pool,
    hot_locks,
    hot_lock_prob,
    phases,
    startup_stagger_instr,
});
mtvar_sim::impl_snap!(ThreadGen {
    rng,
    txns,
    queue,
    recent,
    recent_pos,
});
mtvar_sim::impl_snap!(ProfiledWorkload {
    profile,
    cum_weights,
    threads,
    state,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test".into(),
            threads_per_cpu: 2,
            txn_types: vec![
                TxnType::balanced(),
                TxnType {
                    weight: 3,
                    ..TxnType::balanced()
                },
            ],
            hot_blocks: 1_000,
            cold_blocks: 100_000,
            private_blocks: 10_000,
            code_blocks_per_type: 8,
            lock_pool: 32,
            hot_locks: 4,
            hot_lock_prob: 0.5,
            phases: PhaseModel::none(),
            startup_stagger_instr: 0,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ProfiledWorkload::new(profile(), 2, 1);
        let mut b = ProfiledWorkload::new(profile(), 2, 1);
        let mut c = ProfiledWorkload::new(profile(), 2, 2);
        let sa: Vec<Op> = (0..2000).map(|i| a.next_op(ThreadId(i % 4))).collect();
        let sb: Vec<Op> = (0..2000).map(|i| b.next_op(ThreadId(i % 4))).collect();
        let sc: Vec<Op> = (0..2000).map(|i| c.next_op(ThreadId(i % 4))).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn streams_are_independent_of_consumption_order() {
        // The §3.3 contract: thread 0's stream must not change when thread 1
        // is consumed differently (interleaving affects timing only).
        let mut a = ProfiledWorkload::new(profile(), 2, 7);
        let mut b = ProfiledWorkload::new(profile(), 2, 7);
        let sa: Vec<Op> = (0..500).map(|_| a.next_op(ThreadId(0))).collect();
        // Interleave consumption in b.
        let mut sb = Vec::new();
        for i in 0..500 {
            if i % 2 == 0 {
                b.next_op(ThreadId(1));
            }
            sb.push(b.next_op(ThreadId(0)));
        }
        assert_eq!(sa, sb);
    }

    #[test]
    fn locks_are_balanced_and_unnested() {
        let mut w = ProfiledWorkload::new(profile(), 1, 3);
        let mut held: Option<LockId> = None;
        for _ in 0..5000 {
            match w.next_op(ThreadId(0)) {
                Op::Lock(l) => {
                    assert!(held.is_none(), "nested lock in generated stream");
                    held = Some(l);
                }
                Op::Unlock(l) => {
                    assert_eq!(held, Some(l));
                    held = None;
                }
                Op::Io(_) => assert!(held.is_none(), "I/O while holding a lock"),
                Op::TxnEnd => assert!(held.is_none(), "txn ended holding a lock"),
                _ => {}
            }
        }
    }

    #[test]
    fn calls_and_returns_are_balanced() {
        let mut w = ProfiledWorkload::new(profile(), 1, 4);
        let mut depth = 0i64;
        for _ in 0..5000 {
            match w.next_op(ThreadId(0)) {
                Op::Call { .. } => depth += 1,
                Op::Return { .. } => {
                    depth -= 1;
                    assert!(depth >= 0, "return without call");
                }
                Op::TxnEnd => assert_eq!(depth, 0, "txn ended mid-call"),
                _ => {}
            }
        }
    }

    #[test]
    fn txn_mix_respects_weights() {
        // weight 1 vs 3: type 1 should be ~75% of transactions.
        let mut w = ProfiledWorkload::new(profile(), 4, 5);
        let mut txns = 0;
        for _ in 0..200_000 {
            if let Op::TxnEnd = w.next_op(ThreadId(0)) {
                txns += 1;
            }
        }
        assert!(txns > 100, "too few transactions: {txns}");
    }

    #[test]
    fn phase_model_intensity_wave() {
        let ph = PhaseModel {
            period_txns: 100,
            amplitude: 0.5,
            ..PhaseModel::none()
        };
        // Triangle wave: spans [0.5, 1.5], mean 1.
        let vals: Vec<f64> = (0..100).map(|i| ph.intensity(i)).collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((0.49..=0.56).contains(&min), "min {min}");
        assert!((1.44..=1.51).contains(&max), "max {max}");
        let mean: f64 = vals.iter().sum::<f64>() / 100.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert_eq!(PhaseModel::none().intensity(12345), 1.0);
    }

    #[test]
    fn gc_phase_inserts_scan() {
        let mut p = profile();
        p.phases = PhaseModel {
            gc_every: 5,
            gc_mem_ops: 400,
            ..PhaseModel::none()
        };
        let mut w = ProfiledWorkload::new(p, 1, 9);
        // Count ops per transaction; every 5th should be noticeably longer.
        let mut lens = Vec::new();
        let mut len = 0u32;
        while lens.len() < 40 {
            len += 1;
            if let Op::TxnEnd = w.next_op(ThreadId(0)) {
                lens.push(len);
                len = 0;
            }
        }
        // The scan is prepended when txn_idx % 5 == 0 (and idx > 0), i.e. to
        // the 6th, 11th, ... transactions — vector indices 5, 10, ...
        let gc_txns: Vec<u32> = lens.iter().skip(5).step_by(5).copied().collect();
        let avg_all: f64 = lens.iter().map(|&l| l as f64).sum::<f64>() / lens.len() as f64;
        let avg_gc: f64 = gc_txns.iter().map(|&l| l as f64).sum::<f64>() / gc_txns.len() as f64;
        assert!(
            avg_gc > avg_all,
            "GC transactions should be longer: {avg_gc} vs {avg_all}"
        );
    }

    #[test]
    fn footprint_growth_is_capped() {
        let mut p = profile();
        p.phases = PhaseModel {
            growth_per_txn: 10.0,
            growth_cap_blocks: 500,
            ..PhaseModel::none()
        };
        // Just exercise generation deep enough to hit the cap.
        let mut w = ProfiledWorkload::new(p, 1, 11);
        for _ in 0..20_000 {
            let _ = w.next_op(ThreadId(0));
        }
        assert!(w.thread_txns(ThreadId(0)) > 60);
    }

    #[test]
    #[should_panic(expected = "cpus must be > 0")]
    fn rejects_zero_cpus() {
        let _ = ProfiledWorkload::new(profile(), 0, 1);
    }
}
